#include "crawl/fetcher.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/file_util.h"
#include "common/strings.h"

namespace ntw::crawl {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

FetchResult FetchFile(const Url& url) {
  FetchResult result;
  auto start = std::chrono::steady_clock::now();
  auto body = ReadFile(url.path);
  if (body.ok()) {
    result.status = 200;
    result.body = std::move(body.value());
  } else {
    result.status = 404;
    result.error = body.status().message();
  }
  result.latency_micros = MicrosSince(start);
  return result;
}

struct Connection {
  int fd = -1;
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

bool SetTimeouts(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

/// Parses "HTTP/1.x NNN reason" and headers out of `head`; returns the
/// status or 0 on a malformed response.
int ParseStatusLine(std::string_view head, size_t* headers_begin) {
  size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) return 0;
  std::string_view line = head.substr(0, eol);
  if (!StartsWith(line, "HTTP/1.")) return 0;
  size_t space = line.find(' ');
  if (space == std::string_view::npos || space + 4 > line.size()) return 0;
  int status = 0;
  for (size_t i = space + 1; i < line.size() && line[i] != ' '; ++i) {
    if (line[i] < '0' || line[i] > '9') return 0;
    status = status * 10 + (line[i] - '0');
  }
  *headers_begin = eol + 2;
  return status;
}

/// Case-insensitive header lookup inside the raw header block.
bool FindHeaderValue(std::string_view headers, std::string_view name,
                     std::string* value) {
  size_t start = 0;
  while (start < headers.size()) {
    size_t end = headers.find("\r\n", start);
    if (end == std::string_view::npos) end = headers.size();
    std::string_view line = headers.substr(start, end - start);
    start = end + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view key = line.substr(0, colon);
    if (key.size() != name.size()) continue;
    bool match = true;
    for (size_t i = 0; i < key.size(); ++i) {
      if (AsciiToLower(key[i]) != AsciiToLower(name[i])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::string_view v = line.substr(colon + 1);
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
      v.remove_prefix(1);
    }
    *value = std::string(v);
    return true;
  }
  return false;
}

FetchResult FetchHttp(const Url& url, const FetchOptions& options) {
  FetchResult result;
  auto start = std::chrono::steady_clock::now();

  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* address_list = nullptr;
  std::string port = std::to_string(url.port);
  int rc = ::getaddrinfo(url.host.c_str(), port.c_str(), &hints,
                         &address_list);
  if (rc != 0 || address_list == nullptr) {
    result.status = kStatusConnectError;
    result.error = "resolve failed: " + url.host;
    result.latency_micros = MicrosSince(start);
    return result;
  }

  Connection connection;
  for (addrinfo* ai = address_list; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (!SetTimeouts(fd, options.timeout_ms) ||
        ::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      ::close(fd);
      continue;
    }
    connection.fd = fd;
    break;
  }
  ::freeaddrinfo(address_list);
  if (connection.fd < 0) {
    result.status = kStatusConnectError;
    result.error = "connect failed: " + url.Domain();
    result.latency_micros = MicrosSince(start);
    return result;
  }

  std::string target = url.path;
  if (!url.query.empty()) target += "?" + url.query;
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + url.host +
                        "\r\nUser-Agent: " + options.user_agent +
                        "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(connection.fd, request.data() + sent,
                       request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      result.status =
          (errno == EAGAIN || errno == EWOULDBLOCK) ? kStatusTimeout
                                                    : kStatusConnectError;
      result.error = "send failed";
      result.latency_micros = MicrosSince(start);
      return result;
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buffer[16384];
  size_t header_end = std::string::npos;
  int64_t content_length = -1;
  size_t body_begin = 0;
  int status = 0;
  std::string headers_block;
  for (;;) {
    ssize_t n = ::recv(connection.fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      result.status =
          (errno == EAGAIN || errno == EWOULDBLOCK) ? kStatusTimeout
                                                    : kStatusConnectError;
      result.error = "recv failed";
      result.latency_micros = MicrosSince(start);
      return result;
    }
    if (n == 0) break;  // Orderly close.
    raw.append(buffer, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        size_t headers_begin = 0;
        status = ParseStatusLine(raw, &headers_begin);
        if (status == 0) {
          result.status = kStatusProtocolError;
          result.error = "malformed status line";
          result.latency_micros = MicrosSince(start);
          return result;
        }
        headers_block =
            raw.substr(headers_begin, header_end - headers_begin);
        body_begin = header_end + 4;
        std::string length_value;
        if (FindHeaderValue(headers_block, "Content-Length",
                            &length_value)) {
          content_length = std::strtoll(length_value.c_str(), nullptr, 10);
        }
      }
    }
    if (header_end != std::string::npos) {
      size_t body_size = raw.size() - body_begin;
      if (body_size > options.max_body_bytes) {
        result.status = kStatusBodyTooLarge;
        result.error = "body exceeds max_body_bytes";
        result.latency_micros = MicrosSince(start);
        return result;
      }
      if (content_length >= 0 &&
          body_size >= static_cast<size_t>(content_length)) {
        break;  // Full body framed by Content-Length.
      }
    }
  }

  if (header_end == std::string::npos) {
    result.status = kStatusProtocolError;
    result.error = "connection closed before headers";
    result.latency_micros = MicrosSince(start);
    return result;
  }
  result.status = status;
  result.body = raw.substr(body_begin);
  if (content_length >= 0 &&
      result.body.size() > static_cast<size_t>(content_length)) {
    result.body.resize(static_cast<size_t>(content_length));
  }
  if (!result.ok()) result.error = "http status " + std::to_string(status);
  result.latency_micros = MicrosSince(start);
  return result;
}

}  // namespace

FetchResult Fetch(const Url& url, const FetchOptions& options) {
  if (url.scheme == "file") return FetchFile(url);
  if (url.scheme == "http") return FetchHttp(url, options);
  FetchResult result;
  result.status = kStatusProtocolError;
  result.error = "unsupported scheme: " + url.scheme;
  return result;
}

}  // namespace ntw::crawl
