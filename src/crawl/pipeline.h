#ifndef NTW_CRAWL_PIPELINE_H_
#define NTW_CRAWL_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/compiled_wrapper.h"
#include "core/fused_matcher.h"
#include "crawl/fetcher.h"
#include "crawl/frontier.h"
#include "crawl/robots.h"
#include "crawl/url.h"
#include "serve/reinduce.h"
#include "serve/wrapper_repository.h"

namespace ntw::crawl {

struct CrawlOptions {
  /// Fetch/extract workers. The pipeline runs them on the caller's
  /// ThreadPool via ParallelFor, so Run() participates and byte-identical
  /// output needs no dedicated threads.
  int workers = 4;

  // Frontier admission (URL predicate pushdown — applied before any
  // fetch is scheduled).
  std::vector<std::string> allow;
  std::vector<std::string> deny;
  int max_depth = 0;
  int64_t max_pages = -1;
  int domain_parallelism = 1;

  // Politeness.
  RateLimiterOptions rate;
  bool respect_robots = true;
  double robots_ttl_seconds = 3600.0;

  // Extraction. Empty `attribute` = every wrapper the repository has for
  // the page's site; `fixed_site` overrides per-URL site derivation
  // (SiteFromUrl) when the whole crawl targets one site.
  std::string attribute;
  std::string fixed_site;
  bool fast_path = true;
  bool streaming = true;
  /// Scan each page once with the site's fused multi-pattern automaton
  /// when it has several dom_free wrappers (DESIGN.md §15), instead of
  /// one BMH pass per attribute. Only consulted when fast_path and
  /// streaming are on and no single `attribute` filter applies. Output
  /// bytes are identical either way.
  bool fused = true;
  /// Feed drift detectors and enqueue re-induction (needs a reinducer).
  bool self_heal = false;

  /// Append fetch/extract latency members to each record. Off by default:
  /// timing breaks byte-identity with offline extraction.
  bool timing = false;

  /// Retries for retryable fetch failures (429/5xx/timeout/connect).
  int max_retries = 2;

  /// Reorder window of the emit queue, clamped to > workers so a full
  /// window can always make progress (every in-flight seq has a worker
  /// attached that will push its chunk).
  size_t emit_window = 64;

  FetchOptions fetch;
};

struct CrawlStats {
  int64_t pages_fetched = 0;
  int64_t pages_failed = 0;
  int64_t robots_denied = 0;
  int64_t retries = 0;
  int64_t records_emitted = 0;
  int64_t values_extracted = 0;
  int64_t links_discovered = 0;
  int64_t bytes_fetched = 0;
  int64_t urls_admitted = 0;
  int64_t urls_deduped = 0;
  int64_t urls_denied = 0;
};

/// Ordered single-writer emission: workers push one chunk per dispatched
/// seq (possibly empty — robots-denied, failed, or wrapper-less pages),
/// and the sink sees chunks in exact seq order regardless of completion
/// order. Push blocks while `seq` is outside the reorder window; the
/// pipeline clamps window > workers, so every blocked pusher is waiting
/// on a seq some other worker owns — no deadlock.
class EmitQueue {
 public:
  using Sink = std::function<void(std::string_view)>;

  EmitQueue(Sink sink, size_t window) : sink_(std::move(sink)),
                                        window_(window < 2 ? 2 : window) {}

  void Push(uint64_t seq, std::string chunk);

 private:
  Sink sink_;
  const size_t window_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::string> buffered_;
  uint64_t next_ = 0;
};

/// The fetch→extract→emit workload (DESIGN.md §14): a frontier-driven
/// crawl over file:// and http:// origins that reuses the serving stack's
/// extraction tiers (streaming no-DOM → arena fast path → interpreted,
/// all byte-identical) against a WrapperRepository snapshot, and emits
/// one ntw-crawl-record NDJSON line per (page, attribute) in frontier
/// dispatch order. Given a fixed seed order the output bytes are
/// independent of worker count.
class CrawlPipeline {
 public:
  CrawlPipeline(const serve::WrapperRepository* repository, ThreadPool* pool,
                CrawlOptions options,
                serve::ReinduceWorker* reinducer = nullptr);

  /// Crawls from `seeds` until the frontier drains; emitted NDJSON goes
  /// to `sink` in seq order. Blocking; runs workers on the pool with the
  /// caller participating.
  CrawlStats Run(const std::vector<std::string>& seeds,
                 const EmitQueue::Sink& sink);

 private:
  void WorkerLoop(EmitQueue* emit);
  /// Full treatment of one dispatched URL; fills `*chunk` with the NDJSON
  /// lines this seq contributes (possibly none).
  void ProcessItem(FrontierItem* item, std::string* chunk);
  /// Returns true when robots rules allow fetching `url` (always true for
  /// file:// — a local corpus has no origin to be polite to). Fetches and
  /// caches robots.txt on demand.
  bool RobotsAllows(const Url& url);
  void ExtractPage(const serve::WrapperRepository::Entry& entry,
                   std::string_view site, std::string_view attribute,
                   const std::string& url, const std::string& body,
                   int64_t fetch_micros, std::string* chunk);
  /// Fused multi-attribute extraction: one automaton scan of `body`
  /// yields every dom_free attribute's values; attributes the automaton
  /// does not cover fall back to ExtractPage. Lines are emitted in the
  /// same ascending attribute order as the per-attribute loop.
  void ExtractSiteFused(
      const core::FusedSiteExtractor& fused,
      const std::vector<
          std::pair<std::string, const serve::WrapperRepository::Entry*>>&
          entries,
      std::string_view site, const std::string& url, const std::string& body,
      int64_t fetch_micros, std::string* chunk);
  /// Feeds one extraction to the entry's drift detector; on a reinduce
  /// verdict hands the retained sample to the re-induction worker —
  /// the crawl-side mirror of ExtractService::ObserveDrift.
  void ObserveDriftSample(const serve::WrapperRepository::Entry& entry,
                          const std::string& body,
                          const std::string_view* values, size_t count);

  const serve::WrapperRepository* repository_;
  ThreadPool* pool_;
  CrawlOptions options_;
  serve::ReinduceWorker* reinducer_;

  DomainRateLimiter limiter_;
  Frontier frontier_;
  RobotsCache robots_;

  // Shared-stat cells (atomically updated by workers via obs counters are
  // global; these are per-run). Guarded by stats_mu_.
  std::mutex stats_mu_;
  CrawlStats stats_;

  // Reusable extraction buffers; internally synchronized pools shared by
  // all workers of this pipeline.
  mutable core::FastBufferPool buffers_;
  mutable core::StreamBufferPool stream_buffers_;
  mutable core::FusedScratchPool fused_scratch_;
};

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_PIPELINE_H_
