#ifndef NTW_CRAWL_RATE_LIMITER_H_
#define NTW_CRAWL_RATE_LIMITER_H_

#include <map>
#include <mutex>
#include <string>

namespace ntw::crawl {

struct RateLimiterOptions {
  /// Steady-state token refill rate per domain.
  double requests_per_second = 2.0;
  /// Bucket capacity — how many fetches may burst back-to-back after an
  /// idle period. The hard invariant the limiter test pins: grants to one
  /// domain over any interval T never exceed burst + rate·T.
  double burst = 1.0;
  /// Adaptive backoff on 429/5xx/timeout: first penalty, exponential
  /// growth factor, and the ceiling. A success collapses the penalty back
  /// to zero (the origin recovered; resume the configured rate).
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;
};

/// Per-domain token bucket with adaptive backoff — the politeness
/// authority of the crawl pipeline. Time is supplied by callers as
/// seconds on a monotonic clock of their choice, which keeps every
/// decision deterministic under test (no hidden clock reads).
///
/// Thread-safe; one mutex over a small map. The limiter sits on the
/// frontier dispatch path, which runs at crawl politeness rates (tens of
/// acquisitions per second per domain), not at extraction rates — a lock
/// here costs nothing measurable and keeps the bucket arithmetic exact,
/// which the "never exceeds the configured rate" contract requires.
class DomainRateLimiter {
 public:
  explicit DomainRateLimiter(RateLimiterOptions options = {});

  /// Attempts to take one fetch token for `domain`. Returns 0 when a
  /// token was consumed (fetch now); otherwise the seconds to wait before
  /// retrying (no token consumed).
  double TryAcquire(const std::string& domain, double now_seconds);

  /// A completed fetch the origin answered normally: clears any backoff.
  void ReportSuccess(const std::string& domain);

  /// A 429/5xx/timeout: escalates the domain's backoff window
  /// exponentially; no fetch for that domain until it elapses.
  void ReportRetryableFailure(const std::string& domain, double now_seconds);

  /// Installs a robots.txt Crawl-delay: the domain's effective rate
  /// becomes min(configured, 1/delay_seconds). Ignored when ≤ 0.
  void SetCrawlDelay(const std::string& domain, double delay_seconds);

  /// The seconds the domain is still backed off at `now_seconds`
  /// (0 when serving normally) — observability for /metrics and tests.
  double BackoffRemaining(const std::string& domain, double now_seconds);

 private:
  struct DomainState {
    double tokens = 0.0;
    double last_refill = 0.0;
    bool initialized = false;
    double crawl_delay = 0.0;
    double backoff = 0.0;        // Current penalty duration.
    double blocked_until = 0.0;  // Absolute time the penalty ends.
  };

  double EffectiveRate(const DomainState& state) const;

  RateLimiterOptions options_;
  std::mutex mu_;
  std::map<std::string, DomainState> domains_;
};

}  // namespace ntw::crawl

#endif  // NTW_CRAWL_RATE_LIMITER_H_
