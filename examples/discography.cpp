// Track extraction from discography websites (the DISC dataset, Sec. 7):
// the annotator knows the 11 seed albums of Figure 9 and matches their
// track titles exactly; noise comes from review quotes, title tracks and
// "(Remastered)" render variants. The example learns one wrapper per site
// and prints a sample of what it extracts — including tracks of albums
// the annotator has never heard of, which is the whole point of wrappers.

#include <cstdio>

#include "core/ntw.h"
#include "core/xpath_inductor.h"
#include "datasets/disc.h"
#include "datasets/runner.h"

int main() {
  using namespace ntw;

  datasets::Dataset disc = datasets::MakeDisc(datasets::DiscConfig{});
  datasets::Split split = datasets::MakeSplit(disc);
  Result<datasets::TrainedModels> models =
      datasets::LearnModels(disc, "track", split.train);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  core::Ranker ranker(models->annotation, models->publication);
  core::XPathInductor inductor;

  for (size_t index : split.test) {
    const datasets::SiteData& data = disc.sites[index];
    const core::NodeSet& labels = data.annotations.at("track");
    if (labels.empty()) continue;

    Result<core::NtwOutcome> outcome = core::LearnNoiseTolerant(
        inductor, data.site.pages, labels, ranker);
    if (!outcome.ok()) {
      std::printf("%s: %s\n", data.site.name.c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    core::Prf prf = core::Evaluate(outcome->best.extraction,
                                   data.site.truth.at("track"));
    std::printf("\n%s  (%zu noisy labels -> %zu tracks, f1=%.2f)\n",
                data.site.name.c_str(), labels.size(),
                outcome->best.extraction.size(), prf.f1);
    std::printf("  wrapper: %s\n", outcome->best.wrapper->ToString().c_str());
    int shown = 0;
    for (const core::NodeRef& ref : outcome->best.extraction) {
      if (shown >= 5) break;
      // Show tracks the dictionary annotator did NOT label: extracted
      // purely by structure.
      if (labels.Contains(ref)) continue;
      std::printf("    beyond the dictionary: \"%s\"\n",
                  data.site.pages.Resolve(ref)->text().c_str());
      ++shown;
    }
  }
  return 0;
}
