// Two smaller scenarios in one example:
//
//  (a) PRODUCTS (Appendix B.1): extract the cellphones sold on shopping
//      sites using the Wikipedia-style model catalogue as the annotator;
//  (b) single-entity extraction (Appendix B.2): learn the album-title
//      wrapper per discography site from a very noisy title annotator —
//      enumerate, discard wrappers matching more than one node per page,
//      keep the one covering the most labels.

#include <cstdio>

#include "core/single_entity.h"
#include "core/xpath_inductor.h"
#include "datasets/disc.h"
#include "datasets/products.h"
#include "datasets/runner.h"

int main() {
  using namespace ntw;
  core::XPathInductor inductor;

  // ---------------- (a) PRODUCTS list extraction. ----------------------
  datasets::Dataset products =
      datasets::MakeProducts(datasets::ProductsConfig{});
  datasets::RunConfig run;
  run.type = "model";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(products, inductor, run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", datasets::FormatSummary(
                          "PRODUCTS: cellphones from shopping sites",
                          *summary)
                          .c_str());

  // ---------------- (b) Single-entity album titles. --------------------
  std::printf("Single-entity album-title extraction (DISC):\n");
  datasets::Dataset disc = datasets::MakeDisc(datasets::DiscConfig{});
  int correct = 0, total = 0;
  for (const datasets::SiteData& data : disc.sites) {
    const core::NodeSet& labels = data.annotations.at("album");
    if (labels.empty()) continue;
    ++total;
    Result<core::SingleEntityOutcome> outcome =
        core::LearnSingleEntity(inductor, data.site.pages, labels);
    if (!outcome.ok()) {
      std::printf("  %-26s FAILED: %s\n", data.site.name.c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    // A site counts as correct when every page's extracted node carries
    // that page's album title.
    const core::NodeSet& truth = data.site.truth.at("album");
    bool good = !outcome->best.extraction.empty();
    for (const core::NodeRef& ref : outcome->best.extraction) {
      std::string want;
      for (const core::NodeRef& t : truth) {
        if (t.page == ref.page) {
          want = data.site.pages.Resolve(t)->text();
          break;
        }
      }
      if (data.site.pages.Resolve(ref)->text() != want) good = false;
    }
    if (good) ++correct;
    std::printf("  %-26s %s  (%zu tied wrapper(s), e.g. %.48s)\n",
                data.site.name.c_str(), good ? "ok" : "WRONG",
                outcome->tied.size(),
                outcome->best.wrapper->ToString().c_str());
  }
  std::printf("single-entity: %d/%d sites correct\n", correct, total);
  return 0;
}
