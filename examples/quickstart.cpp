// Quickstart: learn a wrapper from noisy labels on a Figure-1-style
// dealer-locator page set, using the XPATH inductor and the noise-tolerant
// framework end to end:
//
//   1. parse HTML pages into DOM trees,
//   2. annotate text nodes with a small business-name dictionary (noisy!),
//   3. enumerate the wrapper space of the labels (TopDown),
//   4. rank by P(L|X)·P(X) and extract with the winner.
//
// The dictionary deliberately mislabels one address line; the naive
// inductor over-generalizes to every cell while NTW recovers the correct
// name column.

#include <cstdio>
#include <string>
#include <vector>

#include "annotate/dictionary_annotator.h"
#include "core/ntw.h"
#include "core/xpath_inductor.h"
#include "html/parser.h"

namespace {

// Two "zipcode query result" pages from the same rendering script.
std::string MakePage(const std::vector<std::array<std::string, 3>>& rows) {
  std::string html =
      "<html><body><div class='dealerlinks'><table>";
  for (const auto& row : rows) {
    html += "<tr><td><u>" + row[0] + "</u><br>" + row[1] + "<br>" + row[2] +
            "</td><td><a href='#map'>Map</a></td></tr>";
  }
  html += "</table></div></body></html>";
  return html;
}

}  // namespace

int main() {
  using namespace ntw;

  // --- 1. Build the page set. -------------------------------------------
  std::vector<std::string> sources = {
      MakePage({{"PORTER FURNITURE", "201 HWY. 30 WEST",
                 "NEW ALBANY, MS 38652"},
                {"WOODLAND FURNITURE", "123 MAIN ST.",
                 "WOODLAND, MS 39776"},
                {"HELLER HOME CENTER", "514 4TH STREET",
                 "SAN RAFAEL, CA 94901"}}),
      MakePage({{"KIDDIE WORLD CENTER", "1899 W. SAN CARLOS ST.",
                 "SAN JOSE, CA 95128"},
                {"LULLABY LANE", "532 BESTBUY PLAZA",  // ← dictionary noise!
                 "SAN BRUNO, CA 94066"}}),
  };
  core::PageSet pages;
  for (const std::string& source : sources) {
    Result<html::Document> doc = html::Parse(source);
    if (!doc.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    pages.AddPage(std::move(doc).value());
  }

  // --- 2. Annotate with a tiny dictionary. ------------------------------
  annotate::DictionaryAnnotator dictionary(
      {"WOODLAND FURNITURE", "KIDDIE WORLD CENTER", "BESTBUY"});
  core::NodeSet labels = dictionary.Annotate(pages);
  std::printf("dictionary produced %zu labels (one is an address line!)\n",
              labels.size());

  // --- 3 & 4. Noise-tolerant learning. ----------------------------------
  core::XPathInductor inductor;

  // Models: a high-precision/low-recall annotator prior and a publication
  // prior centred on 3-field records with tight alignment.
  core::AnnotationModel annotation(/*p=*/0.95, /*r=*/0.4);
  std::vector<core::ListFeatures> prior;
  for (double schema : {3.0, 3.0, 4.0, 3.0}) {
    core::ListFeatures f;
    f.schema_size = schema;
    f.alignment = 2.0;
    prior.push_back(f);
  }
  Result<core::PublicationModel> publication =
      core::PublicationModel::Fit(prior);
  if (!publication.ok()) return 1;
  core::Ranker ranker(annotation, std::move(publication).value());

  Result<core::NtwOutcome> outcome =
      core::LearnNoiseTolerant(inductor, pages, labels, ranker);
  if (!outcome.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  core::Induction naive = core::LearnNaive(inductor, pages, labels);

  std::printf("\nNTW wrapper   : %s\n", outcome->best.wrapper->ToString().c_str());
  std::printf("NAIVE wrapper : %s\n", naive.wrapper->ToString().c_str());
  std::printf("\nNTW extracted %zu nodes:\n", outcome->best.extraction.size());
  for (const core::NodeRef& ref : outcome->best.extraction) {
    std::printf("  page %d: %s\n", ref.page,
                pages.Resolve(ref)->text().c_str());
  }
  std::printf("NAIVE extracted %zu nodes (over-generalized).\n",
              naive.extraction.size());
  return 0;
}
