// The full DEALERS pipeline at a small scale — the paper's headline
// workflow (Sec. 7) end to end:
//
//   1. generate dealer-locator websites (the stand-in for automatic
//      zipcode form-filling over 330 real businesses),
//   2. annotate every site with the business-name dictionary (noisy:
//      ~0.95 precision / ~0.24 recall),
//   3. learn the annotation model (p, r) and the publication model
//      (schema-size / alignment KDEs) from half the sites,
//   4. for each held-out site, enumerate the wrapper space of the noisy
//      labels (TopDown), rank by P(L|X)·P(X), extract with the winner,
//   5. compare against the NAIVE supervised baseline.

#include <cstdio>

#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "datasets/runner.h"

int main() {
  using namespace ntw;

  // 1-2. Generate + annotate (both inside MakeDealers).
  datasets::DealersConfig config;
  config.num_sites = 24;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  core::Prf annotator = datasets::AnnotatorQuality(dealers, "name");
  std::printf("generated %zu dealer-locator sites; dictionary annotator "
              "precision=%.2f recall=%.2f\n",
              dealers.sites.size(), annotator.precision, annotator.recall);

  // 3-5. Learn models on the training half, evaluate NTW vs NAIVE.
  core::XPathInductor inductor;
  datasets::RunConfig run;
  run.type = "name";
  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(dealers, inductor, run);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-site results (held-out half):\n");
  std::printf("%-38s %6s %8s %8s  %s\n", "site", "labels", "NTW f1",
              "NAIVE f1", "learned wrapper");
  for (const datasets::SiteOutcome& site : summary->sites) {
    std::printf("%-38.38s %6zu %8.2f %8.2f  %.60s\n", site.site_name.c_str(),
                site.labels, site.ntw.f1, site.naive.f1,
                site.ntw_wrapper.c_str());
  }
  std::printf("\n%s", datasets::FormatSummary("DEALERS (XPATH wrappers)",
                                              *summary)
                          .c_str());
  return 0;
}
