// Plugging a user-defined wrapper language into the framework — the
// paper's central design claim: "given any wrapper inductor that
// satisfies mild technical conditions, the framework shows how to use it
// as a blackbox when the labels of the training data are noisy".
//
// This example defines CSSPATH, a deliberately tiny inductor whose rules
// are (ancestor-class-set, parent-tag) pairs: a node is extracted when
// its parent has the learned tag and its ancestors carry all the learned
// class attributes. CSSPATH is implemented in ~80 lines, is verified
// well-behaved on the fly, and immediately gains:
//
//   * blackbox wrapper-space enumeration (BottomUp),
//   * feature-based enumeration (TopDown) via Attributes/Subdivide,
//   * noise tolerance via the P(L|X)·P(X) ranking,
//
// without touching any library code.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "annotate/dictionary_annotator.h"
#include "core/enumerate.h"
#include "core/ntw.h"
#include "html/parser.h"

namespace {

using namespace ntw;

// ---------------------------------------------------------------------
// The custom wrapper language.

/// Rule: parent tag + the set of class values that must appear on the
/// node's ancestor chain.
struct CssRule {
  std::string parent_tag;           // "" = any.
  std::set<std::string> classes;    // All must be present on ancestors.
};

std::set<std::string> AncestorClasses(const html::Node* node) {
  std::set<std::string> classes;
  for (const html::Node* cur = node->parent();
       cur != nullptr && cur->is_element(); cur = cur->parent()) {
    if (const std::string* value = cur->GetAttr("class")) {
      classes.insert(*value);
    }
  }
  return classes;
}

class CssWrapper : public core::Wrapper {
 public:
  explicit CssWrapper(CssRule rule) : rule_(std::move(rule)) {}

  core::NodeSet Extract(const core::PageSet& pages) const override {
    std::vector<core::NodeRef> refs;
    for (const core::NodeRef& ref : pages.AllTextNodes()) {
      const html::Node* node = pages.Resolve(ref);
      if (!rule_.parent_tag.empty() &&
          (node->parent() == nullptr ||
           node->parent()->tag() != rule_.parent_tag)) {
        continue;
      }
      std::set<std::string> classes = AncestorClasses(node);
      if (std::includes(classes.begin(), classes.end(),
                        rule_.classes.begin(), rule_.classes.end())) {
        refs.push_back(ref);
      }
    }
    return core::NodeSet(std::move(refs));
  }

  std::string ToString() const override {
    std::string out = "CSSPATH(";
    for (const std::string& c : rule_.classes) out += "." + c;
    out += " > " + (rule_.parent_tag.empty() ? "*" : rule_.parent_tag) + ")";
    return out;
  }

 private:
  CssRule rule_;
};

/// Feature-based induction: intersect the labels' (parent-tag, ancestor
/// class-set) features.
class CssPathInductor : public core::FeatureBasedInductor {
 public:
  core::Induction Induce(const core::PageSet& pages,
                         const core::NodeSet& labels) const override {
    core::Induction result;
    if (labels.empty()) {
      result.wrapper = std::make_shared<CssWrapper>(CssRule{});
      return result;  // φ(∅): CssRule{} would match everything, so empty.
    }
    CssRule rule;
    bool first = true;
    for (const core::NodeRef& ref : labels) {
      const html::Node* node = pages.Resolve(ref);
      std::string parent_tag =
          node->parent() != nullptr && node->parent()->is_element()
              ? node->parent()->tag()
              : "";
      std::set<std::string> classes = AncestorClasses(node);
      if (first) {
        rule.parent_tag = parent_tag;
        rule.classes = std::move(classes);
        first = false;
      } else {
        if (rule.parent_tag != parent_tag) rule.parent_tag.clear();
        std::set<std::string> kept;
        std::set_intersection(rule.classes.begin(), rule.classes.end(),
                              classes.begin(), classes.end(),
                              std::inserter(kept, kept.begin()));
        rule.classes = std::move(kept);
      }
    }
    auto wrapper = std::make_shared<CssWrapper>(std::move(rule));
    result.extraction = wrapper->Extract(pages).Union(labels);
    result.wrapper = std::move(wrapper);
    return result;
  }

  std::string Name() const override { return "CSSPATH"; }

  // Feature space: attribute 0 = parent tag; attribute 1+k = "has class
  // value #k" (class vocabulary interned per call, stable per page set).
  std::vector<core::AttrHandle> Attributes(
      const core::PageSet& pages, const core::NodeSet& labels) const override {
    std::vector<core::AttrHandle> attrs = {0};
    std::set<std::string> vocabulary;
    for (const core::NodeRef& ref : labels) {
      for (const std::string& c : AncestorClasses(pages.Resolve(ref))) {
        vocabulary.insert(c);
      }
    }
    class_vocab_.assign(vocabulary.begin(), vocabulary.end());
    for (size_t i = 0; i < class_vocab_.size(); ++i) {
      attrs.push_back(static_cast<core::AttrHandle>(i + 1));
    }
    return attrs;
  }

  std::vector<core::NodeSet> Subdivide(const core::PageSet& pages,
                                       const core::NodeSet& s,
                                       core::AttrHandle attr) const override {
    std::map<std::string, std::vector<core::NodeRef>> groups;
    for (const core::NodeRef& ref : s) {
      const html::Node* node = pages.Resolve(ref);
      if (attr == 0) {
        if (node->parent() == nullptr || !node->parent()->is_element()) {
          continue;
        }
        groups[node->parent()->tag()].push_back(ref);
      } else {
        const std::string& wanted =
            class_vocab_[static_cast<size_t>(attr) - 1];
        // Binary attribute: present (value "1") or lacking (dropped).
        if (AncestorClasses(node).count(wanted) > 0) {
          groups["1"].push_back(ref);
        }
      }
    }
    std::vector<core::NodeSet> out;
    for (auto& [value, refs] : groups) {
      out.push_back(core::NodeSet(std::move(refs)));
    }
    return out;
  }

 private:
  mutable std::vector<std::string> class_vocab_;
};

// ---------------------------------------------------------------------

std::string MakePage(const std::vector<std::string>& names) {
  std::string html =
      "<html><body><div class='nav'><span>Home</span><span>About</span>"
      "</div><div class='listing'>";
  for (const std::string& name : names) {
    html += "<div class='row'><span class='name'>" + name +
            "</span><span class='addr'>1 Main St, Springfield 12345"
            "</span></div>";
  }
  html += "</div><div class='footer'><span>contact us</span></div>"
          "</body></html>";
  return html;
}

}  // namespace

int main() {
  core::PageSet pages;
  pages.AddPage(std::move(html::Parse(MakePage(
      {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER"}))).value());
  pages.AddPage(std::move(html::Parse(MakePage(
      {"KIDDIE WORLD CENTER", "LULLABY LANE"}))).value());

  annotate::DictionaryAnnotator dictionary(
      {"WOODLAND FURNITURE", "KIDDIE WORLD CENTER",
       "contact us"});  // ← one noisy entry.
  core::NodeSet labels = dictionary.Annotate(pages);
  std::printf("labels: %zu (incl. a footer false positive)\n", labels.size());

  CssPathInductor inductor;

  // Both enumeration algorithms accept the custom inductor unchanged.
  core::WrapperSpace bottom_up =
      core::EnumerateBottomUp(inductor, pages, labels);
  core::WrapperSpace top_down =
      core::EnumerateTopDown(inductor, pages, labels);
  std::printf("wrapper space: %zu candidates (BottomUp %lld calls, "
              "TopDown %lld calls)\n",
              bottom_up.size(),
              static_cast<long long>(bottom_up.inductor_calls),
              static_cast<long long>(top_down.inductor_calls));

  // Rank with a generic prior: 2 text fields per record, tight alignment.
  std::vector<core::ListFeatures> prior;
  for (double schema : {2.0, 2.0, 3.0}) {
    core::ListFeatures f;
    f.schema_size = schema;
    f.alignment = 1.0;
    prior.push_back(f);
  }
  core::Ranker ranker(core::AnnotationModel(0.9, 0.5),
                      std::move(core::PublicationModel::Fit(prior)).value());
  Result<core::NtwOutcome> outcome =
      core::LearnNoiseTolerant(inductor, pages, labels, ranker);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("winner: %s\n", outcome->best.wrapper->ToString().c_str());
  for (const core::NodeRef& ref : outcome->best.extraction) {
    std::printf("  page %d: %s\n", ref.page,
                pages.Resolve(ref)->text().c_str());
  }
  return 0;
}
