// ntw_loadgen — closed-loop throughput benchmark for the serving daemon's
// POST /extract endpoint.
//
// Builds a pinned DEALERS subset (fixed seed), learns one XPATH and one
// LR wrapper per site from ground truth, publishes the wrappers to a
// temporary serving repository, starts a real HttpServer in-process on an
// ephemeral port, and drives it over raw keep-alive sockets through six
// phases split by plan kind and execution path:
//
//   delimiter_streaming    LR plans, streaming no-DOM path (DESIGN.md §12)
//   delimiter_dom          LR plans, arena-DOM fast path (--no-streaming)
//   delimiter_interpreted  LR plans, interpreted Wrapper::Extract
//   xpath_streaming        XPATH plans, fused tokenize→plan-execute path
//   xpath_fast             XPATH plans, arena-DOM fast path
//   xpath_interpreted      XPATH plans, interpreted Wrapper::Extract
//
// Emits a schema-versioned BENCH_serve.json (v4) with per-phase
// requests/second tagged by plan kind and path, latency percentiles from
// the ntw.serve.extract_latency_micros histogram, a speedups object
// (delimiter_streaming_vs_dom and xpath_streaming_vs_fast are the
// headline numbers the streaming paths are accountable to), peak RSS and
// machine metadata, so serving-throughput regressions accumulate in-repo
// the same way ntw_bench's learning benches do.
//
// Before any timing, every (site, attribute, page) request is executed
// through the streaming, arena-DOM and interpreted service
// configurations in-process and the responses are compared
// byte-for-byte; any divergence prints the triple and exits 1 — the
// fast-path determinism contract is enforced by the benchmark itself, not
// just by the unit tests.
//
// Usage:
//   ntw_loadgen [--out BENCH_serve.json] [--sites N] [--requests N]
//               [--records N] [--connections N] [--client-threads N]
//               [--pipeline N] [--repetitions N] [--shards N]
//               [--sweep 1,2,4,...] [--no-streaming] [--smoke]
//
// --records N pins every generated page to exactly N listing records
// (default 30 for full runs — a realistic dealer-locator page, a few KB
// of HTML — and the dataset default 2..10 for --smoke, matching the unit
// corpora). Larger pages shift the measurement toward extraction cost and
// away from fixed per-request socket overhead.
//
// --no-streaming builds the "streaming" services with the streaming path
// off (the delimiter_streaming and xpath_streaming phases then run the
// arena fast path) — CI uses it to keep the non-streaming combination
// green end to end.
//
// --pipeline N keeps N requests in flight per connection (HTTP/1.1
// pipelining, which the server supports): syscall and scheduling overhead
// amortizes across the window, so the measurement isolates extraction
// cost instead of round-trip cost. --pipeline 1 degrades to strict
// request/response lockstep.
//
// --connections C / --client-threads T drive C keep-alive connections
// from T client threads (default T = C, one thread per connection; with
// T < C each thread multiplexes several connections, sending every
// window before reading any — so the offered load scales past the client
// thread count).
//
// --shards N serves the main fast/interpreted phases from an N-shard
// multi-reactor server (DESIGN.md §11). --sweep S1,S2,... additionally
// measures fast-path throughput at each shard count on a fresh server
// and replays every distinct request serially at each point, comparing
// the bytes against the in-process baseline — the shard-scaling curve
// and the cross-shard byte-identity contract in one pass.
//
// --smoke shrinks the workload for CI and tools/check.sh; the JSON schema
// (and the equivalence checks) is identical.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/obs_export.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "html/serializer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/proc.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_loadgen [--out BENCH_serve.json] [--sites N]"
    " [--requests N]\n"
    "                   [--records N] [--connections N]"
    " [--client-threads N]\n"
    "                   [--pipeline N] [--repetitions N] [--shards N]\n"
    "                   [--sweep 1,2,4,...] [--no-streaming] [--smoke]\n";

constexpr int64_t kSchemaVersion = 4;

// ---------------------------------------------------------------------
// Minimal blocking HTTP/1.1 client (keep-alive, Content-Length framing).
// ---------------------------------------------------------------------

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool Send(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// Reads one full response (headers + Content-Length body); "" on error.
  std::string ReadResponse() {
    size_t total = FillOneResponse();
    if (total == 0) return "";
    std::string response = buffer_.substr(offset_, total);
    Consume(total);
    return response;
  }

  /// Reads one full response and reports whether it is an HTTP 200.
  /// Frames exactly like ReadResponse but never copies the response out
  /// of the receive buffer — the timed driver loop's hot path, where a
  /// per-response substr would tax every phase alike.
  bool ReadResponseOk() {
    size_t total = FillOneResponse();
    if (total < 12) {
      if (total > 0) Consume(total);
      return false;
    }
    bool ok = buffer_.compare(offset_, 12, "HTTP/1.1 200") == 0;
    Consume(total);
    return ok;
  }

 private:
  /// Ensures one complete response sits at buffer_[offset_...] and
  /// returns its total size (headers + body); 0 on connection error.
  size_t FillOneResponse() {
    while (true) {
      size_t header_end = buffer_.find("\r\n\r\n", offset_);
      if (header_end != std::string::npos) {
        size_t total =
            header_end + 4 - offset_ + ContentLengthAt(offset_, header_end);
        if (buffer_.size() - offset_ >= total) return total;
      }
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return 0;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Advances past a framed response; compacts the buffer only once the
  /// consumed prefix is large, so steady state neither copies nor moves.
  void Consume(size_t total) {
    offset_ += total;
    if (offset_ >= buffer_.size()) {
      buffer_.clear();
      offset_ = 0;
    } else if (offset_ > (size_t{1} << 18)) {
      buffer_.erase(0, offset_);
      offset_ = 0;
    }
  }

  /// Case-insensitive Content-Length scan over the header block in
  /// place — no lowercased copy.
  size_t ContentLengthAt(size_t begin, size_t header_end) const {
    constexpr std::string_view kName = "content-length:";
    for (size_t pos = begin; pos + kName.size() <= header_end; ++pos) {
      size_t i = 0;
      while (i < kName.size() && AsciiToLower(buffer_[pos + i]) == kName[i]) {
        ++i;
      }
      if (i == kName.size()) {
        return static_cast<size_t>(
            std::strtoull(buffer_.c_str() + pos + i, nullptr, 10));
      }
    }
    return 0;
  }

  int fd_ = -1;
  std::string buffer_;
  size_t offset_ = 0;  // Consumed prefix of buffer_.
};

struct PhaseResult {
  std::string name;
  std::string plan_kind;  // "lr" or "xpath" — which wrapper kind is driven.
  std::string path;       // "streaming", "dom" or "interpreted".
  int64_t requests = 0;
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  // Throughput of every repetition; the other fields describe the best
  // (highest-rps) one, matching ntw_bench's best-of-N convention.
  std::vector<double> rps_reps;
  int64_t latency_count = 0;
  double latency_mean_micros = 0.0;
  int64_t latency_p50_micros = 0;
  int64_t latency_p95_micros = 0;
  int64_t latency_p99_micros = 0;
  int64_t latency_max_micros = 0;
  int64_t arena_bytes_reused = 0;
  int64_t errors = 0;
};

/// Drives `total_requests` POSTs round-robin over `request_bytes` from
/// `connections` keep-alive connections spread across `client_threads`
/// threads against 127.0.0.1:`port`, keeping up to `pipeline` requests
/// in flight per connection. Each thread sends a window on every
/// connection it owns before reading any of them back, so one thread
/// keeps several connections busy simultaneously.
PhaseResult RunPhase(const std::string& name, int port,
                     const std::vector<std::string>& request_bytes,
                     int64_t total_requests, int connections,
                     int client_threads, int64_t pipeline) {
  obs::Registry::Global().ResetValues();
  PhaseResult result;
  result.name = name;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> errors{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(client_threads));
  for (int t = 0; t < client_threads; ++t) {
    // Connections [t, t + client_threads, t + 2*client_threads, ...).
    threads.emplace_back([&, t]() {
      std::vector<std::unique_ptr<Client>> conns;
      for (int c = t; c < connections; c += client_threads) {
        auto client = std::make_unique<Client>(port);
        if (client->ok()) conns.push_back(std::move(client));
      }
      if (conns.empty()) {
        // Nothing connected: surface it loudly (any error fails the run).
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::string wire;
      std::vector<std::pair<Client*, int64_t>> inflight;
      bool exhausted = false;
      while (!exhausted && !conns.empty()) {
        inflight.clear();
        // Send a window on every owned connection first...
        for (size_t c = 0; c < conns.size(); ++c) {
          int64_t begin =
              next.fetch_add(pipeline, std::memory_order_relaxed);
          if (begin >= total_requests) {
            exhausted = true;
            break;
          }
          int64_t window = std::min(pipeline, total_requests - begin);
          wire.clear();
          for (int64_t k = 0; k < window; ++k) {
            wire += request_bytes[static_cast<size_t>(begin + k) %
                                  request_bytes.size()];
          }
          if (!conns[c]->Send(wire)) {
            errors.fetch_add(window, std::memory_order_relaxed);
            conns.erase(conns.begin() + static_cast<ptrdiff_t>(c));
            --c;
            continue;
          }
          inflight.emplace_back(conns[c].get(), window);
        }
        // ...then read everything back.
        for (auto& [client, window] : inflight) {
          for (int64_t k = 0; k < window; ++k) {
            if (!client->ReadResponseOk()) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds = watch.ElapsedSeconds();
  result.requests = total_requests;
  result.errors = errors.load();
  result.requests_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(total_requests) / result.wall_seconds
          : 0.0;
  // The latency instrument is sharded (per-reactor stripes); merge them.
  obs::HistogramView latency =
      obs::Registry::Global()
          .GetShardedHistogram("ntw.serve.extract_latency_micros")
          ->Merged();
  result.latency_count = latency.count;
  result.latency_mean_micros =
      latency.count > 0 ? static_cast<double>(latency.sum) /
                              static_cast<double>(latency.count)
                        : 0.0;
  result.latency_p50_micros = obs::HistogramPercentile(latency, 0.50);
  result.latency_p95_micros = obs::HistogramPercentile(latency, 0.95);
  result.latency_p99_micros = obs::HistogramPercentile(latency, 0.99);
  result.latency_max_micros = latency.max;
  result.arena_bytes_reused =
      obs::Registry::Global()
          .GetShardedCounter("ntw.serve.arena_bytes_reused")
          ->value();
  return result;
}

void WritePhase(obs::JsonWriter& json, const PhaseResult& r) {
  json.BeginObject();
  json.KV("name", r.name);
  json.KV("plan_kind", r.plan_kind);
  json.KV("path", r.path);
  json.KV("requests", r.requests);
  json.KV("errors", r.errors);
  json.KV("wall_seconds", r.wall_seconds);
  json.KV("requests_per_second", r.requests_per_second);
  json.Key("requests_per_second_reps");
  json.BeginArray();
  for (double rps : r.rps_reps) json.Double(rps);
  json.EndArray();
  json.Key("latency_micros");
  json.BeginObject();
  json.KV("count", r.latency_count);
  json.KV("mean", r.latency_mean_micros);
  json.KV("p50", r.latency_p50_micros);
  json.KV("p95", r.latency_p95_micros);
  json.KV("p99", r.latency_p99_micros);
  json.KV("max", r.latency_max_micros);
  json.EndObject();
  json.KV("arena_bytes_reused", r.arena_bytes_reused);
  json.EndObject();
}

/// Best repetition by throughput; errors accumulate across all reps (any
/// failed request in any repetition is fatal).
PhaseResult BestOf(const std::vector<PhaseResult>& reps) {
  size_t best_index = 0;
  int64_t errors = 0;
  std::vector<double> rps;
  for (size_t i = 0; i < reps.size(); ++i) {
    errors += reps[i].errors;
    rps.push_back(reps[i].requests_per_second);
    if (reps[i].requests_per_second > reps[best_index].requests_per_second) {
      best_index = i;
    }
  }
  PhaseResult best = reps[best_index];
  best.errors = errors;
  best.rps_reps = std::move(rps);
  return best;
}

/// One point on the throughput-vs-shards curve.
struct SweepPoint {
  int shards = 0;
  bool accept_relay = false;
  PhaseResult phase;
  int64_t divergences = 0;  // Serial replay vs in-process baseline bytes.
};

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"out", "sites", "requests", "records", "connections",
       "client-threads", "pipeline", "repetitions", "shards", "sweep",
       "no-streaming", "smoke", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  bool smoke = flags.Has("smoke");
  Result<int64_t> sites_or = flags.GetInt("sites", smoke ? 3 : 8);
  Result<int64_t> requests_or = flags.GetInt("requests", smoke ? 200 : 4000);
  // 0 = the dataset's own 2..10 records/page (what the unit corpora use).
  Result<int64_t> records_or = flags.GetInt("records", smoke ? 0 : 30);
  Result<int64_t> connections_or = flags.GetInt("connections", 1);
  Result<int64_t> pipeline_or = flags.GetInt("pipeline", 16);
  Result<int64_t> reps_or = flags.GetInt("repetitions", smoke ? 1 : 3);
  Result<int64_t> shards_or = flags.GetInt("shards", 1);
  if (!sites_or.ok() || !requests_or.ok() || !connections_or.ok() ||
      !pipeline_or.ok() || !reps_or.ok() || !shards_or.ok() ||
      *sites_or < 1 || *requests_or < 1 || *connections_or < 1 ||
      *pipeline_or < 1 || *reps_or < 1 || *shards_or < 1) {
    std::fprintf(stderr,
                 "--sites, --requests, --connections, --pipeline,"
                 " --repetitions and --shards must be >= 1\n%s",
                 kUsage);
    return 2;
  }
  if (!records_or.ok() || *records_or < 0) {
    std::fprintf(stderr, "--records must be >= 0 (0 = dataset default)\n%s",
                 kUsage);
    return 2;
  }
  Result<int64_t> client_threads_or =
      flags.GetInt("client-threads", *connections_or);
  if (!client_threads_or.ok() || *client_threads_or < 1) {
    std::fprintf(stderr, "--client-threads must be >= 1\n%s", kUsage);
    return 2;
  }
  std::vector<int> sweep_shards;
  if (flags.Has("sweep")) {
    for (const std::string& token : Split(flags.Get("sweep"), ',')) {
      std::string trimmed(StripWhitespace(token));
      if (trimmed.empty()) continue;
      int value = std::atoi(trimmed.c_str());
      if (value < 1) {
        std::fprintf(stderr, "--sweep values must be >= 1\n%s", kUsage);
        return 2;
      }
      sweep_shards.push_back(value);
    }
  }
  std::string out = flags.Get("out", "BENCH_serve.json");
  bool streaming_enabled = !flags.Has("no-streaming");

  // ----- pinned workload: DEALERS subset, one XPATH + one LR wrapper per
  // site (name.wrapper / name_lr.wrapper) --------------------------------
  datasets::DealersConfig config;
  config.num_sites = static_cast<size_t>(*sites_or);
  if (*records_or > 0) {
    config.min_records = static_cast<size_t>(*records_or);
    config.max_records = static_cast<size_t>(*records_or);
  }
  datasets::Dataset dealers = datasets::MakeDealers(config);

  std::filesystem::path repo_dir =
      std::filesystem::temp_directory_path() /
      ("ntw_loadgen_repo_" + std::to_string(::getpid()));
  core::XPathInductor xpath_inductor;
  core::LrInductor lr_inductor;
  // (site, attribute, page body) per request, in deterministic order.
  std::vector<std::string> page_bodies;
  std::vector<std::string> page_sites;
  for (size_t s = 0; s < dealers.sites.size(); ++s) {
    const sitegen::GeneratedSite& site = dealers.sites[s].site;
    std::string site_key = StrFormat("site_%04zu", s);
    auto truth = site.truth.find("name");
    if (truth == site.truth.end() || truth->second.empty()) {
      std::fprintf(stderr, "site %zu has no 'name' ground truth\n", s);
      return 1;
    }
    std::string site_dir = (repo_dir / site_key).string();
    Status made = MakeDirs(site_dir);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.ToString().c_str());
      return 1;
    }
    struct Learn {
      const core::WrapperInductor* inductor;
      const char* file;
    };
    for (const Learn& learn :
         {Learn{&xpath_inductor, "name.wrapper"},
          Learn{&lr_inductor, "name_lr.wrapper"}}) {
      core::Induction induction =
          learn.inductor->Induce(site.pages, truth->second);
      if (induction.wrapper == nullptr) {
        std::fprintf(stderr, "site %zu: induction failed (%s)\n", s,
                     learn.file);
        return 1;
      }
      Result<std::string> record =
          core::SerializeWrapper(*induction.wrapper);
      if (!record.ok()) {
        std::fprintf(stderr, "%s\n", record.status().ToString().c_str());
        return 1;
      }
      Status wrote =
          WriteFile(site_dir + "/" + learn.file, *record + "\n");
      if (!wrote.ok()) {
        std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
        return 1;
      }
    }
    for (size_t p = 0; p < site.pages.size(); ++p) {
      page_bodies.push_back(html::Serialize(site.pages.page(p).root()));
      page_sites.push_back(site_key);
    }
  }

  serve::WrapperRepository repository(repo_dir.string());
  Status loaded = repository.Load();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    std::filesystem::remove_all(repo_dir);
    return 1;
  }
  for (const std::string& error : repository.snapshot()->errors) {
    std::fprintf(stderr, "wrapper load error: %s\n", error.c_str());
  }

  serve::ExtractService streaming(
      &repository, &ThreadPool::Global(),
      serve::ExtractService::Options{true, 0, streaming_enabled});
  serve::ExtractService dom(&repository, &ThreadPool::Global(),
                            serve::ExtractService::Options{true, 0, false});
  serve::ExtractService interpreted(&repository, &ThreadPool::Global(),
                                    serve::ExtractService::Options{false, 0});

  // ----- equivalence gate: all three paths, every (attribute, page)
  // request, byte-compared. The streaming-service bodies double as the
  // baseline for the sweep's cross-shard replay below ("name" requests
  // first, then "name_lr", matching the replay order). -------------------
  int64_t divergences = 0;
  int64_t responses_compared = 0;
  std::vector<std::string> expected_bodies;
  expected_bodies.reserve(2 * page_bodies.size());
  for (const char* attribute : {"name", "name_lr"}) {
    for (size_t i = 0; i < page_bodies.size(); ++i) {
      serve::HttpRequest request;
      request.method = "POST";
      request.path = "/extract";
      request.query.emplace_back("site", page_sites[i]);
      request.query.emplace_back("attribute", attribute);
      request.body = page_bodies[i];
      serve::HttpResponse a = streaming.Handle(request);
      serve::HttpResponse b = dom.Handle(request);
      serve::HttpResponse c = interpreted.Handle(request);
      ++responses_compared;
      if (a.status != b.status || a.body != b.body ||
          a.status != c.status || a.body != c.body) {
        ++divergences;
        if (divergences <= 3) {
          std::fprintf(stderr,
                       "DIVERGENCE site=%s attribute=%s page=%zu\n"
                       "  streaming: %d %s\n  dom: %d %s\n  interp: %d %s\n",
                       page_sites[i].c_str(), attribute, i, a.status,
                       a.body.c_str(), b.status, b.body.c_str(), c.status,
                       c.body.c_str());
        }
      }
      expected_bodies.push_back(std::move(a.body));
    }
  }
  if (divergences > 0) {
    std::fprintf(stderr,
                 "ntw_loadgen: %lld of %lld responses diverge across"
                 " streaming/dom/interpreted paths\n",
                 static_cast<long long>(divergences),
                 static_cast<long long>(responses_compared));
    std::filesystem::remove_all(repo_dir);
    return 1;
  }
  std::fprintf(stderr,
               "equivalence: %lld responses byte-identical across paths\n",
               static_cast<long long>(responses_compared));

  // ----- fused gate: attribute=* multi-attribute responses with the
  // site's fused automaton (one scan for every dom_free attribute) vs
  // per-attribute extraction, byte-compared before anything is timed.
  // Reported on stderr only; the committed benchmark JSON is unchanged. --
  {
    serve::ExtractService::Options fused_off;  // Defaults, fused disabled.
    fused_off.fused = false;
    serve::ExtractService with_fused(&repository, &ThreadPool::Global(),
                                     serve::ExtractService::Options{});
    serve::ExtractService without_fused(&repository, &ThreadPool::Global(),
                                        fused_off);
    int64_t fused_divergences = 0;
    for (size_t i = 0; i < page_bodies.size(); ++i) {
      serve::HttpRequest request;
      request.method = "POST";
      request.path = "/extract";
      request.query.emplace_back("site", page_sites[i]);
      request.query.emplace_back("attribute", "*");
      request.body = page_bodies[i];
      serve::HttpResponse a = with_fused.Handle(request);
      serve::HttpResponse b = without_fused.Handle(request);
      if (a.status != b.status || a.body != b.body) {
        ++fused_divergences;
        if (fused_divergences <= 3) {
          std::fprintf(stderr,
                       "FUSED DIVERGENCE site=%s page=%zu\n"
                       "  fused: %d %s\n  per-attribute: %d %s\n",
                       page_sites[i].c_str(), i, a.status, a.body.c_str(),
                       b.status, b.body.c_str());
        }
      }
    }
    if (fused_divergences > 0) {
      std::fprintf(stderr,
                   "ntw_loadgen: %lld of %zu multi-attribute responses"
                   " diverge between fused and per-attribute paths\n",
                   static_cast<long long>(fused_divergences),
                   page_bodies.size());
      std::filesystem::remove_all(repo_dir);
      return 1;
    }
    std::fprintf(stderr,
                 "fused equivalence: %zu attribute=* responses"
                 " byte-identical with and without the fused scan\n",
                 page_bodies.size());
  }

  // Pre-serialized request bytes, one per (attribute, site, page).
  auto build_requests = [&](const char* attribute) {
    std::vector<std::string> requests;
    requests.reserve(page_bodies.size());
    for (size_t i = 0; i < page_bodies.size(); ++i) {
      std::string request = "POST /extract?site=" + page_sites[i] +
                            "&attribute=" + attribute +
                            " HTTP/1.1\r\n"
                            "Host: 127.0.0.1\r\n"
                            "Content-Type: text/html\r\n"
                            "Content-Length: " +
                            std::to_string(page_bodies[i].size()) +
                            "\r\n\r\n" + page_bodies[i];
      requests.push_back(std::move(request));
    }
    return requests;
  };
  std::vector<std::string> xpath_requests = build_requests("name");
  std::vector<std::string> lr_requests = build_requests("name_lr");

  int64_t total_requests = *requests_or;
  int connections = static_cast<int>(*connections_or);
  int client_threads = static_cast<int>(
      std::min<int64_t>(*client_threads_or, connections));
  int64_t pipeline = *pipeline_or;
  int repetitions = static_cast<int>(*reps_or);
  int shards = static_cast<int>(*shards_or);
  int max_shards = shards;
  for (int s : sweep_shards) max_shards = std::max(max_shards, s);
  obs::Registry::Global().SetShardCount(max_shards);

  // ----- in-process server for the main phases: --shards reactors, one
  // streaming + one arena-DOM + one interpreted service per shard (each
  // with a shard-private buffer pool), the active path flipped between
  // phases ---------------------------------------------------------------
  enum Mode : int { kStreaming = 0, kDom = 1, kInterpreted = 2 };
  std::atomic<int> mode{kStreaming};
  struct ShardServices {
    std::unique_ptr<serve::ExtractService> streaming;
    std::unique_ptr<serve::ExtractService> dom;
    std::unique_ptr<serve::ExtractService> interpreted;
  };
  std::vector<ShardServices> shard_services(static_cast<size_t>(shards));
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.shards = shards;
  server_options.pool = nullptr;  // Inline: the reactors are the threads.
  serve::HttpServer server(
      server_options,
      serve::HttpServer::HandlerFactory([&](int shard) {
        auto& slot = shard_services[static_cast<size_t>(shard)];
        slot.streaming = std::make_unique<serve::ExtractService>(
            &repository, &ThreadPool::Global(),
            serve::ExtractService::Options{true, shard, streaming_enabled});
        slot.dom = std::make_unique<serve::ExtractService>(
            &repository, &ThreadPool::Global(),
            serve::ExtractService::Options{true, shard, false});
        slot.interpreted = std::make_unique<serve::ExtractService>(
            &repository, &ThreadPool::Global(),
            serve::ExtractService::Options{false, shard});
        serve::ExtractService* s = slot.streaming.get();
        serve::ExtractService* d = slot.dom.get();
        serve::ExtractService* i = slot.interpreted.get();
        return [s, d, i, &mode](const serve::HttpRequest& request) {
          switch (mode.load(std::memory_order_acquire)) {
            case kStreaming:
              return s->Handle(request);
            case kDom:
              return d->Handle(request);
            default:
              return i->Handle(request);
          }
        };
      }));
  Status bound = server.Bind();
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    std::filesystem::remove_all(repo_dir);
    return 1;
  }
  int port = server.port();
  std::thread server_thread([&server]() { server.Run(); });

  std::fprintf(stderr,
               "ntw_loadgen: %zu sites, %zu pages, %lld requests/phase,"
               " %d connection(s), %d client thread(s), pipeline %lld,"
               " %d repetition(s), %d shard(s), port %d\n",
               dealers.sites.size(), page_bodies.size(),
               static_cast<long long>(total_requests), connections,
               client_threads, static_cast<long long>(pipeline), repetitions,
               shards, port);

  // Interleave all six phases across repetitions so slow drift in the
  // environment hits every phase alike; keep the best repetition of
  // each, the same noise-rejection convention as ntw_bench.
  struct PhaseSpec {
    const char* name;
    const char* plan_kind;
    const char* path;
    Mode phase_mode;
    const std::vector<std::string>* requests;
  };
  const PhaseSpec specs[] = {
      {"delimiter_streaming", "lr", streaming_enabled ? "streaming" : "dom",
       kStreaming, &lr_requests},
      {"delimiter_dom", "lr", "dom", kDom, &lr_requests},
      {"delimiter_interpreted", "lr", "interpreted", kInterpreted,
       &lr_requests},
      {"xpath_streaming", "xpath", streaming_enabled ? "streaming" : "dom",
       kStreaming, &xpath_requests},
      {"xpath_fast", "xpath", "dom", kDom, &xpath_requests},
      {"xpath_interpreted", "xpath", "interpreted", kInterpreted,
       &xpath_requests},
  };
  constexpr size_t kPhaseCount = sizeof(specs) / sizeof(specs[0]);
  std::vector<std::vector<PhaseResult>> phase_reps(kPhaseCount);
  for (int rep = 0; rep < repetitions; ++rep) {
    for (size_t ph = 0; ph < kPhaseCount; ++ph) {
      mode.store(specs[ph].phase_mode, std::memory_order_release);
      PhaseResult r =
          RunPhase(specs[ph].name, port, *specs[ph].requests,
                   total_requests, connections, client_threads, pipeline);
      r.plan_kind = specs[ph].plan_kind;
      r.path = specs[ph].path;
      phase_reps[ph].push_back(std::move(r));
    }
  }
  std::vector<PhaseResult> phase_results;
  phase_results.reserve(kPhaseCount);
  for (size_t ph = 0; ph < kPhaseCount; ++ph) {
    phase_results.push_back(BestOf(phase_reps[ph]));
  }

  server.RequestShutdown();
  server_thread.join();

  int64_t phase_errors = 0;
  for (const PhaseResult& r : phase_results) {
    std::fprintf(stderr,
                 "  %-22s %9.1f req/s  p50=%lldus p95=%lldus p99=%lldus"
                 "  errors=%lld\n",
                 r.name.c_str(), r.requests_per_second,
                 static_cast<long long>(r.latency_p50_micros),
                 static_cast<long long>(r.latency_p95_micros),
                 static_cast<long long>(r.latency_p99_micros),
                 static_cast<long long>(r.errors));
    phase_errors += r.errors;
  }
  if (phase_errors > 0) {
    std::fprintf(stderr, "ntw_loadgen: request errors during load\n");
    std::filesystem::remove_all(repo_dir);
    return 1;
  }
  auto rps_of = [&](const char* name) {
    for (const PhaseResult& r : phase_results) {
      if (r.name == name) return r.requests_per_second;
    }
    return 0.0;
  };
  auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  // The headline number: streaming vs the arena-DOM fast path on the
  // delimiter-only workload — what skipping the DOM entirely buys.
  double streaming_vs_dom = ratio(rps_of("delimiter_streaming"),
                                  rps_of("delimiter_dom"));
  double streaming_vs_interp = ratio(rps_of("delimiter_streaming"),
                                     rps_of("delimiter_interpreted"));
  double dom_vs_interp = ratio(rps_of("delimiter_dom"),
                               rps_of("delimiter_interpreted"));
  double xpath_vs_interp =
      ratio(rps_of("xpath_fast"), rps_of("xpath_interpreted"));
  // The XPath headline: the fused tokenize→plan-execute machine vs the
  // arena-DOM step machine on the same plans and pages.
  double xpath_streaming_vs_fast =
      ratio(rps_of("xpath_streaming"), rps_of("xpath_fast"));
  std::fprintf(stderr,
               "  speedups: delimiter streaming/dom %.2fx,"
               " streaming/interp %.2fx, dom/interp %.2fx;"
               " xpath streaming/fast %.2fx, fast/interp %.2fx\n",
               streaming_vs_dom, streaming_vs_interp, dom_vs_interp,
               xpath_streaming_vs_fast, xpath_vs_interp);

  // ----- shard sweep: throughput-vs-shards curve + cross-shard bytes ----
  std::vector<SweepPoint> sweep;
  for (int point_shards : sweep_shards) {
    SweepPoint point;
    point.shards = point_shards;
    std::vector<ShardServices> sweep_services(
        static_cast<size_t>(point_shards));
    serve::ServerOptions sweep_options;
    sweep_options.port = 0;
    sweep_options.shards = point_shards;
    sweep_options.pool = nullptr;
    serve::HttpServer sweep_server(
        sweep_options,
        serve::HttpServer::HandlerFactory([&](int shard) {
          auto& slot = sweep_services[static_cast<size_t>(shard)];
          slot.streaming = std::make_unique<serve::ExtractService>(
              &repository, &ThreadPool::Global(),
              serve::ExtractService::Options{true, shard,
                                             streaming_enabled});
          serve::ExtractService* f = slot.streaming.get();
          return [f](const serve::HttpRequest& request) {
            return f->Handle(request);
          };
        }));
    Status sweep_bound = sweep_server.Bind();
    if (!sweep_bound.ok()) {
      std::fprintf(stderr, "%s\n", sweep_bound.ToString().c_str());
      std::filesystem::remove_all(repo_dir);
      return 1;
    }
    point.accept_relay = sweep_server.using_accept_relay();
    int sweep_port = sweep_server.port();
    std::thread sweep_thread([&sweep_server]() { sweep_server.Run(); });

    // Scale offered load with the shard count so the server, not the
    // client, is the bottleneck being measured.
    int sweep_connections = std::max(connections, 2 * point_shards);
    int sweep_client_threads =
        std::min(sweep_connections, std::max(client_threads, point_shards));
    // The sweep drives the delimiter_streaming workload — the new hot
    // path whose shard scaling the curve is meant to track.
    std::vector<PhaseResult> point_reps;
    for (int rep = 0; rep < repetitions; ++rep) {
      PhaseResult r = RunPhase(
          "sweep_" + std::to_string(point_shards), sweep_port, lr_requests,
          total_requests, sweep_connections, sweep_client_threads,
          pipeline);
      r.plan_kind = "lr";
      r.path = streaming_enabled ? "streaming" : "dom";
      point_reps.push_back(std::move(r));
    }
    point.phase = BestOf(point_reps);

    // Cross-shard byte-identity: replay every distinct request serially
    // on a fresh connection ("name" first, then "name_lr" — the
    // expected_bodies order) and compare against the in-process baseline.
    {
      Client replay(sweep_port);
      size_t expected_index = 0;
      for (const std::vector<std::string>* requests :
           {&xpath_requests, &lr_requests}) {
        for (size_t i = 0; replay.ok() && i < requests->size();
             ++i, ++expected_index) {
          if (!replay.Send((*requests)[i])) {
            ++point.divergences;
            break;
          }
          std::string response = replay.ReadResponse();
          size_t body_start = response.find("\r\n\r\n");
          std::string body = body_start == std::string::npos
                                 ? std::string()
                                 : response.substr(body_start + 4);
          if (body != expected_bodies[expected_index]) {
            ++point.divergences;
            if (point.divergences <= 3) {
              std::fprintf(stderr,
                           "SHARD DIVERGENCE shards=%d request=%zu\n",
                           point_shards, expected_index);
            }
          }
        }
      }
      if (!replay.ok()) ++point.divergences;
    }

    sweep_server.RequestShutdown();
    sweep_thread.join();
    std::fprintf(stderr,
                 "  sweep shards=%-2d %9.1f req/s  (%d conns, %d client"
                 " threads%s)  divergences=%lld\n",
                 point_shards, point.phase.requests_per_second,
                 sweep_connections, sweep_client_threads,
                 point.accept_relay ? ", accept relay" : "",
                 static_cast<long long>(point.divergences));
    sweep.push_back(std::move(point));
  }
  std::filesystem::remove_all(repo_dir);
  int64_t sweep_errors = 0;
  int64_t sweep_divergences = 0;
  for (const SweepPoint& point : sweep) {
    sweep_errors += point.phase.errors;
    sweep_divergences += point.divergences;
  }
  if (sweep_errors > 0 || sweep_divergences > 0) {
    std::fprintf(stderr,
                 "ntw_loadgen: sweep failed (%lld errors, %lld"
                 " divergences)\n",
                 static_cast<long long>(sweep_errors),
                 static_cast<long long>(sweep_divergences));
    return 1;
  }

  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-serve-bench", kSchemaVersion);
  json.Key("config");
  json.BeginObject();
  json.KV("sites", static_cast<int64_t>(dealers.sites.size()));
  json.KV("pages", static_cast<int64_t>(page_bodies.size()));
  {
    size_t total_bytes = 0;
    for (const std::string& body : page_bodies) total_bytes += body.size();
    json.KV("records_per_page",
            *records_or > 0 ? *records_or : int64_t{0});
    json.KV("page_bytes_total", static_cast<int64_t>(total_bytes));
    json.KV("page_bytes_mean",
            static_cast<int64_t>(page_bodies.empty()
                                     ? 0
                                     : total_bytes / page_bodies.size()));
  }
  json.KV("requests_per_phase", total_requests);
  json.KV("connections", static_cast<int64_t>(connections));
  json.KV("client_threads", static_cast<int64_t>(client_threads));
  json.KV("pipeline", pipeline);
  json.KV("repetitions", static_cast<int64_t>(repetitions));
  json.KV("shards", static_cast<int64_t>(shards));
  json.KV("server_inline", true);
  json.KV("streaming", streaming_enabled);
  json.KV("smoke", smoke);
  json.EndObject();
  WriteMachineInfo(json);
  json.Key("phases");
  json.BeginArray();
  for (const PhaseResult& r : phase_results) WritePhase(json, r);
  json.EndArray();
  json.Key("speedups");
  json.BeginObject();
  json.KV("delimiter_streaming_vs_dom", streaming_vs_dom);
  json.KV("delimiter_streaming_vs_interpreted", streaming_vs_interp);
  json.KV("delimiter_dom_vs_interpreted", dom_vs_interp);
  json.KV("xpath_streaming_vs_fast", xpath_streaming_vs_fast);
  json.KV("xpath_fast_vs_interpreted", xpath_vs_interp);
  json.EndObject();
  json.Key("equivalence");
  json.BeginObject();
  json.KV("responses_compared", responses_compared);
  json.KV("divergences", divergences);
  json.EndObject();
  json.Key("sweep");
  json.BeginArray();
  for (const SweepPoint& point : sweep) {
    json.BeginObject();
    json.KV("shards", static_cast<int64_t>(point.shards));
    json.KV("accept_relay", point.accept_relay);
    json.KV("plan_kind", point.phase.plan_kind);
    json.KV("path", point.phase.path);
    json.KV("requests_per_second", point.phase.requests_per_second);
    json.Key("requests_per_second_reps");
    json.BeginArray();
    for (double rps : point.phase.rps_reps) json.Double(rps);
    json.EndArray();
    json.Key("latency_micros");
    json.BeginObject();
    json.KV("count", point.phase.latency_count);
    json.KV("mean", point.phase.latency_mean_micros);
    json.KV("p50", point.phase.latency_p50_micros);
    json.KV("p95", point.phase.latency_p95_micros);
    json.KV("p99", point.phase.latency_p99_micros);
    json.KV("max", point.phase.latency_max_micros);
    json.EndObject();
    json.KV("errors", point.phase.errors);
    json.KV("divergences", point.divergences);
    json.EndObject();
  }
  json.EndArray();
  json.KV("peak_rss_bytes", obs::PeakRssBytes());
  json.EndObject();
  std::string body = json.Take();
  Status written = WriteFile(out, body + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes, peak rss %.1f MiB)\n",
               out.c_str(), body.size() + 1,
               static_cast<double>(obs::PeakRssBytes()) / (1024.0 * 1024.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
