// ntw_crawl — the fetch→extract→emit ingestion pipeline as a CLI.
//
// Usage:
//   ntw_crawl --wrapper-dir DIR --seeds URL[,URL...] [--out FILE]
//             [--workers N] [--max-depth N] [--max-pages N]
//             [--allow GLOB[,GLOB...]] [--deny GLOB[,GLOB...]]
//             [--rps R] [--burst B] [--domain-parallelism N]
//             [--no-robots] [--robots-ttl SECONDS]
//             [--attribute NAME] [--site SITE] [--timing]
//             [--no-fast-path] [--no-streaming] [--max-retries N]
//             [--timeout-ms N] [--self-heal] [--metrics-json FILE]
//             [--quiet]
//
// Crawls from the seed URLs (file:// or http://) through the
// deduplicating per-domain frontier, extracts every fetched page with
// the wrapper repository's compiled/streaming tiers, and writes one
// ntw-crawl-record NDJSON line per (page, attribute) to --out (default
// stdout) in frontier dispatch order — byte-identical to offline
// `ntw_extract --emit ndjson` over the same pages, at any --workers.
//
// --self-heal turns on the same drift→re-induce→publish loop the daemon
// runs: detectors observe every extraction, and a drifted (site,
// attribute) is re-learned from retained crawl pages and published back
// to --wrapper-dir mid-crawl (the repair ledger records each publish).

#include <cstdio>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "crawl/pipeline.h"
#include "obs/metrics.h"
#include "serve/reinduce.h"
#include "serve/wrapper_repository.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_crawl --wrapper-dir DIR --seeds URL[,URL...]\n"
    "                 [--out FILE] [--workers N] [--max-depth N]\n"
    "                 [--max-pages N] [--allow GLOBS] [--deny GLOBS]\n"
    "                 [--rps R] [--burst B] [--domain-parallelism N]\n"
    "                 [--no-robots] [--robots-ttl SECONDS]\n"
    "                 [--attribute NAME] [--site SITE] [--timing]\n"
    "                 [--no-fast-path] [--no-streaming] [--max-retries N]\n"
    "                 [--timeout-ms N] [--self-heal]\n"
    "                 [--metrics-json FILE] [--quiet]\n";

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  for (const std::string& part : Split(csv, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"wrapper-dir", "seeds", "out", "workers", "max-depth", "max-pages",
       "allow", "deny", "rps", "burst", "domain-parallelism", "no-robots",
       "robots-ttl", "attribute", "site", "timing", "no-fast-path",
       "no-streaming", "max-retries", "timeout-ms", "self-heal",
       "metrics-json", "quiet", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }

  std::string wrapper_dir = flags.Get("wrapper-dir");
  std::vector<std::string> seeds = SplitList(flags.Get("seeds"));
  for (const std::string& positional : flags.positional()) {
    seeds.push_back(positional);  // Bare URLs work too.
  }
  if (wrapper_dir.empty() || seeds.empty()) {
    std::fprintf(stderr, "--wrapper-dir and --seeds are required\n%s",
                 kUsage);
    return 2;
  }

  crawl::CrawlOptions options;
  Result<int64_t> workers = flags.GetInt("workers", options.workers);
  Result<int64_t> max_depth = flags.GetInt("max-depth", options.max_depth);
  Result<int64_t> max_pages = flags.GetInt("max-pages", options.max_pages);
  Result<int64_t> domain_parallelism =
      flags.GetInt("domain-parallelism", options.domain_parallelism);
  Result<int64_t> max_retries =
      flags.GetInt("max-retries", options.max_retries);
  Result<int64_t> timeout_ms =
      flags.GetInt("timeout-ms", options.fetch.timeout_ms);
  for (const auto* value : {&workers, &max_depth, &max_pages,
                            &domain_parallelism, &max_retries, &timeout_ms}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                   kUsage);
      return 2;
    }
  }
  Result<double> rps =
      flags.GetDouble("rps", options.rate.requests_per_second);
  Result<double> burst = flags.GetDouble("burst", options.rate.burst);
  Result<double> robots_ttl =
      flags.GetDouble("robots-ttl", options.robots_ttl_seconds);
  for (const auto* value : {&rps, &burst, &robots_ttl}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                   kUsage);
      return 2;
    }
  }
  options.workers = static_cast<int>(*workers);
  options.max_depth = static_cast<int>(*max_depth);
  options.max_pages = *max_pages;
  options.domain_parallelism = static_cast<int>(*domain_parallelism);
  options.max_retries = static_cast<int>(*max_retries);
  options.fetch.timeout_ms = static_cast<int>(*timeout_ms);
  options.rate.requests_per_second = *rps;
  options.rate.burst = *burst;
  options.robots_ttl_seconds = *robots_ttl;
  options.allow = SplitList(flags.Get("allow"));
  options.deny = SplitList(flags.Get("deny"));
  options.respect_robots = !flags.Has("no-robots");
  options.attribute = flags.Get("attribute");
  options.fixed_site = flags.Get("site");
  options.timing = flags.Has("timing");
  options.fast_path = !flags.Has("no-fast-path");
  options.streaming = !flags.Has("no-streaming");
  options.self_heal = flags.Has("self-heal");

  serve::WrapperRepository repository(wrapper_dir);
  if (options.self_heal) {
    serve::DriftConfig drift;
    drift.enabled = true;
    repository.SetDriftConfig(drift);
  }
  Status loaded = repository.Load();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  std::shared_ptr<const serve::WrapperRepository::Snapshot> snapshot =
      repository.snapshot();
  for (const std::string& error : snapshot->errors) {
    std::fprintf(stderr, "ntw_crawl: skipped wrapper: %s\n", error.c_str());
  }
  bool quiet = flags.Has("quiet");
  if (!quiet) {
    std::fprintf(stderr, "ntw_crawl: loaded %zu wrappers from %s\n",
                 snapshot->wrappers.size(), wrapper_dir.c_str());
  }

  std::unique_ptr<serve::ReinduceWorker> reinducer;
  if (options.self_heal) {
    reinducer = std::make_unique<serve::ReinduceWorker>(
        &repository, serve::ReinduceOptions{});
    reinducer->Start();
  }

  FILE* out = stdout;
  std::string out_path = flags.Get("out");
  if (!out_path.empty() && out_path != "-") {
    out = std::fopen(out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "ntw_crawl: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }

  ThreadPool pool(options.workers);
  crawl::CrawlPipeline pipeline(&repository, &pool, options,
                                reinducer.get());
  crawl::CrawlStats stats = pipeline.Run(
      seeds, [out](std::string_view chunk) {
        std::fwrite(chunk.data(), 1, chunk.size(), out);
      });
  if (out != stdout) std::fclose(out);

  if (reinducer) {
    reinducer->WaitIdle();
    reinducer->Stop();
  }

  if (!quiet) {
    std::fprintf(
        stderr,
        "ntw_crawl: fetched=%lld failed=%lld retries=%lld "
        "robots_denied=%lld records=%lld values=%lld links=%lld "
        "bytes=%lld admitted=%lld deduped=%lld denied=%lld\n",
        static_cast<long long>(stats.pages_fetched),
        static_cast<long long>(stats.pages_failed),
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.robots_denied),
        static_cast<long long>(stats.records_emitted),
        static_cast<long long>(stats.values_extracted),
        static_cast<long long>(stats.links_discovered),
        static_cast<long long>(stats.bytes_fetched),
        static_cast<long long>(stats.urls_admitted),
        static_cast<long long>(stats.urls_deduped),
        static_cast<long long>(stats.urls_denied));
  }
  if (flags.Has("metrics-json")) {
    Status written = WriteFile(flags.Get("metrics-json"),
                               obs::Registry::Global().ToJson() + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  return stats.pages_failed > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
