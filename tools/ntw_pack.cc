// ntw_pack — build, inspect and verify wrapper packs (DESIGN.md §15).
//
// Usage:
//   ntw_pack build --root DIR --out PACK
//   ntw_pack inspect PACK [--site NAME]
//   ntw_pack verify PACK
//
// `build` walks a `<root>/<site>/<attribute>.wrapper` repository tree and
// serializes it into one memory-mappable pack file: interned strings,
// fixed-layout compiled plans, sorted per-site directory, and one fused
// multi-pattern delimiter automaton per site. The output is a pure
// function of the (site, attribute, record) set — rebuilding from the
// same tree is bit-identical, which `verify` exploits.
//
// `inspect` prints a JSON summary of the header (and one site's entries
// with --site) without touching more pages than asked for.
//
// `verify` runs the full offline check: body checksum, directory
// sortedness and bounds, every record parsed, every plan blob decoded and
// cross-checked against its record, every automaton validated — the
// integrity gate CI runs after every build.

#include <cstdio>
#include <filesystem>

#include "common/file_util.h"
#include "common/flags.h"
#include "common/obs_export.h"
#include "core/wrapper_pack.h"
#include "obs/json.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_pack build --root DIR --out PACK\n"
    "       ntw_pack inspect PACK [--site NAME]\n"
    "       ntw_pack verify PACK\n";

constexpr char kSuffix[] = ".wrapper";

const char* PlanKindName(uint32_t kind) {
  switch (kind) {
    case core::kPackPlanXPath: return "xpath";
    case core::kPackPlanLr: return "lr";
    case core::kPackPlanHlrt: return "hlrt";
    case core::kPackPlanNone: return "none";
    default: return "unknown";
  }
}

int Build(const Flags& flags) {
  std::string root = flags.Get("root");
  std::string out = flags.Get("out");
  if (root.empty() || out.empty()) {
    std::fprintf(stderr, "build needs --root and --out\n%s", kUsage);
    return 2;
  }
  core::WrapperPackBuilder builder;
  Result<std::vector<std::string>> site_dirs = ListSubdirectories(root);
  if (!site_dirs.ok()) {
    std::fprintf(stderr, "%s\n", site_dirs.status().ToString().c_str());
    return 1;
  }
  size_t skipped = 0;
  for (const std::string& site_dir : *site_dirs) {
    std::string site = std::filesystem::path(site_dir).filename().string();
    Result<std::vector<std::string>> files = ListFiles(site_dir, kSuffix);
    if (!files.ok()) continue;
    for (const std::string& file : *files) {
      std::string attribute = std::filesystem::path(file).filename().string();
      attribute.resize(attribute.size() - (sizeof(kSuffix) - 1));
      Result<std::string> record = ReadFile(file);
      if (!record.ok()) {
        std::fprintf(stderr, "ntw_pack: skipping %s: %s\n", file.c_str(),
                     record.status().ToString().c_str());
        ++skipped;
        continue;
      }
      Status added = builder.Add(site, attribute, *record);
      if (!added.ok()) {
        // One bad record must not abort a million-site build.
        std::fprintf(stderr, "ntw_pack: skipping %s: %s\n", file.c_str(),
                     added.ToString().c_str());
        ++skipped;
      }
    }
  }
  if (builder.entry_count() == 0) {
    std::fprintf(stderr, "ntw_pack: no wrapper records under %s\n",
                 root.c_str());
    return 1;
  }
  Status wrote = builder.WriteFile(out);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "ntw_pack: wrote %s (%zu sites, %zu entries, %zu skipped)\n",
               out.c_str(), builder.site_count(), builder.entry_count(),
               skipped);
  return 0;
}

int Inspect(const Flags& flags, const std::string& path) {
  auto pack = core::WrapperPack::Open(path);
  if (!pack.ok()) {
    std::fprintf(stderr, "%s\n", pack.status().ToString().c_str());
    return 1;
  }
  const core::PackHeader& header = (*pack)->header();
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-pack-inspect", 2);
  json.KV("path", path);
  json.KV("pack_version", static_cast<int64_t>(header.version));
  json.KV("file_size", static_cast<int64_t>(header.file_size));
  json.KV("sites", static_cast<int64_t>(header.site_count));
  json.KV("entries", static_cast<int64_t>(header.entry_count));
  json.KV("plans_bytes", static_cast<int64_t>(header.plans_len));
  json.KV("automata_bytes", static_cast<int64_t>(header.automata_len));
  json.KV("strtab_bytes", static_cast<int64_t>(header.strtab_len));
  // Per-section byte breakdown: where a compression pass would pay. The
  // directories are fixed-width records, so their sizes follow from the
  // counts; "other" is whatever remains (alignment padding).
  {
    int64_t header_bytes = static_cast<int64_t>(sizeof(core::PackHeader));
    int64_t site_dir_bytes = static_cast<int64_t>(header.site_count *
                                                  sizeof(core::PackSiteRec));
    int64_t entry_dir_bytes = static_cast<int64_t>(
        header.entry_count * sizeof(core::PackEntryRec));
    int64_t accounted = header_bytes + site_dir_bytes + entry_dir_bytes +
                        static_cast<int64_t>(header.plans_len) +
                        static_cast<int64_t>(header.automata_len) +
                        static_cast<int64_t>(header.strtab_len);
    int64_t other = static_cast<int64_t>(header.file_size) - accounted;
    double scale =
        header.file_size > 0 ? 100.0 / static_cast<double>(header.file_size)
                             : 0.0;
    json.Key("sections");
    json.BeginObject();
    struct Section {
      const char* name;
      int64_t bytes;
    };
    for (const Section& section :
         {Section{"header", header_bytes},
          Section{"site_directory", site_dir_bytes},
          Section{"entry_directory", entry_dir_bytes},
          Section{"plans", static_cast<int64_t>(header.plans_len)},
          Section{"automata", static_cast<int64_t>(header.automata_len)},
          Section{"string_table", static_cast<int64_t>(header.strtab_len)},
          Section{"other", other}}) {
      json.Key(section.name);
      json.BeginObject();
      json.KV("bytes", section.bytes);
      json.KV("percent", static_cast<double>(section.bytes) * scale);
      json.EndObject();
    }
    json.EndObject();
  }
  if (flags.Has("site")) {
    std::string name = flags.Get("site");
    auto site = (*pack)->FindSite(name);
    if (!site.has_value()) {
      std::fprintf(stderr, "ntw_pack: no site '%s' in %s\n", name.c_str(),
                   path.c_str());
      return 1;
    }
    json.KV("site", name);
    json.KV("automaton_bytes",
            static_cast<int64_t>(site->automaton().size()));
    json.Key("site_entries");
    json.BeginArray();
    for (size_t i = 0; i < site->entry_count(); ++i) {
      auto entry = site->entry(i);
      if (!entry.has_value()) continue;
      json.BeginObject();
      json.KV("attribute", entry->attribute());
      json.KV("plan_kind", PlanKindName(entry->plan_kind()));
      json.KV("record", entry->record());
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
  std::string body = json.Take();
  body.push_back('\n');
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

int Verify(const std::string& path) {
  auto pack = core::WrapperPack::Open(path);
  if (!pack.ok()) {
    std::fprintf(stderr, "%s\n", pack.status().ToString().c_str());
    return 1;
  }
  Status verified = (*pack)->Verify();
  if (!verified.ok()) {
    std::fprintf(stderr, "ntw_pack: %s: %s\n", path.c_str(),
                 verified.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ntw_pack: %s ok (%zu sites, %llu entries)\n",
               path.c_str(), (*pack)->site_count(),
               static_cast<unsigned long long>((*pack)->header().entry_count));
  return 0;
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown =
      flags.UnknownFlags({"root", "out", "site", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  const std::vector<std::string>& positional = flags.positional();
  if (positional.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& command = positional[0];
  if (command == "build") {
    if (positional.size() != 1) {
      std::fprintf(stderr, "build takes no positional operands\n%s", kUsage);
      return 2;
    }
    return Build(flags);
  }
  if (command == "inspect" || command == "verify") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "%s takes one PACK operand\n%s", command.c_str(),
                   kUsage);
      return 2;
    }
    return command == "inspect" ? Inspect(flags, positional[1])
                                : Verify(positional[1]);
  }
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
