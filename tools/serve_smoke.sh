#!/bin/sh
# Smoke test of the ntw_serve daemon as a black box: start it on an
# ephemeral port against a throwaway wrapper repository, hit every
# endpoint with curl, then SIGTERM it and assert a clean drain (exit 0,
# final metrics flushed). check.sh and CI run this after the unit suite —
# it is the only place the installed binary, the signal handlers and the
# port-file handshake are exercised end to end.
# Usage: tools/serve_smoke.sh <build-dir> [shards] [extra daemon flags...]
# e.g. tools/serve_smoke.sh build 2 --no-streaming
set -u

BUILD="${1:?usage: tools/serve_smoke.sh <build-dir> [shards] [flags...]}"
SHARDS="${2:-1}"
SERVE="$BUILD/tools/ntw_serve"
[ -x "$SERVE" ] || { echo "serve_smoke: $SERVE not built" >&2; exit 1; }
# Remaining arguments are passed to the daemon verbatim (path toggles
# like --no-streaming / --no-fast-path, exercised by check.sh and CI).
[ "$#" -ge 2 ] && shift 2 || shift "$#"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ntw_serve_smoke.XXXXXX")"
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# A two-wrapper repository: example.com/name extracts <li> text via
# XPATH (arena fast path); example.com/name_lr is the equivalent LR
# delimiter plan, which dom_free-routes through the streaming path by
# default.
mkdir -p "$WORK/repo/example.com"
printf 'XPATH\t//li/text()\n' > "$WORK/repo/example.com/name.wrapper"
printf 'LR\t<li>\t</li>\n' > "$WORK/repo/example.com/name_lr.wrapper"

"$SERVE" --wrapper-dir "$WORK/repo" --port 0 --port-file "$WORK/port" \
    --shards "$SHARDS" \
    --metrics-json "$WORK/metrics.json" --quiet "$@" 2> "$WORK/stderr.log" &
PID=$!

# Wait for the port-file handshake (the daemon writes it after bind).
i=0
while [ ! -s "$WORK/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve_smoke: daemon never wrote the port file" >&2
    cat "$WORK/stderr.log" >&2
    exit 1
  fi
  kill -0 "$PID" 2>/dev/null || {
    echo "serve_smoke: daemon died at startup" >&2
    cat "$WORK/stderr.log" >&2
    exit 1
  }
  sleep 0.1
done
PORT="$(cat "$WORK/port")"
BASE="http://127.0.0.1:$PORT"

fail() { echo "serve_smoke: $1" >&2; cat "$WORK/stderr.log" >&2; exit 1; }

# /healthz
HEALTH="$(curl -sS --max-time 5 "$BASE/healthz")" || fail "healthz request failed"
[ "$HEALTH" = "ok" ] || fail "unexpected healthz body: $HEALTH"

# /extract
BODY='<html><ul><li>alpha</li><li>beta</li></ul></html>'
EXTRACT="$(printf '%s' "$BODY" | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract?site=example.com&attribute=name")" \
    || fail "extract request failed"
case "$EXTRACT" in
  *'"values":["alpha","beta"]'*) ;;
  *) fail "unexpected extract response: $EXTRACT" ;;
esac

# /extract with the LR delimiter plan (streaming no-DOM path unless the
# daemon was started with --no-streaming): same values, same bytes.
EXTRACT_LR="$(printf '%s' "$BODY" | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract?site=example.com&attribute=name_lr")" \
    || fail "lr extract request failed"
case "$EXTRACT_LR" in
  *'"values":["alpha","beta"]'*) ;;
  *) fail "unexpected lr extract response: $EXTRACT_LR" ;;
esac

# /extract_batch
BATCH="$(printf '{"id":"p1","html":"<ul><li>one</li></ul>"}\n{"id":"p2","html":"<ul><li>two</li></ul>"}\n' \
    | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract_batch?site=example.com&attribute=name")" \
    || fail "extract_batch request failed"
case "$BATCH" in
  *'"id":"p1","values":["one"]'*) ;;
  *) fail "unexpected batch response: $BATCH" ;;
esac

# /metrics must be the canonical ntw-metrics document and account for
# every request issued, including itself: healthz + extract + lr extract
# + batch + this one = 5 (the counter is bumped when a request is
# dispatched).
METRICS="$(curl -sS --max-time 5 "$BASE/metrics")" || fail "metrics request failed"
case "$METRICS" in
  *'"schema":"ntw-metrics"'*) ;;
  *) fail "metrics response is not an ntw-metrics document" ;;
esac
case "$METRICS" in
  *'"ntw.serve.requests":5'*) ;;
  *) fail "request counter does not account for the 5 requests: $METRICS" ;;
esac

# Hot reload on SIGHUP: a new wrapper becomes servable without restart.
printf 'XPATH\t//b/text()\n' > "$WORK/repo/example.com/price.wrapper"
kill -HUP "$PID" || fail "SIGHUP failed"
i=0
while :; do
  RELOADED="$(printf '<b>9</b>' | curl -sS --max-time 5 --data-binary @- \
      "$BASE/extract?site=example.com&attribute=price")" \
      || fail "post-reload extract failed"
  case "$RELOADED" in
    *'"values":["9"]'*) break ;;
  esac
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    fail "reload never served the new wrapper: $RELOADED"
  fi
  sleep 0.1
done

# Graceful SIGTERM: exit 0 and a flushed metrics file.
kill -TERM "$PID" || fail "SIGTERM failed"
wait "$PID"
CODE=$?
[ "$CODE" -eq 0 ] || fail "daemon exited $CODE instead of 0"
[ -s "$WORK/metrics.json" ] || fail "daemon did not flush --metrics-json"
case "$(cat "$WORK/metrics.json")" in
  *'"schema":"ntw-metrics"'*) ;;
  *) fail "flushed metrics file is not an ntw-metrics document" ;;
esac

echo "serve_smoke OK (port $PORT, $SHARDS shard(s))"
