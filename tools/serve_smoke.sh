#!/bin/sh
# Smoke test of the ntw_serve daemon as a black box: start it on an
# ephemeral port against a throwaway wrapper repository, hit every
# endpoint with curl, then SIGTERM it and assert a clean drain (exit 0,
# final metrics flushed). check.sh and CI run this after the unit suite —
# it is the only place the installed binary, the signal handlers and the
# port-file handshake are exercised end to end.
# Usage: tools/serve_smoke.sh <build-dir> [shards] [extra daemon flags...]
# e.g. tools/serve_smoke.sh build 2 --no-streaming
#
# `tools/serve_smoke.sh <build-dir> --self-heal` runs the self-healing
# scenario instead: break the live template mid-traffic and assert the
# daemon re-induces, hot-publishes and persists a working wrapper.
set -u

BUILD="${1:?usage: tools/serve_smoke.sh <build-dir> [shards|--self-heal] [flags...]}"
SERVE="$BUILD/tools/ntw_serve"
[ -x "$SERVE" ] || { echo "serve_smoke: $SERVE not built" >&2; exit 1; }
SELF_HEAL=0
if [ "${2:-}" = "--self-heal" ]; then
  SELF_HEAL=1
  SHARDS=1
  shift 2
  # Tight thresholds so the drift pipeline (warmup -> streak -> collect
  # -> re-induce -> publish) completes within a smoke-test budget.
  set -- --drift-warmup 4 --drift-window 2 --drift-empty-streak 2 \
      --drift-retain 3 --drift-hysteresis 1 "$@"
else
  SHARDS="${2:-1}"
  # Remaining arguments are passed to the daemon verbatim (path toggles
  # like --no-streaming / --no-fast-path, exercised by check.sh and CI).
  [ "$#" -ge 2 ] && shift 2 || shift "$#"
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ntw_serve_smoke.XXXXXX")"
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# A two-wrapper repository: example.com/name extracts <li> text via
# XPATH (arena fast path); example.com/name_lr is the equivalent LR
# delimiter plan, which dom_free-routes through the streaming path by
# default.
mkdir -p "$WORK/repo/example.com"
if [ "$SELF_HEAL" -eq 1 ]; then
  # Self-heal scenario: one LR delimiter wrapper that a <b> -> <strong>
  # template change breaks completely.
  printf 'LR\t<b>\t</b>\n' > "$WORK/repo/example.com/name.wrapper"
else
  printf 'XPATH\t//li/text()\n' > "$WORK/repo/example.com/name.wrapper"
  printf 'LR\t<li>\t</li>\n' > "$WORK/repo/example.com/name_lr.wrapper"
fi

"$SERVE" --wrapper-dir "$WORK/repo" --port 0 --port-file "$WORK/port" \
    --shards "$SHARDS" \
    --metrics-json "$WORK/metrics.json" --quiet "$@" 2> "$WORK/stderr.log" &
PID=$!

# Wait for the port-file handshake (the daemon writes it after bind).
i=0
while [ ! -s "$WORK/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve_smoke: daemon never wrote the port file" >&2
    cat "$WORK/stderr.log" >&2
    exit 1
  fi
  kill -0 "$PID" 2>/dev/null || {
    echo "serve_smoke: daemon died at startup" >&2
    cat "$WORK/stderr.log" >&2
    exit 1
  }
  sleep 0.1
done
PORT="$(cat "$WORK/port")"
BASE="http://127.0.0.1:$PORT"

fail() { echo "serve_smoke: $1" >&2; cat "$WORK/stderr.log" >&2; exit 1; }

if [ "$SELF_HEAL" -eq 1 ]; then
  HEALTHY='<html><body><div><b>alpha cars</b><i>s</i></div><div><b>bravo vans</b><i>s</i></div><div><b>carol autos</b><i>s</i></div></body></html>'
  MUTATED='<html><body><div><strong>alpha cars</strong><i>s</i></div><div><strong>bravo vans</strong><i>s</i></div><div><strong>carol autos</strong><i>s</i></div></body></html>'

  # Warm the drift detector's baseline (and its value dictionary, which
  # seeds re-induction labeling) with healthy traffic.
  i=0
  while [ "$i" -lt 6 ]; do
    WARM="$(printf '%s' "$HEALTHY" | curl -sS --max-time 5 --data-binary @- \
        "$BASE/extract?site=example.com&attribute=name")" \
        || fail "self-heal warmup extract failed"
    case "$WARM" in
      *'"values":["alpha cars","bravo vans","carol autos"]'*) ;;
      *) fail "unexpected healthy extract response: $WARM" ;;
    esac
    i=$((i + 1))
  done

  # /driftz exposes the detector with self-healing on.
  DRIFTZ="$(curl -sS --max-time 5 "$BASE/driftz")" || fail "driftz request failed"
  case "$DRIFTZ" in
    *'"schema":"ntw-serve-drift"'*) ;;
    *) fail "driftz response is not an ntw-serve-drift document: $DRIFTZ" ;;
  esac
  case "$DRIFTZ" in
    *'"self_heal":true'*) ;;
    *) fail "driftz does not report self_heal enabled: $DRIFTZ" ;;
  esac

  # Break the template and keep the traffic coming: the daemon must
  # detect the drift, re-induce from retained pages and hot-publish a
  # repaired wrapper — after which the same mutated body extracts again.
  i=0
  while :; do
    HEALED="$(printf '%s' "$MUTATED" | curl -sS --max-time 5 --data-binary @- \
        "$BASE/extract?site=example.com&attribute=name")" \
        || fail "self-heal drifted extract failed"
    case "$HEALED" in
      *'"values":["alpha cars","bravo vans","carol autos"]'*) break ;;
      *'"values":[]'*) ;;
      *) fail "unexpected drifted extract response: $HEALED" ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
      fail "daemon never healed from the template mutation: $HEALED"
    fi
    sleep 0.05
  done

  # The repaired wrapper must be durable: persisted over the incumbent
  # with the new delimiters, so a restart would survive the drift too.
  grep -q 'strong' "$WORK/repo/example.com/name.wrapper" \
      || fail "published wrapper was not persisted to disk"
  METRICS="$(curl -sS --max-time 5 "$BASE/metrics")" || fail "metrics request failed"
  case "$METRICS" in
    *'"ntw.serve.reinduce_published":1'*) ;;
    *) fail "metrics do not report exactly one publish: $METRICS" ;;
  esac

  kill -TERM "$PID" || fail "SIGTERM failed"
  wait "$PID"
  CODE=$?
  [ "$CODE" -eq 0 ] || fail "daemon exited $CODE instead of 0"
  echo "serve_smoke OK (port $PORT, self-heal)"
  exit 0
fi

# /healthz
HEALTH="$(curl -sS --max-time 5 "$BASE/healthz")" || fail "healthz request failed"
[ "$HEALTH" = "ok" ] || fail "unexpected healthz body: $HEALTH"

# /extract
BODY='<html><ul><li>alpha</li><li>beta</li></ul></html>'
EXTRACT="$(printf '%s' "$BODY" | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract?site=example.com&attribute=name")" \
    || fail "extract request failed"
case "$EXTRACT" in
  *'"values":["alpha","beta"]'*) ;;
  *) fail "unexpected extract response: $EXTRACT" ;;
esac

# /extract with the LR delimiter plan (streaming no-DOM path unless the
# daemon was started with --no-streaming): same values, same bytes.
EXTRACT_LR="$(printf '%s' "$BODY" | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract?site=example.com&attribute=name_lr")" \
    || fail "lr extract request failed"
case "$EXTRACT_LR" in
  *'"values":["alpha","beta"]'*) ;;
  *) fail "unexpected lr extract response: $EXTRACT_LR" ;;
esac

# /extract_batch
BATCH="$(printf '{"id":"p1","html":"<ul><li>one</li></ul>"}\n{"id":"p2","html":"<ul><li>two</li></ul>"}\n' \
    | curl -sS --max-time 5 --data-binary @- \
    "$BASE/extract_batch?site=example.com&attribute=name")" \
    || fail "extract_batch request failed"
case "$BATCH" in
  *'"id":"p1","values":["one"]'*) ;;
  *) fail "unexpected batch response: $BATCH" ;;
esac

# /metrics must be the canonical ntw-metrics document and account for
# every request issued, including itself: healthz + extract + lr extract
# + batch + this one = 5 (the counter is bumped when a request is
# dispatched).
METRICS="$(curl -sS --max-time 5 "$BASE/metrics")" || fail "metrics request failed"
case "$METRICS" in
  *'"schema":"ntw-metrics"'*) ;;
  *) fail "metrics response is not an ntw-metrics document" ;;
esac
case "$METRICS" in
  *'"ntw.serve.requests":5'*) ;;
  *) fail "request counter does not account for the 5 requests: $METRICS" ;;
esac

# Hot reload on SIGHUP: a new wrapper becomes servable without restart.
printf 'XPATH\t//b/text()\n' > "$WORK/repo/example.com/price.wrapper"
kill -HUP "$PID" || fail "SIGHUP failed"
i=0
while :; do
  RELOADED="$(printf '<b>9</b>' | curl -sS --max-time 5 --data-binary @- \
      "$BASE/extract?site=example.com&attribute=price")" \
      || fail "post-reload extract failed"
  case "$RELOADED" in
    *'"values":["9"]'*) break ;;
  esac
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    fail "reload never served the new wrapper: $RELOADED"
  fi
  sleep 0.1
done

# Graceful SIGTERM: exit 0 and a flushed metrics file.
kill -TERM "$PID" || fail "SIGTERM failed"
wait "$PID"
CODE=$?
[ "$CODE" -eq 0 ] || fail "daemon exited $CODE instead of 0"
[ -s "$WORK/metrics.json" ] || fail "daemon did not flush --metrics-json"
case "$(cat "$WORK/metrics.json")" in
  *'"schema":"ntw-metrics"'*) ;;
  *) fail "flushed metrics file is not an ntw-metrics document" ;;
esac

echo "serve_smoke OK (port $PORT, $SHARDS shard(s))"
