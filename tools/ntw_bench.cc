// ntw_bench — perf-regression bench runner.
//
// Executes a pinned subset of the Figure-2 benches (enumeration call
// counts / wall clock for LR and XPATH, end-to-end NTW-vs-NAIVE runs on
// DEALERS) and emits a schema-versioned BENCH_ntw.json with wall clock,
// inductor-call accounting, cache hit rate and peak RSS, so the perf
// trajectory of the repo accumulates run over run. Accuracy (F1) is
// recorded alongside speed: a correctness regression shows up in the same
// file as a perf one.
//
// Usage:
//   ntw_bench [--out BENCH_ntw.json] [--sites N] [--repetitions N]
//             [--threads N] [--smoke]
//
// --smoke shrinks the workload (10 sites, 1 repetition) for CI and
// tools/check.sh; the JSON schema is identical.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/build_info.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "datasets/runner.h"
#include "enum_experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/proc.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_bench [--out BENCH_ntw.json] [--sites N]"
    " [--repetitions N]\n"
    "                 [--threads N] [--smoke]\n";

// v2: added the "machine" block (cpu_count, build_type, git_sha).
constexpr int64_t kSchemaVersion = 2;

/// Snapshot of the call-accounting counters, for per-workload deltas.
struct CounterSnapshot {
  int64_t logical_calls = 0;
  int64_t real_induce_calls = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  static CounterSnapshot Take() {
    obs::Registry& registry = obs::Registry::Global();
    CounterSnapshot snap;
    snap.logical_calls =
        registry.GetCounter("ntw.enumerate.inductor_calls")->value();
    snap.real_induce_calls = registry.GetCounter("ntw.induce.calls")->value();
    snap.cache_hits = registry.GetCounter("ntw.cache.hits")->value();
    snap.cache_misses = registry.GetCounter("ntw.cache.misses")->value();
    return snap;
  }

  CounterSnapshot Delta(const CounterSnapshot& before) const {
    CounterSnapshot d;
    d.logical_calls = logical_calls - before.logical_calls;
    d.real_induce_calls = real_induce_calls - before.real_induce_calls;
    d.cache_hits = cache_hits - before.cache_hits;
    d.cache_misses = cache_misses - before.cache_misses;
    return d;
  }
};

struct BenchResult {
  std::string name;
  std::vector<double> wall_seconds_reps;
  double wall_seconds = 0.0;  // Best (min) repetition.
  CounterSnapshot calls;      // Deltas from the last repetition.
  // Workload-specific payloads; negative means "not applicable".
  int64_t top_down_calls = -1;
  int64_t bottom_up_calls = -1;
  double ntw_f1 = -1.0;
  double naive_f1 = -1.0;
};

/// Runs `body` `repetitions` times, recording wall clock per repetition
/// and counter deltas for the last one.
template <typename Body>
BenchResult Measure(const std::string& name, int repetitions, Body body) {
  BenchResult result;
  result.name = name;
  for (int rep = 0; rep < repetitions; ++rep) {
    CounterSnapshot before = CounterSnapshot::Take();
    Stopwatch watch;
    body(&result);
    result.wall_seconds_reps.push_back(watch.ElapsedSeconds());
    result.calls = CounterSnapshot::Take().Delta(before);
  }
  result.wall_seconds = result.wall_seconds_reps[0];
  for (double s : result.wall_seconds_reps) {
    if (s < result.wall_seconds) result.wall_seconds = s;
  }
  return result;
}

std::string ResultsJson(const std::vector<BenchResult>& results,
                        size_t sites, size_t pages, int repetitions,
                        int threads, bool smoke) {
  obs::JsonWriter json;
  json.BeginObject();
  json.KV("schema", "ntw-bench");
  json.KV("schema_version", kSchemaVersion);
  json.Key("config");
  json.BeginObject();
  json.KV("sites", static_cast<int64_t>(sites));
  json.KV("pages_per_site", static_cast<int64_t>(pages));
  json.KV("repetitions", static_cast<int64_t>(repetitions));
  json.KV("threads", static_cast<int64_t>(threads));
  json.KV("smoke", smoke);
  json.EndObject();
  WriteMachineInfo(json);
  json.Key("benches");
  json.BeginArray();
  for (const BenchResult& r : results) {
    json.BeginObject();
    json.KV("name", r.name);
    json.KV("wall_seconds", r.wall_seconds);
    json.Key("wall_seconds_reps");
    json.BeginArray();
    for (double s : r.wall_seconds_reps) json.Double(s);
    json.EndArray();
    json.KV("logical_inductor_calls", r.calls.logical_calls);
    json.KV("real_induce_calls", r.calls.real_induce_calls);
    json.KV("cache_hits", r.calls.cache_hits);
    json.KV("cache_misses", r.calls.cache_misses);
    int64_t lookups = r.calls.cache_hits + r.calls.cache_misses;
    json.KV("cache_hit_rate",
            lookups > 0 ? static_cast<double>(r.calls.cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0);
    if (r.top_down_calls >= 0) json.KV("top_down_calls", r.top_down_calls);
    if (r.bottom_up_calls >= 0) json.KV("bottom_up_calls", r.bottom_up_calls);
    if (r.ntw_f1 >= 0.0) json.KV("ntw_f1", r.ntw_f1);
    if (r.naive_f1 >= 0.0) json.KV("naive_f1", r.naive_f1);
    json.EndObject();
  }
  json.EndArray();
  json.KV("peak_rss_bytes", obs::PeakRssBytes());
  json.EndObject();
  return json.Take();
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"out", "sites", "repetitions", "threads", "smoke", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }

  bool smoke = flags.Has("smoke");
  Result<int64_t> sites_or = flags.GetInt("sites", smoke ? 10 : 40);
  Result<int64_t> reps_or = flags.GetInt("repetitions", smoke ? 1 : 3);
  if (!sites_or.ok() || !reps_or.ok() || *sites_or < 1 || *reps_or < 1) {
    std::fprintf(stderr, "--sites and --repetitions must be >= 1\n%s",
                 kUsage);
    return 2;
  }
  size_t sites = static_cast<size_t>(*sites_or);
  int repetitions = static_cast<int>(*reps_or);
  Result<int> threads = ConfigureGlobalThreadPool(flags);
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n%s", threads.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  std::string out = flags.Get("out", "BENCH_ntw.json");

  // The pinned workload: a fixed-seed DEALERS subset (generation is not
  // timed).
  datasets::DealersConfig config;
  config.num_sites = sites;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  std::fprintf(stderr, "ntw_bench: %zu sites, %d repetition(s), %d threads\n",
               dealers.sites.size(), repetitions, *threads);

  core::LrInductor lr;
  core::XPathInductor xpath;
  std::vector<BenchResult> results;

  // Fig. 2(a): enumeration call counts, LR (TopDown vs BottomUp).
  results.push_back(
      Measure("fig2a_enum_calls_lr", repetitions, [&](BenchResult* r) {
        std::vector<bench::EnumRow> rows =
            bench::RunEnumExperiment(dealers, "name", lr, 0);
        r->top_down_calls = 0;
        r->bottom_up_calls = 0;
        for (const bench::EnumRow& row : rows) {
          r->top_down_calls += row.top_down_calls;
          r->bottom_up_calls += row.bottom_up_calls;
        }
      }));

  // Fig. 2(b,c): enumeration call counts and wall clock, XPATH.
  results.push_back(
      Measure("fig2bc_enum_xpath", repetitions, [&](BenchResult* r) {
        std::vector<bench::EnumRow> rows =
            bench::RunEnumExperiment(dealers, "name", xpath, 0);
        r->top_down_calls = 0;
        r->bottom_up_calls = 0;
        for (const bench::EnumRow& row : rows) {
          r->top_down_calls += row.top_down_calls;
          r->bottom_up_calls += row.bottom_up_calls;
        }
      }));

  // Fig. 2(d,e): end-to-end NTW vs NAIVE accuracy + wall clock.
  struct EndToEnd {
    const char* name;
    const core::WrapperInductor* inductor;
  };
  for (const EndToEnd& e2e :
       {EndToEnd{"fig2d_xpath_dealers", &xpath},
        EndToEnd{"fig2e_lr_dealers", &lr}}) {
    results.push_back(Measure(e2e.name, repetitions, [&](BenchResult* r) {
      datasets::RunConfig run_config;
      run_config.type = "name";
      Result<datasets::RunSummary> summary =
          datasets::RunSingleType(dealers, *e2e.inductor, run_config);
      if (summary.ok()) {
        r->ntw_f1 = summary->ntw_avg.f1;
        r->naive_f1 = summary->naive_avg.f1;
      }
    }));
  }

  for (const BenchResult& r : results) {
    std::fprintf(stderr,
                 "  %-22s %8.3fs  logical_calls=%-8lld real=%-8lld"
                 " hit_rate=%.2f%s\n",
                 r.name.c_str(), r.wall_seconds,
                 static_cast<long long>(r.calls.logical_calls),
                 static_cast<long long>(r.calls.real_induce_calls),
                 r.calls.cache_hits + r.calls.cache_misses > 0
                     ? static_cast<double>(r.calls.cache_hits) /
                           static_cast<double>(r.calls.cache_hits +
                                               r.calls.cache_misses)
                     : 0.0,
                 r.ntw_f1 >= 0
                     ? (" ntw_f1=" + std::to_string(r.ntw_f1)).c_str()
                     : "");
  }

  std::string json = ResultsJson(results, sites, config.pages_per_site,
                                 repetitions, *threads, smoke);
  Status written = WriteFile(out, json + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes, peak rss %.1f MiB)\n",
               out.c_str(), json.size() + 1,
               static_cast<double>(obs::PeakRssBytes()) / (1024.0 * 1024.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
