// ntw_serve — the wrapper-serving daemon: loads a repository of learned
// wrappers and applies them to freshly crawled pages over HTTP, the
// paper's deployment mode (learn once per site, extract at web scale).
//
// Usage:
//   ntw_serve --wrapper-dir DIR [--pack FILE] [--host 127.0.0.1]
//             [--port 8377]
//             [--port-file PATH] [--shards N] [--threads N]
//             [--max-body-bytes N] [--max-inflight N]
//             [--read-timeout-ms N] [--write-timeout-ms N]
//             [--drain-grace-ms N] [--reload-poll-ms N]
//             [--metrics-json PATH] [--trace PATH]
//             [--no-fast-path] [--no-streaming] [--no-fused] [--quiet]
//             [--no-self-heal] [--drift-warmup N] [--drift-window N]
//             [--drift-empty-streak N] [--drift-hysteresis N]
//             [--drift-cooldown N] [--drift-retain K]
//             [--reinduce-threads N] [--reinduce-queue N]
//
// --shards N runs N reactor shards (independent event loops, one per
// core by default — DESIGN.md §11); each shard handles its requests
// inline with a shard-private buffer pool. --threads then only sizes the
// pool /extract_batch fans out over.
//
// Self-healing (DESIGN.md §13) is on by default: every /extract feeds a
// per-(site, attribute) drift detector; a drifted pair is re-induced on
// retained request bodies by a background worker and the repaired
// wrapper is hot-published (and persisted) when it outscores the
// incumbent. --no-self-heal disables detection and the worker entirely;
// the --drift-*/--reinduce-* flags tune thresholds. GET /driftz dumps
// detector state.
//
// --pack FILE opens a memory-mapped wrapper pack (DESIGN.md §15) instead
// of eagerly parsing the directory: startup is O(mmap), cold sites page
// in on first hit. --wrapper-dir then becomes the overlay directory that
// self-heal publishes land in (and may be omitted for read-only serving).
// A pack that fails to open logs a warning and serving falls back to the
// directory backend.
//
// Endpoints (see DESIGN.md §8):
//   POST /extract?site=S&attribute=A        body = one HTML page
//     (attribute=* extracts every attribute of the site; with --pack the
//      site's fused automaton scans the page once — --no-fused disables)
//   POST /extract_batch?site=S&attribute=A  body = NDJSON {"id","html"}
//   GET  /metrics                           obs registry dump
//   GET  /healthz
//
// Signals: SIGTERM/SIGINT trigger graceful shutdown (stop accepting,
// drain in-flight requests, flush final metrics, exit 0); SIGHUP forces
// a wrapper repository reload. The repository is also hot-reloaded when
// file mtimes change (--reload-poll-ms cadence, 0 disables).

#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"

#include "common/file_util.h"
#include "common/flags.h"
#include "common/obs_export.h"
#include "common/thread_pool.h"
#include "serve/reinduce.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_serve --wrapper-dir DIR [--pack FILE] [--host H] [--port P]"
    " [--port-file PATH]\n"
    "                 [--shards N] [--threads N] [--max-body-bytes N]\n"
    "                 [--max-inflight N] [--read-timeout-ms N]\n"
    "                 [--write-timeout-ms N] [--drain-grace-ms N]\n"
    "                 [--reload-poll-ms N] [--metrics-json PATH]\n"
    "                 [--trace PATH] [--no-fast-path] [--no-streaming]\n"
    "                 [--no-fused] [--quiet] [--no-self-heal]"
    " [--drift-warmup N]\n"
    "                 [--drift-window N] [--drift-empty-streak N]\n"
    "                 [--drift-hysteresis N] [--drift-cooldown N]\n"
    "                 [--drift-retain K] [--reinduce-threads N]\n"
    "                 [--reinduce-queue N]\n";

serve::HttpServer* g_server = nullptr;

// Handlers only touch lock-free atomics via Request*() — signal-safe.
void OnShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}
void OnReloadSignal(int) {
  if (g_server != nullptr) g_server->RequestReload();
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"wrapper-dir", "pack", "host", "port", "port-file", "shards",
       "threads", "max-body-bytes", "max-inflight", "read-timeout-ms",
       "write-timeout-ms", "drain-grace-ms", "reload-poll-ms",
       "metrics-json", "trace", "no-fast-path", "no-streaming", "no-fused",
       "quiet",
       "no-self-heal", "drift-warmup", "drift-window", "drift-empty-streak",
       "drift-hysteresis", "drift-cooldown", "drift-retain",
       "reinduce-threads", "reinduce-queue", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  bool quiet = flags.Has("quiet");
  ObsExporter obs_export = ObsExporter::FromFlags(flags);

  std::string wrapper_dir = flags.Get("wrapper-dir");
  std::string pack_path = flags.Get("pack");
  if (wrapper_dir.empty() && pack_path.empty()) {
    std::fprintf(stderr, "--wrapper-dir or --pack is required\n%s", kUsage);
    return 2;
  }

  Result<int> threads = ConfigureGlobalThreadPool(flags);
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n%s", threads.status().ToString().c_str(),
                 kUsage);
    return 2;
  }

  serve::ServerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  Result<int64_t> port = flags.GetInt("port", 8377);
  Result<int64_t> max_body = flags.GetInt(
      "max-body-bytes", static_cast<int64_t>(options.limits.max_body_bytes));
  Result<int64_t> max_inflight =
      flags.GetInt("max-inflight", options.max_inflight);
  Result<int64_t> read_timeout =
      flags.GetInt("read-timeout-ms", options.read_timeout_ms);
  Result<int64_t> write_timeout =
      flags.GetInt("write-timeout-ms", options.write_timeout_ms);
  Result<int64_t> drain_grace =
      flags.GetInt("drain-grace-ms", options.drain_grace_ms);
  Result<int64_t> reload_poll = flags.GetInt("reload-poll-ms", 1000);
  unsigned hw = std::thread::hardware_concurrency();
  Result<int64_t> shards =
      flags.GetInt("shards", static_cast<int64_t>(hw > 0 ? hw : 1));
  for (const auto* value : {&port, &max_body, &max_inflight, &read_timeout,
                            &write_timeout, &drain_grace, &reload_poll,
                            &shards}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                   kUsage);
      return 2;
    }
  }
  options.port = static_cast<int>(*port);
  options.limits.max_body_bytes = static_cast<size_t>(*max_body);
  options.max_inflight = static_cast<int>(*max_inflight);
  options.read_timeout_ms = static_cast<int>(*read_timeout);
  options.write_timeout_ms = static_cast<int>(*write_timeout);
  options.drain_grace_ms = static_cast<int>(*drain_grace);
  options.tick_interval_ms = static_cast<int>(*reload_poll);
  options.shards = *shards < 1 ? 1 : static_cast<int>(*shards);
  // Sharded: the reactors are the parallelism — handle inline, no
  // cross-thread handoff. Single shard keeps the classic worker-pool
  // dispatch. Either way /extract_batch fans out over the global pool.
  options.pool = options.shards > 1 ? nullptr : &ThreadPool::Global();
  obs::Registry::Global().SetShardCount(options.shards);

  serve::DriftConfig drift;
  drift.enabled = !flags.Has("no-self-heal");
  serve::ReinduceOptions reinduce_options;
  {
    Result<int64_t> warmup = flags.GetInt("drift-warmup", drift.warmup_pages);
    Result<int64_t> window = flags.GetInt("drift-window",
                                          drift.evaluate_every);
    Result<int64_t> streak =
        flags.GetInt("drift-empty-streak", drift.empty_streak_limit);
    Result<int64_t> hysteresis =
        flags.GetInt("drift-hysteresis", drift.hysteresis);
    Result<int64_t> cooldown =
        flags.GetInt("drift-cooldown", drift.cooldown_pages);
    Result<int64_t> retain = flags.GetInt("drift-retain", drift.retain_pages);
    Result<int64_t> reinduce_threads =
        flags.GetInt("reinduce-threads", reinduce_options.threads);
    Result<int64_t> reinduce_queue = flags.GetInt(
        "reinduce-queue", static_cast<int64_t>(reinduce_options.max_queue));
    for (const auto* value :
         {&warmup, &window, &streak, &hysteresis, &cooldown, &retain,
          &reinduce_threads, &reinduce_queue}) {
      if (!value->ok()) {
        std::fprintf(stderr, "%s\n%s", value->status().ToString().c_str(),
                     kUsage);
        return 2;
      }
    }
    drift.warmup_pages = static_cast<int>(*warmup);
    drift.evaluate_every = static_cast<int>(*window);
    drift.empty_streak_limit = static_cast<int>(*streak);
    drift.hysteresis = static_cast<int>(*hysteresis);
    drift.cooldown_pages = static_cast<int>(*cooldown);
    drift.retain_pages = static_cast<int>(*retain);
    reinduce_options.threads = static_cast<int>(*reinduce_threads);
    reinduce_options.max_queue = static_cast<size_t>(*reinduce_queue);
  }

  serve::WrapperRepository repository(
      serve::WrapperRepository::Options{wrapper_dir, pack_path});
  repository.SetDriftConfig(drift);
  Status loaded = repository.Load();
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }
  std::shared_ptr<const serve::WrapperRepository::Snapshot> snapshot =
      repository.snapshot();
  for (const std::string& error : snapshot->errors) {
    std::fprintf(stderr, "ntw_serve: skipped wrapper: %s\n", error.c_str());
  }
  if (!quiet) {
    if (snapshot->pack != nullptr) {
      std::fprintf(stderr,
                   "ntw_serve: mapped pack %s (%zu sites, %llu entries) + "
                   "%zu overlay wrappers\n",
                   pack_path.c_str(), snapshot->pack->site_count(),
                   static_cast<unsigned long long>(
                       snapshot->pack->header().entry_count),
                   snapshot->wrappers.size());
    } else {
      std::fprintf(stderr, "ntw_serve: loaded %zu wrappers from %s\n",
                   snapshot->wrappers.size(), wrapper_dir.c_str());
    }
  }

  // --no-fast-path keeps the interpreted Wrapper::Extract path alive for
  // A/B benchmarking and as the byte-identity cross-check baseline;
  // --no-streaming pins dom_free plans and streamable XPath plans to the
  // arena fast path instead of the streaming no-DOM paths (DESIGN.md
  // §12).
  bool fast_path = !flags.Has("no-fast-path");
  bool streaming = !flags.Has("no-streaming");
  bool fused = !flags.Has("no-fused");
  // The re-induction worker: one shared queue behind every shard's
  // detector hand-offs. Constructed (and started) only when self-healing
  // is on, so --no-self-heal spawns no extra threads.
  std::unique_ptr<serve::ReinduceWorker> reinducer;
  if (drift.enabled) {
    reinducer = std::make_unique<serve::ReinduceWorker>(&repository,
                                                        reinduce_options);
    reinducer->Start();
  }
  // One ExtractService per shard: a shard-private FastBufferPool and
  // per-shard metric stripes; the repository is shared (epoch-pinned
  // reads). The factory runs once per shard inside Bind().
  std::vector<std::unique_ptr<serve::ExtractService>> services;
  serve::ReinduceWorker* reinducer_ptr = reinducer.get();
  serve::HttpServer server(
      options,
      serve::HttpServer::HandlerFactory(
          [&repository, &services, fast_path, streaming, fused,
           reinducer_ptr](int shard) {
            serve::ExtractService::Options service_options;
            service_options.fast_path = fast_path;
            service_options.streaming = streaming;
            service_options.fused = fused;
            service_options.shard = shard;
            service_options.self_heal = reinducer_ptr != nullptr;
            services.push_back(std::make_unique<serve::ExtractService>(
                &repository, &ThreadPool::Global(), service_options,
                reinducer_ptr));
            serve::ExtractService* service = services.back().get();
            return [service](const serve::HttpRequest& request) {
              return service->Handle(request);
            };
          }));
  server.SetReloadHook([&repository, quiet] {
    Status status = repository.Load();
    if (!status.ok()) {
      std::fprintf(stderr, "ntw_serve: reload failed: %s\n",
                   status.ToString().c_str());
    } else if (!quiet) {
      std::fprintf(stderr, "ntw_serve: repository reloaded (%zu wrappers)\n",
                   repository.snapshot()->wrappers.size());
    }
  });
  server.SetTickHook([&repository, &server] {
    if (repository.PollForChanges()) server.RequestReload();
  });

  Status bound = server.Bind();
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    return 1;
  }
  if (flags.Has("port-file")) {
    Status written = WriteFile(flags.Get("port-file"),
                               std::to_string(server.port()) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "ntw_serve: listening on %s:%d (%d shard%s%s, %d threads)\n",
                 options.host.c_str(), server.port(), options.shards,
                 options.shards == 1 ? "" : "s",
                 server.using_accept_relay() ? ", accept relay" : "",
                 *threads);
  }

  g_server = &server;
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGHUP, OnReloadSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Status ran = server.Run();
  g_server = nullptr;
  // Stop the worker before tearing anything else down: in-flight repairs
  // finish (and publish), queued ones are dropped into cooldown.
  if (reinducer != nullptr) reinducer->Stop();
  if (!ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.ToString().c_str());
    return 1;
  }
  if (!quiet) std::fprintf(stderr, "ntw_serve: drained, shutting down\n");

  Status flushed = obs_export.Write();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
