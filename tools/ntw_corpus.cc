// ntw_corpus — generate the synthetic evaluation corpora and export them
// as plain HTML + TSV sidecars (see datasets/corpus_io.h for the layout),
// so the datasets can be inspected, versioned, or consumed by other
// tools. The exported pages round-trip through the HTML parser with
// node-reference fidelity.
//
// Usage:
//   ntw_corpus --dataset dealers|disc|products --out DIR
//              [--sites N] [--pages N] [--seed S]

#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "datasets/corpus_io.h"
#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "datasets/products.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_corpus --dataset dealers|disc|products --out DIR"
    " [--sites N] [--pages N] [--seed S]\n";

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::string which = ToLower(flags.Get("dataset"));
  std::string out = flags.Get("out");
  if (which.empty() || out.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  Result<int64_t> sites = flags.GetInt("sites", 0);
  Result<int64_t> pages = flags.GetInt("pages", 0);
  Result<int64_t> seed = flags.GetInt("seed", 0);
  if (!sites.ok() || !pages.ok() || !seed.ok()) {
    std::fprintf(stderr, "bad numeric flag\n%s", kUsage);
    return 2;
  }

  datasets::Dataset dataset;
  if (which == "dealers") {
    datasets::DealersConfig config;
    if (*sites > 0) config.num_sites = static_cast<size_t>(*sites);
    if (*pages > 0) config.pages_per_site = static_cast<size_t>(*pages);
    if (*seed > 0) config.seed = static_cast<uint64_t>(*seed);
    dataset = datasets::MakeDealers(config);
  } else if (which == "disc") {
    datasets::DiscConfig config;
    if (*sites > 0) config.num_sites = static_cast<size_t>(*sites);
    if (*seed > 0) config.seed = static_cast<uint64_t>(*seed);
    dataset = datasets::MakeDisc(config);
  } else if (which == "products") {
    datasets::ProductsConfig config;
    if (*sites > 0) config.num_sites = static_cast<size_t>(*sites);
    if (*pages > 0) config.pages_per_site = static_cast<size_t>(*pages);
    if (*seed > 0) config.seed = static_cast<uint64_t>(*seed);
    dataset = datasets::MakeProducts(config);
  } else {
    std::fprintf(stderr, "unknown --dataset '%s'\n%s", which.c_str(),
                 kUsage);
    return 2;
  }

  Status status = datasets::ExportDataset(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  size_t total_pages = 0;
  for (const datasets::SiteData& site : dataset.sites) {
    total_pages += site.site.pages.size();
  }
  std::printf("exported %s: %zu sites, %zu pages -> %s\n",
              dataset.name.c_str(), dataset.sites.size(), total_pages,
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
