// ntw_origin — generate a multi-site local crawl origin and (optionally)
// serve it over HTTP.
//
// Usage:
//   ntw_origin --out DIR [--sites N] [--pages N] [--seed S]
//              [--wrapper-dir DIR] [--robots FILE]
//   ntw_origin --serve DIR [--host H] [--port P] [--port-file PATH]
//
// Generate mode writes `<out>/<site>/page_NNNN.html` for N script-
// generated dealer-locator sites, a root index.html linking every page
// in sorted order (the single seed of a depth-1 crawl), and optionally a
// robots.txt; with --wrapper-dir it also learns each site's wrappers
// (XPATH + LR) and writes a serving repository — everything ntw_crawl
// needs, produced deterministically from --seed with zero network.
//
// Serve mode exposes a directory over the dependency-free HttpServer
// through the static-file handler — the local HTTP origin of the crawl
// smoke and CI (429/5xx behavior is the crawler's own test harness's
// job; this origin is deliberately plain).

#include <csignal>
#include <cstdio>

#include "common/file_util.h"
#include "common/flags.h"
#include "serve/server.h"
#include "serve/static_files.h"
#include "sitegen/origin.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_origin --out DIR [--sites N] [--pages N] [--seed S]\n"
    "                  [--min-records N] [--max-records N]\n"
    "                  [--wrapper-dir DIR] [--robots FILE] [--no-index]\n"
    "       ntw_origin --out DIR --sites N --attrs M [--seed S]\n"
    "       ntw_origin --serve DIR [--host H] [--port P] [--port-file "
    "PATH]\n"
    "\n"
    "With --attrs the tool runs in repository scale mode: it emits a\n"
    "synthetic wrapper repository (site_NNNNNN/attr_NN.wrapper, cycling\n"
    "LR/HLRT/XPATH records; no page trees) — input for ntw_pack and\n"
    "bench_repo, where the axis is repository size, not page content.\n";

serve::HttpServer* g_server = nullptr;

void OnShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Serve(const Flags& flags) {
  serve::ServerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  Result<int64_t> port = flags.GetInt("port", 0);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
    return 2;
  }
  options.port = static_cast<int>(*port);
  options.tick_interval_ms = 0;  // Static tree: no reload poller.

  serve::StaticFileHandler handler(flags.Get("serve"), "index.html");
  serve::HttpServer server(options,
                           [&handler](const serve::HttpRequest& request) {
                             return handler.Handle(request);
                           });
  Status bound = server.Bind();
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.ToString().c_str());
    return 1;
  }
  if (flags.Has("port-file")) {
    Status written = WriteFile(flags.Get("port-file"),
                               std::to_string(server.port()) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "ntw_origin: serving %s on http://%s:%d/\n",
               flags.Get("serve").c_str(), options.host.c_str(),
               server.port());
  g_server = &server;
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);
  Status ran = server.Run();
  g_server = nullptr;
  if (!ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.ToString().c_str());
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"out", "sites", "attrs", "pages", "seed", "min-records", "max-records",
       "wrapper-dir", "robots", "no-index", "serve", "host", "port",
       "port-file", "help"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }

  if (flags.Has("serve")) return Serve(flags);

  std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "--out (or --serve) is required\n%s", kUsage);
    return 2;
  }
  if (flags.Has("attrs")) {
    sitegen::SyntheticRepositoryOptions synth;
    Result<int64_t> sites = flags.GetInt("sites", 1000);
    Result<int64_t> attrs = flags.GetInt("attrs", 2);
    Result<int64_t> seed = flags.GetInt("seed", 17);
    for (const auto* value : {&sites, &attrs, &seed}) {
      if (!value->ok()) {
        std::fprintf(stderr, "%s\n", value->status().ToString().c_str());
        return 2;
      }
    }
    if (*sites < 1 || *attrs < 1) {
      std::fprintf(stderr, "invalid repository shape\n%s", kUsage);
      return 2;
    }
    synth.sites = static_cast<size_t>(*sites);
    synth.attrs = static_cast<size_t>(*attrs);
    synth.seed = static_cast<uint64_t>(*seed);
    Status wrote = sitegen::WriteSyntheticWrapperRepository(synth, out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "ntw_origin: wrote synthetic repository (%zu sites x %zu "
                 "attrs) to %s\n",
                 synth.sites, synth.attrs, out.c_str());
    return 0;
  }

  sitegen::OriginOptions options;
  Result<int64_t> sites = flags.GetInt("sites", 8);
  Result<int64_t> pages = flags.GetInt("pages", 6);
  Result<int64_t> seed = flags.GetInt("seed", 17);
  Result<int64_t> min_records = flags.GetInt("min-records", 2);
  Result<int64_t> max_records = flags.GetInt("max-records", 8);
  for (const auto* value : {&sites, &pages, &seed, &min_records,
                            &max_records}) {
    if (!value->ok()) {
      std::fprintf(stderr, "%s\n", value->status().ToString().c_str());
      return 2;
    }
  }
  if (*sites < 1 || *pages < 1 || *min_records < 1 ||
      *max_records < *min_records) {
    std::fprintf(stderr, "invalid corpus shape\n%s", kUsage);
    return 2;
  }
  options.sites = static_cast<size_t>(*sites);
  options.pages_per_site = static_cast<size_t>(*pages);
  options.seed = static_cast<uint64_t>(*seed);
  options.min_records = static_cast<size_t>(*min_records);
  options.max_records = static_cast<size_t>(*max_records);
  options.write_root_index = !flags.Has("no-index");
  if (flags.Has("robots")) {
    Result<std::string> robots = ReadFile(flags.Get("robots"));
    if (!robots.ok()) {
      std::fprintf(stderr, "%s\n", robots.status().ToString().c_str());
      return 1;
    }
    options.robots_txt = std::move(robots.value());
  }

  sitegen::OriginCorpus corpus = sitegen::MakeOriginCorpus(options);
  Status wrote = sitegen::WriteOriginTree(corpus, out);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  size_t total_pages = 0;
  for (const sitegen::OriginSite& site : corpus.sites) {
    total_pages += site.page_html.size();
  }
  std::fprintf(stderr, "ntw_origin: wrote %zu sites / %zu pages to %s\n",
               corpus.sites.size(), total_pages, out.c_str());
  if (flags.Has("wrapper-dir")) {
    Status learned =
        sitegen::WriteOriginWrapperRepository(corpus, flags.Get("wrapper-dir"));
    if (!learned.ok()) {
      std::fprintf(stderr, "%s\n", learned.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "ntw_origin: wrote wrapper repository to %s\n",
                 flags.Get("wrapper-dir").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
