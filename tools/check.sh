#!/bin/sh
# Tier-1 verification: build + ctest once normally, then once under
# ThreadSanitizer (NTW_SANITIZE=thread) to vet the parallel enumeration
# engine. Usage: tools/check.sh [extra ctest args, e.g. -R enumerate_test]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> normal build + ctest"
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS" "$@")

echo "==> ThreadSanitizer build + ctest"
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DNTW_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS"
(cd "$ROOT/build-tsan" && ctest --output-on-failure -j "$JOBS" "$@")

echo "check.sh OK"
