#!/bin/sh
# Tier-1 verification: build + ctest once normally, then once under
# ThreadSanitizer (NTW_SANITIZE=thread) to vet the parallel enumeration
# engine, then a smoke run of the perf bench runner. Every stage must
# pass; each failure is reported and propagated explicitly (set -e alone
# is too easy to defeat — e.g. a future `ctest || true` or an `if`
# context would swallow the TSan suite's exit code).
# Usage: tools/check.sh [extra ctest args, e.g. -R enumerate_test]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
FAILED=0

echo "==> normal build + ctest"
cmake -B "$ROOT/build" -S "$ROOT" || exit 1
cmake --build "$ROOT/build" -j "$JOBS" || exit 1
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS" "$@") || {
  echo "check.sh: normal ctest suite FAILED" >&2
  FAILED=1
}

echo "==> ThreadSanitizer build + ctest"
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DNTW_SANITIZE=thread || exit 1
cmake --build "$ROOT/build-tsan" -j "$JOBS" || exit 1
(cd "$ROOT/build-tsan" && ctest --output-on-failure -j "$JOBS" "$@") || {
  echo "check.sh: ThreadSanitizer ctest suite FAILED" >&2
  FAILED=1
}

echo "==> ntw_bench smoke"
"$ROOT/build/tools/ntw_bench" --smoke --repetitions 1 \
    --out "$ROOT/build/BENCH_ntw.json" || {
  echo "check.sh: ntw_bench smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_serve smoke (2 shards)"
sh "$ROOT/tools/serve_smoke.sh" "$ROOT/build" 2 || {
  echo "check.sh: ntw_serve smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_serve smoke (no streaming)"
sh "$ROOT/tools/serve_smoke.sh" "$ROOT/build" 2 --no-streaming || {
  echo "check.sh: ntw_serve --no-streaming smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_serve smoke (scalar scan)"
NTW_NO_SIMD=1 sh "$ROOT/tools/serve_smoke.sh" "$ROOT/build" 2 || {
  echo "check.sh: ntw_serve NTW_NO_SIMD=1 smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_serve smoke (self-heal)"
sh "$ROOT/tools/serve_smoke.sh" "$ROOT/build" --self-heal || {
  echo "check.sh: ntw_serve self-heal smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_crawl smoke (file+http byte-identity)"
sh "$ROOT/tools/crawl_smoke.sh" "$ROOT/build" || {
  echo "check.sh: ntw_crawl smoke run FAILED" >&2
  FAILED=1
}

echo "==> scan bench smoke"
"$ROOT/build/bench/bench_tokenizer_scan" --smoke \
    --out "$ROOT/build/BENCH_scan.json" || {
  echo "check.sh: bench_tokenizer_scan smoke run FAILED" >&2
  FAILED=1
}

echo "==> wrapper pack build/verify roundtrip"
PACK_DIR="$ROOT/build/pack_roundtrip"
rm -rf "$PACK_DIR"
{ "$ROOT/build/tools/ntw_origin" --out "$PACK_DIR/repo" \
      --sites 200 --attrs 3 --seed 7 &&
  "$ROOT/build/tools/ntw_pack" build --root "$PACK_DIR/repo" \
      --out "$PACK_DIR/wrappers.pack" &&
  "$ROOT/build/tools/ntw_pack" verify "$PACK_DIR/wrappers.pack"; } || {
  echo "check.sh: wrapper pack roundtrip FAILED" >&2
  FAILED=1
}
rm -rf "$PACK_DIR"

echo "==> repo bench smoke (pack open vs eager load)"
"$ROOT/build/bench/bench_repo" --smoke \
    --out "$ROOT/build/BENCH_repo.json" || {
  echo "check.sh: bench_repo smoke run FAILED" >&2
  FAILED=1
}

echo "==> crawl bench smoke"
"$ROOT/build/bench/bench_crawl" --smoke \
    --out "$ROOT/build/BENCH_crawl.json" || {
  echo "check.sh: bench_crawl smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_loadgen smoke (equivalence gates + shard sweep)"
"$ROOT/build/tools/ntw_loadgen" --smoke --shards 2 --sweep 1,2 \
    --out "$ROOT/build/BENCH_serve.json" || {
  echo "check.sh: ntw_loadgen smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_loadgen smoke (no streaming)"
"$ROOT/build/tools/ntw_loadgen" --smoke --shards 2 --no-streaming \
    --out "$ROOT/build/BENCH_serve_nostreaming.json" || {
  echo "check.sh: ntw_loadgen --no-streaming smoke run FAILED" >&2
  FAILED=1
}

echo "==> ntw_loadgen smoke (scalar scan)"
NTW_NO_SIMD=1 "$ROOT/build/tools/ntw_loadgen" --smoke --shards 2 \
    --out "$ROOT/build/BENCH_serve_scalar.json" || {
  echo "check.sh: ntw_loadgen NTW_NO_SIMD=1 smoke run FAILED" >&2
  FAILED=1
}

if [ "$FAILED" -ne 0 ]; then
  echo "check.sh FAILED" >&2
  exit 1
fi
echo "check.sh OK"
