// ntw_eval — evaluate the noise-tolerant framework on an exported corpus
// (see ntw_corpus / datasets/corpus_io.h): learn the annotation and
// publication models on the even-numbered sites, then report NTW vs NAIVE
// precision/recall/F1 on the odd-numbered sites.
//
// Usage:
//   ntw_eval --corpus DIR --type NAME [--inductor xpath|lr|hlrt]
//            [--variant full|ntw-l|ntw-x] [--all-sites] [--per-site]
//            [--threads N] [--json]
//            [--metrics-json PATH] [--trace PATH]

#include <cstdio>

#include "common/flags.h"
#include "common/obs_export.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "datasets/corpus_io.h"
#include "datasets/runner.h"
#include "obs/json.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_eval --corpus DIR --type NAME [--inductor xpath|lr|hlrt]\n"
    "                [--variant full|ntw-l|ntw-x] [--all-sites]"
    " [--per-site]\n"
    "                [--threads N]   (0 or absent = all hardware threads)\n"
    "                [--json]        (machine-readable summary on stdout;\n"
    "                                 deterministic — no timing fields)\n"
    "                [--metrics-json PATH] [--trace PATH]\n";

void WritePrf(obs::JsonWriter& json, const char* key, const core::Prf& prf) {
  json.Key(key);
  json.BeginObject();
  json.KV("precision", prf.precision);
  json.KV("recall", prf.recall);
  json.KV("f1", prf.f1);
  json.EndObject();
}

/// Deterministic machine-readable summary: everything FormatSummary and
/// --per-site print except wall-clock times, which would make the output
/// unstable (the golden-file test snapshots this exact byte stream).
std::string SummaryJson(const std::string& dataset, const std::string& type,
                        const std::string& inductor, const char* variant,
                        const datasets::RunSummary& summary) {
  obs::JsonWriter json;
  BeginSchemaDocument(json, "ntw-eval", 1);
  json.KV("dataset", dataset);
  json.KV("type", type);
  json.KV("inductor", inductor);
  json.KV("variant", variant);
  WritePrf(json, "annotator", summary.annotator);
  json.KV("sites_evaluated", static_cast<int64_t>(summary.sites.size()));
  json.KV("sites_skipped", static_cast<int64_t>(summary.skipped_sites));
  WritePrf(json, "ntw", summary.ntw_avg);
  WritePrf(json, "naive", summary.naive_avg);
  json.Key("sites");
  json.BeginArray();
  for (const datasets::SiteOutcome& site : summary.sites) {
    json.BeginObject();
    json.KV("name", site.site_name);
    json.KV("labels", static_cast<int64_t>(site.labels));
    json.KV("space_size", static_cast<int64_t>(site.space_size));
    json.KV("inductor_calls", site.inductor_calls);
    json.KV("cache_hits", site.cache_hits);
    json.KV("cache_misses", site.cache_misses);
    WritePrf(json, "ntw", site.ntw);
    WritePrf(json, "naive", site.naive);
    json.KV("ntw_wrapper", site.ntw_wrapper);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::string corpus = flags.Get("corpus");
  std::string type = flags.Get("type");
  if (corpus.empty() || type.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  Result<int> threads = ConfigureGlobalThreadPool(flags);
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n%s", threads.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  ObsExporter obs_export = ObsExporter::FromFlags(flags);

  Result<datasets::Dataset> dataset = datasets::ImportDataset(corpus);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::string inductor_name = ToLower(flags.Get("inductor", "xpath"));
  std::unique_ptr<core::WrapperInductor> inductor;
  datasets::RunConfig config;
  config.type = type;
  if (inductor_name == "xpath") {
    inductor = std::make_unique<core::XPathInductor>();
  } else if (inductor_name == "lr") {
    inductor = std::make_unique<core::LrInductor>();
  } else if (inductor_name == "hlrt") {
    inductor = std::make_unique<core::HlrtInductor>();
    config.algorithm = core::EnumAlgorithm::kBottomUp;
  } else {
    std::fprintf(stderr, "unknown --inductor '%s'\n", inductor_name.c_str());
    return 2;
  }

  std::string variant = ToLower(flags.Get("variant", "full"));
  if (variant == "full") {
    config.variant = core::RankerVariant::kFull;
  } else if (variant == "ntw-l") {
    config.variant = core::RankerVariant::kAnnotationOnly;
  } else if (variant == "ntw-x") {
    config.variant = core::RankerVariant::kListOnly;
  } else {
    std::fprintf(stderr, "unknown --variant '%s'\n", variant.c_str());
    return 2;
  }
  config.test_half_only = !flags.Has("all-sites");

  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(*dataset, *inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  if (flags.Has("json")) {
    std::printf("%s\n",
                SummaryJson(dataset->name, type, inductor->Name(),
                            core::RankerVariantName(config.variant), *summary)
                    .c_str());
  } else {
    std::printf("%s", datasets::FormatSummary(
                          dataset->name + " / " + type + " / " +
                              inductor->Name() + " / " +
                              core::RankerVariantName(config.variant),
                          *summary)
                          .c_str());
    if (flags.Has("per-site")) {
      for (const datasets::SiteOutcome& site : summary->sites) {
        std::printf("  %-40.40s labels=%-4zu ntw_f1=%.3f naive_f1=%.3f"
                    " cache=%lld/%lld  %s\n",
                    site.site_name.c_str(), site.labels, site.ntw.f1,
                    site.naive.f1, static_cast<long long>(site.cache_hits),
                    static_cast<long long>(site.cache_hits +
                                           site.cache_misses),
                    site.ntw_wrapper.c_str());
      }
    }
  }
  Status written = obs_export.Write();
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
