// ntw_eval — evaluate the noise-tolerant framework on an exported corpus
// (see ntw_corpus / datasets/corpus_io.h): learn the annotation and
// publication models on the even-numbered sites, then report NTW vs NAIVE
// precision/recall/F1 on the odd-numbered sites.
//
// Usage:
//   ntw_eval --corpus DIR --type NAME [--inductor xpath|lr|hlrt]
//            [--variant full|ntw-l|ntw-x] [--all-sites] [--per-site]
//            [--threads N]

#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "datasets/corpus_io.h"
#include "datasets/runner.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_eval --corpus DIR --type NAME [--inductor xpath|lr|hlrt]\n"
    "                [--variant full|ntw-l|ntw-x] [--all-sites]"
    " [--per-site]\n"
    "                [--threads N]   (0 or absent = all hardware threads)\n";

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::string corpus = flags.Get("corpus");
  std::string type = flags.Get("type");
  if (corpus.empty() || type.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  Result<int> threads = ConfigureGlobalThreadPool(flags);
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n%s", threads.status().ToString().c_str(),
                 kUsage);
    return 2;
  }

  Result<datasets::Dataset> dataset = datasets::ImportDataset(corpus);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::string inductor_name = ToLower(flags.Get("inductor", "xpath"));
  std::unique_ptr<core::WrapperInductor> inductor;
  datasets::RunConfig config;
  config.type = type;
  if (inductor_name == "xpath") {
    inductor = std::make_unique<core::XPathInductor>();
  } else if (inductor_name == "lr") {
    inductor = std::make_unique<core::LrInductor>();
  } else if (inductor_name == "hlrt") {
    inductor = std::make_unique<core::HlrtInductor>();
    config.algorithm = core::EnumAlgorithm::kBottomUp;
  } else {
    std::fprintf(stderr, "unknown --inductor '%s'\n", inductor_name.c_str());
    return 2;
  }

  std::string variant = ToLower(flags.Get("variant", "full"));
  if (variant == "full") {
    config.variant = core::RankerVariant::kFull;
  } else if (variant == "ntw-l") {
    config.variant = core::RankerVariant::kAnnotationOnly;
  } else if (variant == "ntw-x") {
    config.variant = core::RankerVariant::kListOnly;
  } else {
    std::fprintf(stderr, "unknown --variant '%s'\n", variant.c_str());
    return 2;
  }
  config.test_half_only = !flags.Has("all-sites");

  Result<datasets::RunSummary> summary =
      datasets::RunSingleType(*dataset, *inductor, config);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", datasets::FormatSummary(
                        dataset->name + " / " + type + " / " +
                            inductor->Name() + " / " +
                            core::RankerVariantName(config.variant),
                        *summary)
                        .c_str());
  if (flags.Has("per-site")) {
    for (const datasets::SiteOutcome& site : summary->sites) {
      std::printf("  %-40.40s labels=%-4zu ntw_f1=%.3f naive_f1=%.3f"
                  " cache=%lld/%lld  %s\n",
                  site.site_name.c_str(), site.labels, site.ntw.f1,
                  site.naive.f1, static_cast<long long>(site.cache_hits),
                  static_cast<long long>(site.cache_hits + site.cache_misses),
                  site.ntw_wrapper.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
