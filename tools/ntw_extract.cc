// ntw_extract — learn a wrapper for one website from noisy automatic
// annotations and extract with it; the command-line face of the library.
//
// Usage:
//   ntw_extract --pages DIR [--dict FILE | --regex PATTERN]
//               [--inductor xpath|lr|hlrt] [--algorithm topdown|bottomup]
//               [--p 0.95] [--r 0.3] [--save-wrapper FILE]
//   ntw_extract --pages DIR --load-wrapper FILE
//   ntw_extract --pages DIR [--wrapper-dir DIR] [--pack FILE]
//               --site S --attribute A
//
// Modes:
//   learn   (default): annotate the pages with the dictionary (one entry
//           per line) or regex, enumerate + rank noise-tolerantly with a
//           generic publication prior, print the winning wrapper and its
//           extraction as TSV (page <TAB> text).
//   apply   (--load-wrapper): re-apply a previously saved wrapper.
//   apply   (--wrapper-dir): select the (site, attribute) wrapper out of
//           a serving repository — the exact same serve::WrapperRepository
//           code path ntw_serve uses, so CLI and daemon cannot diverge.
//           With --emit ndjson the output switches from TSV to one
//           ntw-crawl-record line per page (--url-prefix P names the
//           pages as P/<filename>) — byte-identical to what ntw_crawl
//           emits for the same pages, the offline half of the crawl
//           equivalence check.
//
// The (p, r) flags are the annotator model parameters of Eq. 4; in a real
// deployment they come from a labeled sample (see datasets::LearnModels).

#include <cstdio>

#include "annotate/dictionary_annotator.h"
#include "annotate/regex_annotator.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/obs_export.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "core/compiled_wrapper.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/ntw.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "crawl/record.h"
#include "datasets/corpus_io.h"
#include "html/arena_dom.h"
#include "serve/wrapper_repository.h"

namespace {

using namespace ntw;

constexpr char kUsage[] =
    "usage: ntw_extract --pages DIR (--dict FILE | --regex PATTERN |"
    " --load-wrapper FILE |\n"
    "                   [--wrapper-dir DIR] [--pack FILE] --site S"
    " --attribute A)\n"
    "                   [--inductor xpath|lr|hlrt]"
    " [--algorithm topdown|bottomup]\n"
    "                   [--p P] [--r R] [--schema-prior N]"
    " [--save-wrapper FILE] [--quiet]\n"
    "                   [--metrics-json PATH] [--trace PATH]"
    " [--no-fast-path] [--no-streaming]\n"
    "                   [--emit tsv|ndjson] [--url-prefix P]\n";

void PrintExtraction(const core::PageSet& pages,
                     const core::NodeSet& extraction) {
  obs::Span span("extract.print");
  for (const core::NodeRef& ref : extraction) {
    const html::Node* node = pages.Resolve(ref);
    if (node == nullptr) continue;
    std::printf("%d\t%s\n", ref.page, node->text().c_str());
  }
}

int Run(int argc, char** argv) {
  Result<Flags> flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Flags& flags = *flags_or;
  std::vector<std::string> unknown = flags.UnknownFlags(
      {"pages", "dict", "regex", "load-wrapper", "wrapper-dir", "pack",
       "site", "attribute", "inductor", "algorithm", "p", "r", "schema-prior",
       "save-wrapper", "quiet", "help", "metrics-json", "trace",
       "no-fast-path", "no-streaming", "emit", "url-prefix"});
  if (!unknown.empty() || flags.Has("help")) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return flags.Has("help") ? 0 : 2;
  }
  bool quiet = flags.Has("quiet");
  ObsExporter obs_export = ObsExporter::FromFlags(flags);

  std::string pages_dir = flags.Get("pages");
  if (pages_dir.empty()) {
    std::fprintf(stderr, "--pages is required\n%s", kUsage);
    return 2;
  }
  Result<core::PageSet> pages_or =
      datasets::LoadPagesFromDirectory(pages_dir);
  if (!pages_or.ok()) {
    std::fprintf(stderr, "%s\n", pages_or.status().ToString().c_str());
    return 1;
  }
  core::PageSet pages = std::move(pages_or).value();
  if (!quiet) {
    std::fprintf(stderr, "loaded %zu pages (%zu text nodes)\n",
                 pages.size(), pages.TextNodeCount());
  }

  // ----- apply mode (serving repository) -----------------------------
  if (flags.Has("wrapper-dir") || flags.Has("pack")) {
    std::string site = flags.Get("site");
    std::string attribute = flags.Get("attribute");
    if (site.empty() || attribute.empty()) {
      std::fprintf(stderr,
                   "--wrapper-dir/--pack requires --site and --attribute\n%s",
                   kUsage);
      return 2;
    }
    std::string emit = ToLower(flags.Get("emit", "tsv"));
    if (emit != "tsv" && emit != "ndjson") {
      std::fprintf(stderr, "unknown --emit '%s'\n%s", emit.c_str(), kUsage);
      return 2;
    }
    bool ndjson = emit == "ndjson";
    // Page URLs of the NDJSON records: <url-prefix>/<filename>, with the
    // filenames in the exact sorted order LoadPagesFromDirectory reads
    // pages — the order a crawl of the same directory dispatches them.
    std::string url_prefix = flags.Get("url-prefix");
    while (!url_prefix.empty() && url_prefix.back() == '/') {
      url_prefix.pop_back();
    }
    std::vector<std::string> page_urls;
    if (ndjson) {
      Result<std::vector<std::string>> files =
          ListFiles(pages_dir, ".html");
      if (!files.ok()) {
        std::fprintf(stderr, "%s\n", files.status().ToString().c_str());
        return 1;
      }
      for (const std::string& file : *files) {
        size_t slash = file.find_last_of('/');
        std::string name =
            slash == std::string::npos ? file : file.substr(slash + 1);
        page_urls.push_back(url_prefix.empty() ? name
                                               : url_prefix + "/" + name);
      }
    }
    // Same repository code path as the daemon — --pack maps the wrapper
    // pack, --wrapper-dir (alone or as overlay) parses record files.
    serve::WrapperRepository repository(serve::WrapperRepository::Options{
        flags.Get("wrapper-dir"), flags.Get("pack")});
    Status loaded = repository.Load();
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return 1;
    }
    std::shared_ptr<const serve::WrapperRepository::Snapshot> snapshot =
        repository.snapshot();
    for (const std::string& error : snapshot->errors) {
      std::fprintf(stderr, "skipped wrapper: %s\n", error.c_str());
    }
    const serve::WrapperRepository::Entry* entry =
        snapshot->Find(site, attribute);
    if (entry == nullptr) {
      std::fprintf(stderr, "no wrapper for site '%s' attribute '%s'\n",
                   site.c_str(), attribute.c_str());
      return 1;
    }
    if (!quiet) {
      std::fprintf(stderr, "wrapper: %s\n",
                   entry->wrapper->ToString().c_str());
    }
    // Compiled fast path, same output bytes as the interpreted path
    // below; dom_free plans stream straight over the raw page bytes and
    // streamable XPath plans run fused off the tokenizer (no DOM either
    // way) unless --no-streaming, others arena-parse.
    // --no-fast-path forces the interpreter.
    if (!flags.Has("no-fast-path") && entry->compiled != nullptr) {
      Result<std::vector<std::string>> sources =
          datasets::LoadPageSourcesFromDirectory(pages_dir);
      if (!sources.ok()) {
        std::fprintf(stderr, "%s\n", sources.status().ToString().c_str());
        return 1;
      }
      bool streaming =
          !flags.Has("no-streaming") &&
          (entry->compiled->dom_free() || entry->compiled->streamable());
      core::FastPageBuffer buffer;
      core::StreamPageBuffer stream_buffer;
      std::string value;
      obs::Span span("extract.apply");
      for (size_t i = 0; i < sources->size(); ++i) {
        const std::vector<std::string_view>* values;
        if (streaming) {
          stream_buffer.Clear();
          entry->compiled->ExtractStreaming((*sources)[i], stream_buffer,
                                            &stream_buffer.values);
          values = &stream_buffer.values;
        } else {
          buffer.Clear();
          html::ArenaParse((*sources)[i], &buffer.doc);
          entry->compiled->Extract(buffer, &buffer.values);
          values = &buffer.values;
        }
        if (ndjson) {
          std::string line;
          crawl::AppendRecordLine(site, page_urls[i], attribute, *values,
                                  crawl::RecordTiming{}, &line);
          std::fwrite(line.data(), 1, line.size(), stdout);
        } else {
          for (std::string_view v : *values) {
            value.assign(v);
            std::printf("%d\t%s\n", static_cast<int>(i), value.c_str());
          }
        }
      }
    } else {
      core::NodeSet extraction;
      {
        obs::Span span("extract.apply");
        extraction = entry->wrapper->Extract(pages);
      }
      if (ndjson) {
        // One record line per page, values grouped by page in document
        // order — the interpreted mirror of the compiled loop above.
        std::vector<std::vector<std::string>> by_page(pages.size());
        for (const core::NodeRef& ref : extraction) {
          const html::Node* node = pages.Resolve(ref);
          if (node == nullptr) continue;
          by_page[static_cast<size_t>(ref.page)].push_back(node->text());
        }
        for (size_t i = 0; i < by_page.size(); ++i) {
          std::vector<std::string_view> views(by_page[i].begin(),
                                              by_page[i].end());
          std::string line;
          crawl::AppendRecordLine(site, page_urls[i], attribute, views,
                                  crawl::RecordTiming{}, &line);
          std::fwrite(line.data(), 1, line.size(), stdout);
        }
      } else {
        PrintExtraction(pages, extraction);
      }
    }
    Status written = obs_export.Write();
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    return 0;
  }

  // ----- apply mode (single wrapper file) ----------------------------
  if (flags.Has("load-wrapper")) {
    Result<core::WrapperPtr> wrapper =
        core::LoadWrapper(flags.Get("load-wrapper"));
    if (!wrapper.ok()) {
      std::fprintf(stderr, "%s\n", wrapper.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::fprintf(stderr, "wrapper: %s\n",
                   (*wrapper)->ToString().c_str());
    }
    core::NodeSet extraction;
    {
      obs::Span span("extract.apply");
      extraction = (*wrapper)->Extract(pages);
    }
    PrintExtraction(pages, extraction);
    Status written = obs_export.Write();
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    return 0;
  }

  // ----- learn mode ---------------------------------------------------
  core::NodeSet labels;
  if (flags.Has("dict")) {
    Result<std::string> dict_file = ReadFile(flags.Get("dict"));
    if (!dict_file.ok()) {
      std::fprintf(stderr, "%s\n", dict_file.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> entries;
    for (const std::string& line : Split(*dict_file, '\n')) {
      std::string entry(StripWhitespace(line));
      if (!entry.empty()) entries.push_back(std::move(entry));
    }
    annotate::DictionaryAnnotator annotator(std::move(entries));
    labels = annotator.Annotate(pages);
  } else if (flags.Has("regex")) {
    Result<annotate::RegexAnnotator> annotator =
        annotate::RegexAnnotator::Create("cli", flags.Get("regex"));
    if (!annotator.ok()) {
      std::fprintf(stderr, "%s\n", annotator.status().ToString().c_str());
      return 1;
    }
    labels = annotator->Annotate(pages);
  } else {
    std::fprintf(stderr,
                 "one of --dict / --regex / --load-wrapper is required\n%s",
                 kUsage);
    return 2;
  }
  if (!quiet) {
    std::fprintf(stderr, "annotator produced %zu labels\n", labels.size());
  }
  if (labels.empty()) {
    std::fprintf(stderr, "no labels — nothing to learn from\n");
    return 1;
  }

  std::string inductor_name = ToLower(flags.Get("inductor", "xpath"));
  std::unique_ptr<core::WrapperInductor> inductor;
  if (inductor_name == "xpath") {
    inductor = std::make_unique<core::XPathInductor>();
  } else if (inductor_name == "lr") {
    inductor = std::make_unique<core::LrInductor>();
  } else if (inductor_name == "hlrt") {
    inductor = std::make_unique<core::HlrtInductor>();
  } else {
    std::fprintf(stderr, "unknown --inductor '%s'\n", inductor_name.c_str());
    return 2;
  }

  core::NtwOptions options;
  std::string algorithm = ToLower(flags.Get("algorithm", "auto"));
  if (algorithm == "topdown") {
    options.algorithm = core::EnumAlgorithm::kTopDown;
  } else if (algorithm == "bottomup" ||
             (algorithm == "auto" && inductor_name == "hlrt")) {
    options.algorithm = core::EnumAlgorithm::kBottomUp;
  } else if (algorithm == "auto") {
    options.algorithm = core::EnumAlgorithm::kTopDown;
  } else {
    std::fprintf(stderr, "unknown --algorithm '%s'\n", algorithm.c_str());
    return 2;
  }

  Result<double> p = flags.GetDouble("p", 0.95);
  Result<double> r = flags.GetDouble("r", 0.3);
  Result<int64_t> schema_prior = flags.GetInt("schema-prior", 3);
  if (!p.ok() || !r.ok() || !schema_prior.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!p.ok() ? p.status() : !r.ok() ? r.status()
                                                 : schema_prior.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  core::AnnotationModel annotation(*p, *r);
  // Generic publication prior centred on --schema-prior text fields per
  // record with tight alignment; a stand-in for a domain-learned model.
  std::vector<core::ListFeatures> prior;
  for (double delta : {-1.0, 0.0, 0.0, 1.0}) {
    core::ListFeatures f;
    f.schema_size = static_cast<double>(*schema_prior) + delta;
    f.alignment = 2.0;
    prior.push_back(f);
  }
  Result<core::PublicationModel> publication =
      core::PublicationModel::Fit(prior);
  if (!publication.ok()) {
    std::fprintf(stderr, "%s\n", publication.status().ToString().c_str());
    return 1;
  }
  core::Ranker ranker(annotation, std::move(publication).value());

  Result<core::NtwOutcome> outcome =
      core::LearnNoiseTolerant(*inductor, pages, labels, ranker, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "wrapper space: %zu candidates (%lld inductor calls)\n",
                 outcome->space_size,
                 static_cast<long long>(outcome->inductor_calls));
    std::fprintf(stderr, "winner: %s\n",
                 outcome->best.wrapper->ToString().c_str());
  }

  if (flags.Has("save-wrapper")) {
    Status save = core::SaveWrapper(*outcome->best.wrapper,
                                    flags.Get("save-wrapper"));
    if (!save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
  }
  PrintExtraction(pages, outcome->best.extraction);
  Status written = obs_export.Write();
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
