#!/bin/sh
# Smoke test of the crawl workload as a black box: generate a multi-site
# origin with ntw_origin, crawl it over file:// AND over a live local
# HTTP origin, and assert both NDJSON outputs are byte-identical to the
# offline `ntw_extract --emit ndjson` baseline over the same pages —
# fetch transport, worker scheduling, and the frontier must not change a
# single output byte. check.sh and CI run this after the unit suite; it
# is the only place the installed ntw_origin/ntw_crawl binaries, the
# static-file origin, and the port-file handshake meet end to end.
# Usage: tools/crawl_smoke.sh <build-dir> [workers]
set -u

BUILD="${1:?usage: tools/crawl_smoke.sh <build-dir> [workers]}"
WORKERS="${2:-4}"
ORIGIN_BIN="$BUILD/tools/ntw_origin"
CRAWL_BIN="$BUILD/tools/ntw_crawl"
EXTRACT_BIN="$BUILD/tools/ntw_extract"
for BIN in "$ORIGIN_BIN" "$CRAWL_BIN" "$EXTRACT_BIN"; do
  [ -x "$BIN" ] || { echo "crawl_smoke: $BIN not built" >&2; exit 1; }
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ntw_crawl_smoke.XXXXXX")"
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "crawl_smoke: $1" >&2; exit 1; }

# An 8-site origin (the acceptance floor) with learned wrappers: every
# site gets an XPATH wrapper (arena fast path) and an LR delimiter
# wrapper (streaming no-DOM path), so one crawl exercises all tiers.
"$ORIGIN_BIN" --out "$WORK/origin" --wrapper-dir "$WORK/repo" \
    --sites 8 --pages 5 2> "$WORK/origin.log" \
    || fail "ntw_origin failed: $(cat "$WORK/origin.log")"

# The offline baseline: per-site, per-attribute NDJSON from ntw_extract,
# interleaved into crawl emission order (pages in sorted order; within a
# page, wrappers in repository order: name before name_lr).
: > "$WORK/offline.ndjson"
for SITE_DIR in "$WORK/origin"/site_*; do
  SITE="$(basename "$SITE_DIR")"
  for ATTR in name name_lr; do
    "$EXTRACT_BIN" --pages "$SITE_DIR" --wrapper-dir "$WORK/repo" \
        --site "$SITE" --attribute "$ATTR" --emit ndjson \
        --url-prefix "file://$WORK/origin/$SITE" \
        > "$WORK/offline.$SITE.$ATTR" 2>/dev/null \
        || fail "ntw_extract failed for $SITE/$ATTR"
  done
  # paste -d'\n' interleaves line i of both files: name, name_lr, name...
  paste -d '\n' "$WORK/offline.$SITE.name" "$WORK/offline.$SITE.name_lr" \
      >> "$WORK/offline.ndjson"
done
[ -s "$WORK/offline.ndjson" ] || fail "offline baseline is empty"

# Crawl over file:// from the root index (depth 1 discovers every page).
"$CRAWL_BIN" --wrapper-dir "$WORK/repo" \
    --seeds "file://$WORK/origin/index.html" --max-depth 1 \
    --workers "$WORKERS" --out "$WORK/crawl_file.ndjson" --quiet \
    2> "$WORK/crawl_file.log" \
    || fail "file:// crawl failed: $(cat "$WORK/crawl_file.log")"
cmp -s "$WORK/crawl_file.ndjson" "$WORK/offline.ndjson" \
    || fail "file:// crawl output differs from offline baseline"

# Single worker must produce the same bytes as $WORKERS workers.
"$CRAWL_BIN" --wrapper-dir "$WORK/repo" \
    --seeds "file://$WORK/origin/index.html" --max-depth 1 \
    --workers 1 --out "$WORK/crawl_serial.ndjson" --quiet \
    2> "$WORK/crawl_serial.log" \
    || fail "serial crawl failed: $(cat "$WORK/crawl_serial.log")"
cmp -s "$WORK/crawl_serial.ndjson" "$WORK/offline.ndjson" \
    || fail "serial crawl output differs from offline baseline"

# Serve the same tree over HTTP and crawl it: same records, same order,
# only the url member's prefix differs.
"$ORIGIN_BIN" --serve "$WORK/origin" --port 0 \
    --port-file "$WORK/port" 2> "$WORK/serve.log" &
PID=$!
i=0
while [ ! -s "$WORK/port" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "origin server never wrote the port file: $(cat "$WORK/serve.log")"
  kill -0 "$PID" 2>/dev/null \
      || fail "origin server died at startup: $(cat "$WORK/serve.log")"
  sleep 0.1
done
PORT="$(cat "$WORK/port")"

# --rps is generous: politeness is the limiter test's concern; the smoke
# asserts byte-identity, not pacing.
"$CRAWL_BIN" --wrapper-dir "$WORK/repo" \
    --seeds "http://127.0.0.1:$PORT/index.html" --max-depth 1 \
    --workers "$WORKERS" --rps 10000 --burst 64 \
    --out "$WORK/crawl_http.ndjson" --quiet 2> "$WORK/crawl_http.log" \
    || fail "http crawl failed: $(cat "$WORK/crawl_http.log")"
kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
PID=""

sed "s|http://127.0.0.1:$PORT|file://$WORK/origin|g" \
    "$WORK/crawl_http.ndjson" > "$WORK/crawl_http_norm.ndjson"
cmp -s "$WORK/crawl_http_norm.ndjson" "$WORK/offline.ndjson" \
    || fail "http crawl output differs from offline baseline"

RECORDS="$(wc -l < "$WORK/offline.ndjson")"
echo "crawl_smoke OK ($RECORDS records, file+http byte-identical, $WORKERS workers)"
