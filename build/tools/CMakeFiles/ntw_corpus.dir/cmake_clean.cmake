file(REMOVE_RECURSE
  "CMakeFiles/ntw_corpus.dir/ntw_corpus.cc.o"
  "CMakeFiles/ntw_corpus.dir/ntw_corpus.cc.o.d"
  "ntw_corpus"
  "ntw_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
