# Empty compiler generated dependencies file for ntw_corpus.
# This may be replaced when dependencies are built.
