file(REMOVE_RECURSE
  "CMakeFiles/ntw_extract.dir/ntw_extract.cc.o"
  "CMakeFiles/ntw_extract.dir/ntw_extract.cc.o.d"
  "ntw_extract"
  "ntw_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
