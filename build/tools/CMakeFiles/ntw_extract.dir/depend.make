# Empty dependencies file for ntw_extract.
# This may be replaced when dependencies are built.
