# Empty dependencies file for ntw_eval.
# This may be replaced when dependencies are built.
