# Empty compiler generated dependencies file for ntw_eval.
# This may be replaced when dependencies are built.
