file(REMOVE_RECURSE
  "CMakeFiles/ntw_eval.dir/ntw_eval.cc.o"
  "CMakeFiles/ntw_eval.dir/ntw_eval.cc.o.d"
  "ntw_eval"
  "ntw_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
