# Empty dependencies file for ntw_regex.
# This may be replaced when dependencies are built.
