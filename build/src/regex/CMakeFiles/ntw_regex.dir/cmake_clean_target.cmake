file(REMOVE_RECURSE
  "libntw_regex.a"
)
