file(REMOVE_RECURSE
  "CMakeFiles/ntw_regex.dir/regex.cc.o"
  "CMakeFiles/ntw_regex.dir/regex.cc.o.d"
  "libntw_regex.a"
  "libntw_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
