# Empty compiler generated dependencies file for ntw_html.
# This may be replaced when dependencies are built.
