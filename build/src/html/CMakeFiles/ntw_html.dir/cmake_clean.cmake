file(REMOVE_RECURSE
  "CMakeFiles/ntw_html.dir/dom.cc.o"
  "CMakeFiles/ntw_html.dir/dom.cc.o.d"
  "CMakeFiles/ntw_html.dir/entities.cc.o"
  "CMakeFiles/ntw_html.dir/entities.cc.o.d"
  "CMakeFiles/ntw_html.dir/parser.cc.o"
  "CMakeFiles/ntw_html.dir/parser.cc.o.d"
  "CMakeFiles/ntw_html.dir/serializer.cc.o"
  "CMakeFiles/ntw_html.dir/serializer.cc.o.d"
  "CMakeFiles/ntw_html.dir/tokenizer.cc.o"
  "CMakeFiles/ntw_html.dir/tokenizer.cc.o.d"
  "libntw_html.a"
  "libntw_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
