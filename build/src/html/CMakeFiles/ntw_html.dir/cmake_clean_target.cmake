file(REMOVE_RECURSE
  "libntw_html.a"
)
