file(REMOVE_RECURSE
  "libntw_sitegen.a"
)
