file(REMOVE_RECURSE
  "CMakeFiles/ntw_sitegen.dir/chrome.cc.o"
  "CMakeFiles/ntw_sitegen.dir/chrome.cc.o.d"
  "CMakeFiles/ntw_sitegen.dir/list_template.cc.o"
  "CMakeFiles/ntw_sitegen.dir/list_template.cc.o.d"
  "CMakeFiles/ntw_sitegen.dir/page_builder.cc.o"
  "CMakeFiles/ntw_sitegen.dir/page_builder.cc.o.d"
  "CMakeFiles/ntw_sitegen.dir/site.cc.o"
  "CMakeFiles/ntw_sitegen.dir/site.cc.o.d"
  "CMakeFiles/ntw_sitegen.dir/vocab.cc.o"
  "CMakeFiles/ntw_sitegen.dir/vocab.cc.o.d"
  "libntw_sitegen.a"
  "libntw_sitegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_sitegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
