
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sitegen/chrome.cc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/chrome.cc.o" "gcc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/chrome.cc.o.d"
  "/root/repo/src/sitegen/list_template.cc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/list_template.cc.o" "gcc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/list_template.cc.o.d"
  "/root/repo/src/sitegen/page_builder.cc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/page_builder.cc.o" "gcc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/page_builder.cc.o.d"
  "/root/repo/src/sitegen/site.cc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/site.cc.o" "gcc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/site.cc.o.d"
  "/root/repo/src/sitegen/vocab.cc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/vocab.cc.o" "gcc" "src/sitegen/CMakeFiles/ntw_sitegen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/ntw_html.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/ntw_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ntw_text.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/ntw_align.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ntw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
