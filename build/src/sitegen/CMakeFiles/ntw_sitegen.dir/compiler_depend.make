# Empty compiler generated dependencies file for ntw_sitegen.
# This may be replaced when dependencies are built.
