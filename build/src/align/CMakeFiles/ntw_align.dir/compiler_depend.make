# Empty compiler generated dependencies file for ntw_align.
# This may be replaced when dependencies are built.
