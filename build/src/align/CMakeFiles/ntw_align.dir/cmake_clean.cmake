file(REMOVE_RECURSE
  "CMakeFiles/ntw_align.dir/edit_distance.cc.o"
  "CMakeFiles/ntw_align.dir/edit_distance.cc.o.d"
  "libntw_align.a"
  "libntw_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
