file(REMOVE_RECURSE
  "libntw_align.a"
)
