
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annotation_model.cc" "src/core/CMakeFiles/ntw_core.dir/annotation_model.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/annotation_model.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "src/core/CMakeFiles/ntw_core.dir/enumerate.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/enumerate.cc.o.d"
  "/root/repo/src/core/hlrt_inductor.cc" "src/core/CMakeFiles/ntw_core.dir/hlrt_inductor.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/hlrt_inductor.cc.o.d"
  "/root/repo/src/core/label.cc" "src/core/CMakeFiles/ntw_core.dir/label.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/label.cc.o.d"
  "/root/repo/src/core/lr_inductor.cc" "src/core/CMakeFiles/ntw_core.dir/lr_inductor.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/lr_inductor.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/ntw_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/multi_type.cc" "src/core/CMakeFiles/ntw_core.dir/multi_type.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/multi_type.cc.o.d"
  "/root/repo/src/core/ntw.cc" "src/core/CMakeFiles/ntw_core.dir/ntw.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/ntw.cc.o.d"
  "/root/repo/src/core/publication_model.cc" "src/core/CMakeFiles/ntw_core.dir/publication_model.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/publication_model.cc.o.d"
  "/root/repo/src/core/ranker.cc" "src/core/CMakeFiles/ntw_core.dir/ranker.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/ranker.cc.o.d"
  "/root/repo/src/core/single_entity.cc" "src/core/CMakeFiles/ntw_core.dir/single_entity.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/single_entity.cc.o.d"
  "/root/repo/src/core/table_inductor.cc" "src/core/CMakeFiles/ntw_core.dir/table_inductor.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/table_inductor.cc.o.d"
  "/root/repo/src/core/wrapper.cc" "src/core/CMakeFiles/ntw_core.dir/wrapper.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/wrapper.cc.o.d"
  "/root/repo/src/core/wrapper_store.cc" "src/core/CMakeFiles/ntw_core.dir/wrapper_store.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/wrapper_store.cc.o.d"
  "/root/repo/src/core/xpath_inductor.cc" "src/core/CMakeFiles/ntw_core.dir/xpath_inductor.cc.o" "gcc" "src/core/CMakeFiles/ntw_core.dir/xpath_inductor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/ntw_html.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/ntw_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ntw_text.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/ntw_align.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ntw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
