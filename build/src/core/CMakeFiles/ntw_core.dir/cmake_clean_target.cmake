file(REMOVE_RECURSE
  "libntw_core.a"
)
