file(REMOVE_RECURSE
  "CMakeFiles/ntw_core.dir/annotation_model.cc.o"
  "CMakeFiles/ntw_core.dir/annotation_model.cc.o.d"
  "CMakeFiles/ntw_core.dir/enumerate.cc.o"
  "CMakeFiles/ntw_core.dir/enumerate.cc.o.d"
  "CMakeFiles/ntw_core.dir/hlrt_inductor.cc.o"
  "CMakeFiles/ntw_core.dir/hlrt_inductor.cc.o.d"
  "CMakeFiles/ntw_core.dir/label.cc.o"
  "CMakeFiles/ntw_core.dir/label.cc.o.d"
  "CMakeFiles/ntw_core.dir/lr_inductor.cc.o"
  "CMakeFiles/ntw_core.dir/lr_inductor.cc.o.d"
  "CMakeFiles/ntw_core.dir/metrics.cc.o"
  "CMakeFiles/ntw_core.dir/metrics.cc.o.d"
  "CMakeFiles/ntw_core.dir/multi_type.cc.o"
  "CMakeFiles/ntw_core.dir/multi_type.cc.o.d"
  "CMakeFiles/ntw_core.dir/ntw.cc.o"
  "CMakeFiles/ntw_core.dir/ntw.cc.o.d"
  "CMakeFiles/ntw_core.dir/publication_model.cc.o"
  "CMakeFiles/ntw_core.dir/publication_model.cc.o.d"
  "CMakeFiles/ntw_core.dir/ranker.cc.o"
  "CMakeFiles/ntw_core.dir/ranker.cc.o.d"
  "CMakeFiles/ntw_core.dir/single_entity.cc.o"
  "CMakeFiles/ntw_core.dir/single_entity.cc.o.d"
  "CMakeFiles/ntw_core.dir/table_inductor.cc.o"
  "CMakeFiles/ntw_core.dir/table_inductor.cc.o.d"
  "CMakeFiles/ntw_core.dir/wrapper.cc.o"
  "CMakeFiles/ntw_core.dir/wrapper.cc.o.d"
  "CMakeFiles/ntw_core.dir/wrapper_store.cc.o"
  "CMakeFiles/ntw_core.dir/wrapper_store.cc.o.d"
  "CMakeFiles/ntw_core.dir/xpath_inductor.cc.o"
  "CMakeFiles/ntw_core.dir/xpath_inductor.cc.o.d"
  "libntw_core.a"
  "libntw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
