# Empty dependencies file for ntw_core.
# This may be replaced when dependencies are built.
