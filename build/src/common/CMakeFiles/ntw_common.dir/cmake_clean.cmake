file(REMOVE_RECURSE
  "CMakeFiles/ntw_common.dir/file_util.cc.o"
  "CMakeFiles/ntw_common.dir/file_util.cc.o.d"
  "CMakeFiles/ntw_common.dir/flags.cc.o"
  "CMakeFiles/ntw_common.dir/flags.cc.o.d"
  "CMakeFiles/ntw_common.dir/rng.cc.o"
  "CMakeFiles/ntw_common.dir/rng.cc.o.d"
  "CMakeFiles/ntw_common.dir/status.cc.o"
  "CMakeFiles/ntw_common.dir/status.cc.o.d"
  "CMakeFiles/ntw_common.dir/strings.cc.o"
  "CMakeFiles/ntw_common.dir/strings.cc.o.d"
  "libntw_common.a"
  "libntw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
