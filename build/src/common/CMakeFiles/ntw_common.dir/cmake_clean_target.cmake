file(REMOVE_RECURSE
  "libntw_common.a"
)
