# Empty compiler generated dependencies file for ntw_common.
# This may be replaced when dependencies are built.
