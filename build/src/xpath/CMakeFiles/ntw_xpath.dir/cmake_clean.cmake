file(REMOVE_RECURSE
  "CMakeFiles/ntw_xpath.dir/ast.cc.o"
  "CMakeFiles/ntw_xpath.dir/ast.cc.o.d"
  "CMakeFiles/ntw_xpath.dir/evaluator.cc.o"
  "CMakeFiles/ntw_xpath.dir/evaluator.cc.o.d"
  "CMakeFiles/ntw_xpath.dir/parser.cc.o"
  "CMakeFiles/ntw_xpath.dir/parser.cc.o.d"
  "libntw_xpath.a"
  "libntw_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
