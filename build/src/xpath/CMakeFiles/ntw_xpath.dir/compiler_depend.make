# Empty compiler generated dependencies file for ntw_xpath.
# This may be replaced when dependencies are built.
