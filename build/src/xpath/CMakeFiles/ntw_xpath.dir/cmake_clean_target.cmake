file(REMOVE_RECURSE
  "libntw_xpath.a"
)
