file(REMOVE_RECURSE
  "CMakeFiles/ntw_annotate.dir/dictionary_annotator.cc.o"
  "CMakeFiles/ntw_annotate.dir/dictionary_annotator.cc.o.d"
  "CMakeFiles/ntw_annotate.dir/regex_annotator.cc.o"
  "CMakeFiles/ntw_annotate.dir/regex_annotator.cc.o.d"
  "CMakeFiles/ntw_annotate.dir/synthetic_annotator.cc.o"
  "CMakeFiles/ntw_annotate.dir/synthetic_annotator.cc.o.d"
  "libntw_annotate.a"
  "libntw_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
