# Empty compiler generated dependencies file for ntw_annotate.
# This may be replaced when dependencies are built.
