file(REMOVE_RECURSE
  "libntw_annotate.a"
)
