# Empty dependencies file for ntw_datasets.
# This may be replaced when dependencies are built.
