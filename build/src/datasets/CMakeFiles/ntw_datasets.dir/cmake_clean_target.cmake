file(REMOVE_RECURSE
  "libntw_datasets.a"
)
