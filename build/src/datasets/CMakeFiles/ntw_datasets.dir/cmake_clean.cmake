file(REMOVE_RECURSE
  "CMakeFiles/ntw_datasets.dir/corpus_io.cc.o"
  "CMakeFiles/ntw_datasets.dir/corpus_io.cc.o.d"
  "CMakeFiles/ntw_datasets.dir/dataset.cc.o"
  "CMakeFiles/ntw_datasets.dir/dataset.cc.o.d"
  "CMakeFiles/ntw_datasets.dir/dealers.cc.o"
  "CMakeFiles/ntw_datasets.dir/dealers.cc.o.d"
  "CMakeFiles/ntw_datasets.dir/disc.cc.o"
  "CMakeFiles/ntw_datasets.dir/disc.cc.o.d"
  "CMakeFiles/ntw_datasets.dir/products.cc.o"
  "CMakeFiles/ntw_datasets.dir/products.cc.o.d"
  "CMakeFiles/ntw_datasets.dir/runner.cc.o"
  "CMakeFiles/ntw_datasets.dir/runner.cc.o.d"
  "libntw_datasets.a"
  "libntw_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
