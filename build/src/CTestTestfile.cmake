# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("regex")
subdirs("html")
subdirs("xpath")
subdirs("align")
subdirs("stats")
subdirs("text")
subdirs("core")
subdirs("annotate")
subdirs("sitegen")
subdirs("datasets")
