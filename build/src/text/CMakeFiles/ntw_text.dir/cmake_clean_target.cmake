file(REMOVE_RECURSE
  "libntw_text.a"
)
