# Empty compiler generated dependencies file for ntw_text.
# This may be replaced when dependencies are built.
