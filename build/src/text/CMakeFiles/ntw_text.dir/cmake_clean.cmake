file(REMOVE_RECURSE
  "CMakeFiles/ntw_text.dir/char_view.cc.o"
  "CMakeFiles/ntw_text.dir/char_view.cc.o.d"
  "libntw_text.a"
  "libntw_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
