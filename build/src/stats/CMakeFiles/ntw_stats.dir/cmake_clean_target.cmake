file(REMOVE_RECURSE
  "libntw_stats.a"
)
