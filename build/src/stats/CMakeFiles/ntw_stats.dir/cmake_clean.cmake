file(REMOVE_RECURSE
  "CMakeFiles/ntw_stats.dir/kde.cc.o"
  "CMakeFiles/ntw_stats.dir/kde.cc.o.d"
  "libntw_stats.a"
  "libntw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
