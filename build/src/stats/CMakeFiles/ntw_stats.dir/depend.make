# Empty dependencies file for ntw_stats.
# This may be replaced when dependencies are built.
