file(REMOVE_RECURSE
  "CMakeFiles/annotation_model_test.dir/annotation_model_test.cc.o"
  "CMakeFiles/annotation_model_test.dir/annotation_model_test.cc.o.d"
  "annotation_model_test"
  "annotation_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
