# Empty dependencies file for annotation_model_test.
# This may be replaced when dependencies are built.
