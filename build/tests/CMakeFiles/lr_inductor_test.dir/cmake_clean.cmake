file(REMOVE_RECURSE
  "CMakeFiles/lr_inductor_test.dir/lr_inductor_test.cc.o"
  "CMakeFiles/lr_inductor_test.dir/lr_inductor_test.cc.o.d"
  "lr_inductor_test"
  "lr_inductor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_inductor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
