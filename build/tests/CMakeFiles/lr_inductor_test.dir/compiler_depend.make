# Empty compiler generated dependencies file for lr_inductor_test.
# This may be replaced when dependencies are built.
