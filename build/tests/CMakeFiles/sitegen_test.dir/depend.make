# Empty dependencies file for sitegen_test.
# This may be replaced when dependencies are built.
