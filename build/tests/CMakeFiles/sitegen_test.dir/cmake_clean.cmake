file(REMOVE_RECURSE
  "CMakeFiles/sitegen_test.dir/sitegen_test.cc.o"
  "CMakeFiles/sitegen_test.dir/sitegen_test.cc.o.d"
  "sitegen_test"
  "sitegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
