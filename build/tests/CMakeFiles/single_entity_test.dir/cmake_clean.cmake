file(REMOVE_RECURSE
  "CMakeFiles/single_entity_test.dir/single_entity_test.cc.o"
  "CMakeFiles/single_entity_test.dir/single_entity_test.cc.o.d"
  "single_entity_test"
  "single_entity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_entity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
