# Empty dependencies file for single_entity_test.
# This may be replaced when dependencies are built.
