file(REMOVE_RECURSE
  "CMakeFiles/ntw_test.dir/ntw_test.cc.o"
  "CMakeFiles/ntw_test.dir/ntw_test.cc.o.d"
  "ntw_test"
  "ntw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
