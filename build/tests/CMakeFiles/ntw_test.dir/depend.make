# Empty dependencies file for ntw_test.
# This may be replaced when dependencies are built.
