file(REMOVE_RECURSE
  "CMakeFiles/hlrt_inductor_test.dir/hlrt_inductor_test.cc.o"
  "CMakeFiles/hlrt_inductor_test.dir/hlrt_inductor_test.cc.o.d"
  "hlrt_inductor_test"
  "hlrt_inductor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlrt_inductor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
