# Empty dependencies file for hlrt_inductor_test.
# This may be replaced when dependencies are built.
