file(REMOVE_RECURSE
  "CMakeFiles/xpath_inductor_test.dir/xpath_inductor_test.cc.o"
  "CMakeFiles/xpath_inductor_test.dir/xpath_inductor_test.cc.o.d"
  "xpath_inductor_test"
  "xpath_inductor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_inductor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
