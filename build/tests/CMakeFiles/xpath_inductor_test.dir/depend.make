# Empty dependencies file for xpath_inductor_test.
# This may be replaced when dependencies are built.
