# Empty compiler generated dependencies file for wellbehaved_test.
# This may be replaced when dependencies are built.
