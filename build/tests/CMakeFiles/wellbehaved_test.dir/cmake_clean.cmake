file(REMOVE_RECURSE
  "CMakeFiles/wellbehaved_test.dir/wellbehaved_test.cc.o"
  "CMakeFiles/wellbehaved_test.dir/wellbehaved_test.cc.o.d"
  "wellbehaved_test"
  "wellbehaved_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wellbehaved_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
