# Empty dependencies file for ranker_test.
# This may be replaced when dependencies are built.
