file(REMOVE_RECURSE
  "CMakeFiles/table_inductor_test.dir/table_inductor_test.cc.o"
  "CMakeFiles/table_inductor_test.dir/table_inductor_test.cc.o.d"
  "table_inductor_test"
  "table_inductor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_inductor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
