# Empty dependencies file for table_inductor_test.
# This may be replaced when dependencies are built.
