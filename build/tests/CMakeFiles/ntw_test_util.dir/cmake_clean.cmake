file(REMOVE_RECURSE
  "CMakeFiles/ntw_test_util.dir/test_util.cc.o"
  "CMakeFiles/ntw_test_util.dir/test_util.cc.o.d"
  "libntw_test_util.a"
  "libntw_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
