file(REMOVE_RECURSE
  "libntw_test_util.a"
)
