# Empty compiler generated dependencies file for ntw_test_util.
# This may be replaced when dependencies are built.
