file(REMOVE_RECURSE
  "CMakeFiles/multi_type_test.dir/multi_type_test.cc.o"
  "CMakeFiles/multi_type_test.dir/multi_type_test.cc.o.d"
  "multi_type_test"
  "multi_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
