# Empty compiler generated dependencies file for multi_type_test.
# This may be replaced when dependencies are built.
