file(REMOVE_RECURSE
  "CMakeFiles/publication_model_test.dir/publication_model_test.cc.o"
  "CMakeFiles/publication_model_test.dir/publication_model_test.cc.o.d"
  "publication_model_test"
  "publication_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
