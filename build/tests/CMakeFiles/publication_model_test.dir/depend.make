# Empty dependencies file for publication_model_test.
# This may be replaced when dependencies are built.
