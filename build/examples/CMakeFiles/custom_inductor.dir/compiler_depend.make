# Empty compiler generated dependencies file for custom_inductor.
# This may be replaced when dependencies are built.
