file(REMOVE_RECURSE
  "CMakeFiles/custom_inductor.dir/custom_inductor.cpp.o"
  "CMakeFiles/custom_inductor.dir/custom_inductor.cpp.o.d"
  "custom_inductor"
  "custom_inductor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_inductor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
