file(REMOVE_RECURSE
  "CMakeFiles/dealers_pipeline.dir/dealers_pipeline.cpp.o"
  "CMakeFiles/dealers_pipeline.dir/dealers_pipeline.cpp.o.d"
  "dealers_pipeline"
  "dealers_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dealers_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
