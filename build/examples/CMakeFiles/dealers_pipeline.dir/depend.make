# Empty dependencies file for dealers_pipeline.
# This may be replaced when dependencies are built.
