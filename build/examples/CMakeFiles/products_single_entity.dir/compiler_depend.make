# Empty compiler generated dependencies file for products_single_entity.
# This may be replaced when dependencies are built.
