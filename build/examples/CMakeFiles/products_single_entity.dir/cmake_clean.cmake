file(REMOVE_RECURSE
  "CMakeFiles/products_single_entity.dir/products_single_entity.cpp.o"
  "CMakeFiles/products_single_entity.dir/products_single_entity.cpp.o.d"
  "products_single_entity"
  "products_single_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/products_single_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
