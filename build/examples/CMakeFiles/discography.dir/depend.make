# Empty dependencies file for discography.
# This may be replaced when dependencies are built.
