file(REMOVE_RECURSE
  "CMakeFiles/discography.dir/discography.cpp.o"
  "CMakeFiles/discography.dir/discography.cpp.o.d"
  "discography"
  "discography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
