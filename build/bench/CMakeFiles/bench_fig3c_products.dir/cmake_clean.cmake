file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3c_products.dir/bench_fig3c_products.cc.o"
  "CMakeFiles/bench_fig3c_products.dir/bench_fig3c_products.cc.o.d"
  "bench_fig3c_products"
  "bench_fig3c_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3c_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
