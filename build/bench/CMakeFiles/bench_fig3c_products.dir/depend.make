# Empty dependencies file for bench_fig3c_products.
# This may be replaced when dependencies are built.
