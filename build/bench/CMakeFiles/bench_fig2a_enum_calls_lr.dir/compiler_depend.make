# Empty compiler generated dependencies file for bench_fig2a_enum_calls_lr.
# This may be replaced when dependencies are built.
