file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hlrt_dealers.dir/bench_ext_hlrt_dealers.cc.o"
  "CMakeFiles/bench_ext_hlrt_dealers.dir/bench_ext_hlrt_dealers.cc.o.d"
  "bench_ext_hlrt_dealers"
  "bench_ext_hlrt_dealers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hlrt_dealers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
