# Empty compiler generated dependencies file for bench_ext_hlrt_dealers.
# This may be replaced when dependencies are built.
