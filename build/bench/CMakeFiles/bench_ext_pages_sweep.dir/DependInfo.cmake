
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_pages_sweep.cc" "bench/CMakeFiles/bench_ext_pages_sweep.dir/bench_ext_pages_sweep.cc.o" "gcc" "bench/CMakeFiles/bench_ext_pages_sweep.dir/bench_ext_pages_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ntw_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/ntw_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/sitegen/CMakeFiles/ntw_sitegen.dir/DependInfo.cmake"
  "/root/repo/build/src/annotate/CMakeFiles/ntw_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/ntw_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/ntw_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ntw_text.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/ntw_html.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/ntw_align.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ntw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
