# Empty dependencies file for bench_ext_pages_sweep.
# This may be replaced when dependencies are built.
