# Empty dependencies file for ntw_bench_util.
# This may be replaced when dependencies are built.
