file(REMOVE_RECURSE
  "CMakeFiles/ntw_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ntw_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/ntw_bench_util.dir/enum_experiment.cc.o"
  "CMakeFiles/ntw_bench_util.dir/enum_experiment.cc.o.d"
  "CMakeFiles/ntw_bench_util.dir/multitype_experiment.cc.o"
  "CMakeFiles/ntw_bench_util.dir/multitype_experiment.cc.o.d"
  "libntw_bench_util.a"
  "libntw_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntw_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
