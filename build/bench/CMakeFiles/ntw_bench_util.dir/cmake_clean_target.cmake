file(REMOVE_RECURSE
  "libntw_bench_util.a"
)
