# Empty dependencies file for bench_fig2d_xpath_dealers.
# This may be replaced when dependencies are built.
