# Empty dependencies file for bench_fig2f_xpath_disc.
# This may be replaced when dependencies are built.
