file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2i_ablation_lr.dir/bench_fig2i_ablation_lr.cc.o"
  "CMakeFiles/bench_fig2i_ablation_lr.dir/bench_fig2i_ablation_lr.cc.o.d"
  "bench_fig2i_ablation_lr"
  "bench_fig2i_ablation_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2i_ablation_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
