# Empty compiler generated dependencies file for bench_fig2i_ablation_lr.
# This may be replaced when dependencies are built.
