# Empty compiler generated dependencies file for bench_fig2h_ablation_xpath.
# This may be replaced when dependencies are built.
