# Empty compiler generated dependencies file for bench_fig2e_lr_dealers.
# This may be replaced when dependencies are built.
