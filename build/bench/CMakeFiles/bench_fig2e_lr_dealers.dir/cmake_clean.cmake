file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2e_lr_dealers.dir/bench_fig2e_lr_dealers.cc.o"
  "CMakeFiles/bench_fig2e_lr_dealers.dir/bench_fig2e_lr_dealers.cc.o.d"
  "bench_fig2e_lr_dealers"
  "bench_fig2e_lr_dealers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2e_lr_dealers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
