# Empty dependencies file for bench_fig2b_enum_calls_xpath.
# This may be replaced when dependencies are built.
