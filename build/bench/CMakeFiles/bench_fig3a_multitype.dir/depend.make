# Empty dependencies file for bench_fig3a_multitype.
# This may be replaced when dependencies are built.
