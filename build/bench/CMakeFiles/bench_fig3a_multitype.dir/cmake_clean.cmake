file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_multitype.dir/bench_fig3a_multitype.cc.o"
  "CMakeFiles/bench_fig3a_multitype.dir/bench_fig3a_multitype.cc.o.d"
  "bench_fig3a_multitype"
  "bench_fig3a_multitype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_multitype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
