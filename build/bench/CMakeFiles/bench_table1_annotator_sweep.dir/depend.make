# Empty dependencies file for bench_table1_annotator_sweep.
# This may be replaced when dependencies are built.
