file(REMOVE_RECURSE
  "CMakeFiles/bench_appb2_single_entity.dir/bench_appb2_single_entity.cc.o"
  "CMakeFiles/bench_appb2_single_entity.dir/bench_appb2_single_entity.cc.o.d"
  "bench_appb2_single_entity"
  "bench_appb2_single_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appb2_single_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
