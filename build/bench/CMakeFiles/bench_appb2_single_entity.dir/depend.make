# Empty dependencies file for bench_appb2_single_entity.
# This may be replaced when dependencies are built.
