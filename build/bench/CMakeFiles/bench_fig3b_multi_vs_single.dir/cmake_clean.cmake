file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_multi_vs_single.dir/bench_fig3b_multi_vs_single.cc.o"
  "CMakeFiles/bench_fig3b_multi_vs_single.dir/bench_fig3b_multi_vs_single.cc.o.d"
  "bench_fig3b_multi_vs_single"
  "bench_fig3b_multi_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_multi_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
