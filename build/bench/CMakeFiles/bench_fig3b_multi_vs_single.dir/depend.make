# Empty dependencies file for bench_fig3b_multi_vs_single.
# This may be replaced when dependencies are built.
