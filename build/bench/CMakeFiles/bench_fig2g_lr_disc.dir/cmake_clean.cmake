file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2g_lr_disc.dir/bench_fig2g_lr_disc.cc.o"
  "CMakeFiles/bench_fig2g_lr_disc.dir/bench_fig2g_lr_disc.cc.o.d"
  "bench_fig2g_lr_disc"
  "bench_fig2g_lr_disc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2g_lr_disc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
