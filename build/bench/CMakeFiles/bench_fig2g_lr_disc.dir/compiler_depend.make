# Empty compiler generated dependencies file for bench_fig2g_lr_disc.
# This may be replaced when dependencies are built.
