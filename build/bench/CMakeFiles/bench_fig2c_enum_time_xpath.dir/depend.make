# Empty dependencies file for bench_fig2c_enum_time_xpath.
# This may be replaced when dependencies are built.
