file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_enum_time_xpath.dir/bench_fig2c_enum_time_xpath.cc.o"
  "CMakeFiles/bench_fig2c_enum_time_xpath.dir/bench_fig2c_enum_time_xpath.cc.o.d"
  "bench_fig2c_enum_time_xpath"
  "bench_fig2c_enum_time_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_enum_time_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
