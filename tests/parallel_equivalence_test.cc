// Parallel/serial equivalence: the enumeration engine must produce
// byte-identical results at every thread count — same candidate sequence,
// same logical call accounting, same memoization totals, same ranking
// winner. Anything less would let --threads change extraction output.

#include <string>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "core/enumerate.h"
#include "core/lr_inductor.h"
#include "core/ntw.h"
#include "core/publication_model.h"
#include "core/ranker.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;

/// Everything observable about one enumeration + ranking run. Candidate
/// order matters: byte-identical means the sequence, not just the set.
struct RunSnapshot {
  std::vector<std::tuple<uint64_t, uint64_t, std::string>> candidates;
  int64_t inductor_calls = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  size_t best_index = 0;
  uint64_t best_extraction_fp = 0;

  bool operator==(const RunSnapshot& other) const = default;
};

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  ParallelEquivalenceTest() : pages_(FigureOnePages()) {
    for (const char* name :
         {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER",
          "KIDDIE WORLD CENTER", "LULLABY LANE"}) {
      for (const NodeRef& ref : FindText(pages_, name)) truth_.Insert(ref);
    }
    // Noisy labels: clean names plus an address (the ranker_test setup).
    labels_ = NodeSet(FindText(pages_, "WOODLAND FURNITURE"));
    for (const NodeRef& ref : FindText(pages_, "KIDDIE WORLD CENTER")) {
      labels_.Insert(ref);
    }
    for (const NodeRef& ref : FindText(pages_, "532 SAN MATEO AVE.")) {
      labels_.Insert(ref);
    }
  }

  ~ParallelEquivalenceTest() override {
    ThreadPool::SetGlobalThreads(0);  // Restore the default width.
  }

  Ranker MakeRanker() {
    ListFeatures truth_features =
        ComputeListFeatures(SegmentRecords(pages_, truth_));
    Result<PublicationModel> prior =
        PublicationModel::Fit({truth_features, truth_features});
    EXPECT_TRUE(prior.ok());
    return Ranker(AnnotationModel(0.95, 0.4), std::move(prior).value());
  }

  RunSnapshot Snapshot(EnumAlgorithm algo, const WrapperInductor& inductor,
                       const Ranker& ranker) {
    Result<WrapperSpace> space = Enumerate(algo, inductor, pages_, labels_);
    EXPECT_TRUE(space.ok()) << EnumAlgorithmName(algo);
    RunSnapshot snap;
    for (const Candidate& c : space->candidates) {
      snap.candidates.emplace_back(c.extraction.Fingerprint(),
                                   c.trained_on.Fingerprint(),
                                   c.wrapper->ToString());
    }
    snap.inductor_calls = space->inductor_calls;
    snap.cache_hits = space->cache_hits;
    snap.cache_misses = space->cache_misses;
    Result<size_t> best = ranker.Best(*space, pages_, labels_);
    EXPECT_TRUE(best.ok()) << EnumAlgorithmName(algo);
    if (best.ok()) {
      snap.best_index = *best;
      snap.best_extraction_fp =
          space->candidates[*best].extraction.Fingerprint();
    }
    return snap;
  }

  void ExpectEquivalenceAcrossThreadCounts(const WrapperInductor& inductor) {
    Ranker ranker = MakeRanker();
    for (EnumAlgorithm algo : {EnumAlgorithm::kNaive, EnumAlgorithm::kBottomUp,
                               EnumAlgorithm::kTopDown}) {
      ThreadPool::SetGlobalThreads(1);
      RunSnapshot serial = Snapshot(algo, inductor, ranker);
      EXPECT_FALSE(serial.candidates.empty()) << EnumAlgorithmName(algo);
      for (int threads : {2, 8}) {
        ThreadPool::SetGlobalThreads(threads);
        RunSnapshot parallel = Snapshot(algo, inductor, ranker);
        EXPECT_EQ(parallel, serial)
            << EnumAlgorithmName(algo) << " with " << threads << " threads vs"
            << " serial: candidate sequence, call accounting and winner must"
            << " be byte-identical";
      }
    }
  }

  PageSet pages_;
  NodeSet truth_;
  NodeSet labels_;
};

TEST_F(ParallelEquivalenceTest, XPathAllAlgorithmsAllThreadCounts) {
  XPathInductor inductor;
  ExpectEquivalenceAcrossThreadCounts(inductor);
}

TEST_F(ParallelEquivalenceTest, LrAllAlgorithmsAllThreadCounts) {
  LrInductor inductor;
  ExpectEquivalenceAcrossThreadCounts(inductor);
}

// The generated dealer corpora exercise the engine with larger label sets
// and realistic page structure; equivalence must also hold through the
// parallel per-site path (LearnNoiseTolerant under the dataset runner
// shares this code).
TEST(ParallelEquivalenceDealersTest, BottomUpAndTopDownOnGeneratedSites) {
  datasets::DealersConfig config;
  config.num_sites = 4;
  config.pages_per_site = 4;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  XPathInductor inductor;

  for (const datasets::SiteData& data : dealers.sites) {
    const NodeSet& labels = data.annotations.at("name");
    if (labels.empty()) continue;
    for (EnumAlgorithm algo :
         {EnumAlgorithm::kBottomUp, EnumAlgorithm::kTopDown}) {
      ThreadPool::SetGlobalThreads(1);
      Result<WrapperSpace> serial =
          Enumerate(algo, inductor, data.site.pages, labels);
      ASSERT_TRUE(serial.ok());
      for (int threads : {2, 8}) {
        ThreadPool::SetGlobalThreads(threads);
        Result<WrapperSpace> parallel =
            Enumerate(algo, inductor, data.site.pages, labels);
        ASSERT_TRUE(parallel.ok());
        ASSERT_EQ(parallel->size(), serial->size())
            << data.site.name << " " << EnumAlgorithmName(algo);
        for (size_t i = 0; i < serial->size(); ++i) {
          EXPECT_EQ(parallel->candidates[i].extraction.Fingerprint(),
                    serial->candidates[i].extraction.Fingerprint())
              << data.site.name << " " << EnumAlgorithmName(algo)
              << " candidate " << i << " at " << threads << " threads";
        }
        EXPECT_EQ(parallel->inductor_calls, serial->inductor_calls);
        EXPECT_EQ(parallel->cache_hits, serial->cache_hits);
        EXPECT_EQ(parallel->cache_misses, serial->cache_misses);
      }
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace ntw::core
