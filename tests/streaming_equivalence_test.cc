// Pins the streaming (no-DOM) extraction path's byte-identity contract:
//
//  1. StreamPage produces exactly the same flattened stream + text spans
//     as ArenaDocument (which itself mirrors text::CharView) for every
//     input — including the entity and whitespace constructs the patched
//     (copy-on-write) tier fixes in place and the tag-soup and raw-text
//     constructs that force the fused flatten.
//  2. CompiledWrapper::ExtractStreaming returns byte-identical values to
//     the DOM fast path AND the interpreted Wrapper::Extract pipeline,
//     for LR and HLRT plans — the entity-decoding edge cases (delimiters
//     straddling or containing references, numeric references at span
//     boundaries) are exercised explicitly, then a randomized seeded
//     sweep (sites × LR/HLRT × both paths) pins the general case.
//  3. The verbatim (zero-copy) tier engages exactly when it should: its
//     accept is a claim that raw bytes == normalized stream, so every
//     accepted page is also cross-checked against the arena flatten.
//  4. The patched (copy-on-write) tier's tag-soup rewrites — tag/attr
//     case folding, attribute re-quoting, implied end tags and stray/
//     mis-nested/EOF closes resolved against the open stack — engage on
//     a randomized tag-soup corpus with no fused-tokenize fallback, and
//     every patched page is byte-identical to the heap-parser reference.
//  5. CompiledWrapper::ExtractStreaming for streamable() XPath plans (the
//     fused tokenize→plan-execute machine) returns byte-identical values
//     to the arena DOM fast path AND the interpreter, across axis/test/
//     predicate combinations and on the tag-soup corpus.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_wrapper.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "gtest/gtest.h"
#include "html/arena_dom.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "html/stream_page.h"
#include "xpath/parser.h"

namespace ntw {
namespace {

std::vector<std::string> InterpretedValues(const core::Wrapper& wrapper,
                                           const std::string& source) {
  Result<html::Document> doc = html::Parse(source);
  EXPECT_TRUE(doc.ok());
  core::PageSet pages;
  pages.AddPage(std::move(*doc));
  std::vector<std::string> values;
  for (const core::NodeRef& ref : wrapper.Extract(pages)) {
    const html::Node* node = pages.Resolve(ref);
    if (node != nullptr) values.push_back(node->text());
  }
  return values;
}

std::vector<std::string> DomFastValues(const core::CompiledWrapper& compiled,
                                       core::FastPageBuffer& buffer,
                                       const std::string& source) {
  buffer.Clear();
  html::ArenaParse(source, &buffer.doc);
  compiled.Extract(buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(), buffer.values.end());
}

std::vector<std::string> StreamingValues(
    const core::CompiledWrapper& compiled, core::StreamPageBuffer& buffer,
    const std::string& source) {
  buffer.Clear();
  compiled.ExtractStreaming(source, buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(), buffer.values.end());
}

/// The ground truth for StreamPage: the arena DOM's flatten of the same
/// input. Any stream or span divergence here breaks every contract above.
void ExpectStreamMatchesArena(const std::string& source) {
  html::ArenaDocument doc;
  html::ArenaParse(source, &doc);
  html::StreamPage page;
  page.Build(source);
  ASSERT_EQ(page.stream(), doc.stream()) << "input: " << source;
  ASSERT_EQ(page.spans().size(), doc.spans().size()) << "input: " << source;
  for (size_t i = 0; i < page.spans().size(); ++i) {
    EXPECT_EQ(page.spans()[i].begin, doc.spans()[i].begin)
        << "span " << i << " input: " << source;
    EXPECT_EQ(page.spans()[i].end, doc.spans()[i].end)
        << "span " << i << " input: " << source;
  }
}

TEST(StreamPageTest, MatchesArenaFlattenOnTrickyInputs) {
  const char* inputs[] = {
      "",
      "just text",
      "<html><body><b>x</b></body></html>",
      // Entities everywhere: text, attributes, double-encoded.
      "<p>A &amp; B</p>",
      "<p title=\"A &amp; B\">x</p>",
      "<p>&amp;amp;</p>",
      "<p>&#65;BC&#66;</p>",
      "<p>&#x41;&#x42;</p>",
      "<p>&unknown; &amp</p>",
      "<p>&</p>",
      "<p>trailing &</p>",
      // Whitespace normalization.
      "<p>  leading and   internal  </p>",
      "<p>\ttabs\nand\nnewlines\r</p>",
      "<div>   </div>",
      // Tag soup: implied ends, mis-nesting, unmatched closes, EOF.
      "<ul><li>a<li>b</ul>",
      "<table><tr><td>a<td>b<tr><td>c</table>",
      "<p>one<p>two<div>three",
      "<b><i>x</b>y",
      "<div></span></div>",
      "<table><tr><td>x</div></td></tr></table>",
      "<div><p>unclosed",
      // Case folding and attribute handling.
      "<DIV CLASS=\"A\">x</DIV>",
      "<a href='single'>x</a>",
      "<a href=bare>x</a>",
      "<a href>x</a>",
      "<a a=\"1\" b=\"2\" a=\"3\">x</a>",
      "<a  spaced = \"v\" >x</a>",
      "<br/><hr /><img src=\"i\">",
      "<div/>x",
      // Comments, doctype, stray '<'.
      "<!doctype html><p>x</p>",
      "<p><!-- gone -->x</p>",
      "<p>1 < 2</p>",
      "<p>a<3</p>",
      // Raw text elements.
      "<script>var a = 1 && 2;</script><p>x</p>",
      "<script> if (a < b) { c(); } </script>",
      "<style>.a{color:red}</style>",
      "<textarea>A &amp; B</textarea>",
      "<script></script>after",
      "<script>unclosed",
      "<script/>sibling",
      // Canonical serializer-style output (the verbatim tier's domain).
      "<html><head><title>t</title></head><body><ul><li>one</li>"
      "<li>two</li></ul></body></html>",
  };
  for (const char* input : inputs) {
    ExpectStreamMatchesArena(input);
  }
}

TEST(StreamPageTest, VerbatimTierEngagesOnCanonicalPages) {
  // A page in canonical serialized form: lowercase tags, double-quoted
  // attrs, no entities, tight whitespace (no whitespace-only text nodes —
  // the stream drops those) — the zero-copy tier must accept it and alias
  // the input.
  std::string source =
      "<html><body><div class=\"row\"><b>Ada Lovelace</b><i>1815</i>"
      "</div></body></html>";
  html::StreamPage page;
  page.Build(source);
  EXPECT_TRUE(page.verbatim());
  EXPECT_EQ(page.stream(), source);
  EXPECT_EQ(page.stream().data(), std::string_view(source).data());
  ExpectStreamMatchesArena(source);
}

TEST(StreamPageTest, PatchedTierFixesLocalRewritesInPlace) {
  // Each construct diverges from the normalized stream only LOCALLY — an
  // entity decode, a collapse fix, a dropped whitespace-only text node,
  // a case fold, an attribute re-quote, or a close tag resolved against
  // the open stack — so the copy-on-write scanner must patch it rather
  // than bail to the full tokenize, and the patched stream must match
  // the arena flatten.
  const char* inputs[] = {
      "<p>A &amp; B</p>",           // Entity in text.
      "<p title=\"&amp;\">x</p>",   // Entity in attribute value.
      "<p>a  b</p>",                // Double space.
      "<p> a</p>",                  // Leading space.
      "<p>a </p>",                  // Trailing space.
      "<p>a\tb</p>",                // Non-space whitespace.
      "<script> a </script>",       // Raw text with edge whitespace.
      "<div>x</div> <div>y</div>",  // Whitespace-only text node (dropped).
      // Tag/attribute case folding.
      "<P>x</P>",                   // Uppercase tag, both ends.
      "<DiV cLaSs=\"a\">x</dIv>",   // Mixed case tag + attribute name.
      "<SCRIPT>if (a < b) c();</script>",  // Folded raw-text element (the
                                           // lowercase close is the scan
                                           // needle, so it must stay).
      // Attribute re-quoting.
      "<a href='v'>x</a>",          // Single-quoted attribute.
      "<a href='A &amp; B'>x</a>",  // Single-quoted with entity.
      "<a href=bare>x</a>",         // Bare attribute.
      "<a href>x</a>",              // Valueless attribute.
      "<a href=>x</a>",             // Empty unquoted value.
      "<a  spaced = \"v\" >x</a>",  // Whitespace around '=' and '>'.
      "<a\nhref=\"v\"\tid='i'>x</a>",  // Tab/newline separators.
      "<a href=\"1\"id=\"2\">x</a>",   // Missing separator space.
      // Implied end tags against the open stack.
      "<ul><li>a<li>b</ul>",        // Implied </li>.
      "<p>one<p>two<div>three</div>",  // Implied </p> twice.
      "<table><tr><td>a<td>b<tr><td>c</table>",  // Implied </td>/</tr>.
      // Stray / mis-nested / EOF closes.
      "</p><b>x</b>",               // Unmatched end tag (dropped).
      "<div></span></div>",         // Stray close inside open element.
      "<b><i>x</b>y",               // Mis-nested close + EOF close.
      "<p>x",                       // Unclosed at EOF.
      "<div><p>unclosed",           // Two unclosed at EOF.
      "<ul><li>a</ul\t>",           // Junk before '>' in an end tag.
  };
  html::StreamPage page;
  for (const char* input : inputs) {
    page.Build(input);
    EXPECT_EQ(page.tier(), html::StreamPage::Tier::kPatched)
        << "input: " << input;
    ExpectStreamMatchesArena(input);
  }
}

TEST(StreamPageTest, FlattenTierHandlesStructuralRewrites) {
  // Each construct forces a STRUCTURAL normalization the forward-only
  // patch stream cannot express — bytes moving backwards (duplicate
  // attributes keep the first position but the last value), the
  // self-closing machinery, dropped comments/doctypes, stray '<' text,
  // raw-text elements running to EOF — so the scanner must bail to the
  // fused flatten, whose stream must still match the arena flatten.
  const char* inputs[] = {
      "<a a=\"1\" a=\"2\">x</a>",  // Duplicate attribute.
      "<a A=\"1\" a=\"2\">x</a>",  // Duplicate after case folding.
      "<br/>",                     // Self-closing slash.
      "<div/>x",                   // Self-closing non-void.
      "<!doctype html><p>x</p>",   // Doctype.
      "<p><!--c-->x</p>",          // Comment.
      "<p>1 < 2</p>",              // Stray '<' becomes text.
      "<script>unclosed",          // Raw text to EOF.
      "<SCRIPT>var a;</SCRIPT>x",  // Folded raw text: the scan needle is
                                   // lowercase, so the uppercase close is
                                   // content and the element runs to EOF.
  };
  html::StreamPage page;
  for (const char* input : inputs) {
    page.Build(input);
    EXPECT_EQ(page.tier(), html::StreamPage::Tier::kFlattened)
        << "input: " << input;
    ExpectStreamMatchesArena(input);
  }
}

/// Asserts the three-way byte identity for one wrapper on one page.
void ExpectThreeWayEqual(const core::Wrapper& wrapper,
                         const std::string& source,
                         const std::vector<std::string>& expected) {
  std::shared_ptr<const core::CompiledWrapper> compiled =
      core::CompiledWrapper::Compile(wrapper);
  ASSERT_NE(compiled, nullptr);
  ASSERT_TRUE(compiled->dom_free());
  core::FastPageBuffer dom_buffer;
  core::StreamPageBuffer stream_buffer;
  std::vector<std::string> interpreted = InterpretedValues(wrapper, source);
  EXPECT_EQ(interpreted, expected) << "interpreted, input: " << source;
  EXPECT_EQ(DomFastValues(*compiled, dom_buffer, source), expected)
      << "dom fast path, input: " << source;
  EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source), expected)
      << "streaming path, input: " << source;
}

TEST(StreamingEntityEdgeCases, EntityInsideLeftDelimiter) {
  // The left delimiter "A &<i>" contains a decoded ampersand: in the raw
  // page it is "A &amp; <i>" (the trailing space collapses away), so the
  // delimiter straddles the reference.
  std::string source = "<html><body>A &amp; <i>V</i></body></html>";
  core::LrWrapper lr("A &<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"V"});
}

TEST(StreamingEntityEdgeCases, NumericReferencesAtSpanBoundaries) {
  // The extracted span both starts and ends with decoded numeric
  // references (&#65; = 'A', &#x42; = 'B').
  std::string source = "<html><body><i>&#65;mid&#x42;</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"AmidB"});
}

TEST(StreamingEntityEdgeCases, DoubleEncodedAmpersandInValue) {
  // &amp;amp; decodes once to the literal bytes "&amp;" — the streaming
  // path must not decode twice.
  std::string source = "<html><body><i>&amp;amp;</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"&amp;"});
}

TEST(StreamingEntityEdgeCases, EntityInAttributeInsideDelimiter) {
  // The delimiter runs through an attribute value whose raw form carries
  // a reference: stream is <td title="A & B">V</td>.
  std::string source =
      "<html><body><td title=\"A &amp; B\">V</td></body></html>";
  core::LrWrapper lr("<td title=\"A & B\">", "</td>");
  ExpectThreeWayEqual(lr, source, {"V"});
}

TEST(StreamingEntityEdgeCases, UndecodableAmpersandStaysVerbatim) {
  // "&nosuch;" is not a known reference: the bytes pass through and the
  // page can still take the zero-copy tier.
  std::string source = "<html><body><i>a &nosuch; b</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"a &nosuch; b"});
  html::StreamPage page;
  page.Build(source);
  EXPECT_TRUE(page.verbatim());
}

TEST(StreamingEntityEdgeCases, HlrtHeadContainsDecodedEntity) {
  // HLRT whose head region marker contains a decoded entity, with two
  // candidate spans — only the one inside the region extracts.
  std::string source =
      "<html><body><i>skip</i>Deals &amp; Offers<i>take</i>"
      "END<i>after</i></body></html>";
  core::HlrtWrapper hlrt("Deals & Offers", "END", "<i>", "</i>");
  ExpectThreeWayEqual(hlrt, source, {"take"});
}

TEST(StreamingEntityEdgeCases, HlrtHeadAbsentYieldsNoValues) {
  std::string source = "<html><body><i>v</i></body></html>";
  core::HlrtWrapper hlrt("NO-SUCH-HEAD", "", "<i>", "</i>");
  ExpectThreeWayEqual(hlrt, source, {});
}

TEST(StreamingEntityEdgeCases, EmptyLeftDelimiter) {
  // Empty left: every span is a candidate (the all-spans loop, not the
  // BMH occurrence scan).
  std::string source = "<html><body><i>a</i><b>b</b></body></html>";
  core::LrWrapper lr("", "</b>");
  ExpectThreeWayEqual(lr, source, {"b"});
}

// The randomized wellbehaved-style sweep: seeded generated sites, one
// learned LR and one learned HLRT wrapper per site, every page through
// all three paths, byte identity required. Streams are also cross-checked
// against the arena flatten page by page.
class StreamingSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingSweepTest, SeededSitesAllPathsIdentical) {
  datasets::DealersConfig config;
  config.num_sites = 3;
  config.seed = GetParam();
  datasets::Dataset dealers = datasets::MakeDealers(config);

  core::LrInductor lr;
  core::HlrtInductor hlrt;
  core::FastPageBuffer dom_buffer;
  core::StreamPageBuffer stream_buffer;
  size_t verbatim_pages = 0;
  size_t patched_pages = 0;
  size_t flattened_pages = 0;
  for (const datasets::SiteData& site : dealers.sites) {
    auto truth = site.site.truth.find("name");
    ASSERT_NE(truth, site.site.truth.end());
    for (const core::WrapperInductor* inductor :
         std::initializer_list<const core::WrapperInductor*>{&lr, &hlrt}) {
      core::Induction induction =
          inductor->Induce(site.site.pages, truth->second);
      ASSERT_NE(induction.wrapper, nullptr);
      std::shared_ptr<const core::CompiledWrapper> compiled =
          core::CompiledWrapper::Compile(*induction.wrapper);
      ASSERT_NE(compiled, nullptr);
      ASSERT_TRUE(compiled->dom_free());
      for (size_t p = 0; p < site.site.pages.size(); ++p) {
        std::string source = html::Serialize(site.site.pages.page(p).root());
        ExpectStreamMatchesArena(source);
        std::vector<std::string> interpreted =
            InterpretedValues(*induction.wrapper, source);
        EXPECT_EQ(DomFastValues(*compiled, dom_buffer, source), interpreted)
            << "site " << site.site.name << " page " << p;
        EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source),
                  interpreted)
            << "site " << site.site.name << " page " << p;
        switch (stream_buffer.page.tier()) {
          case html::StreamPage::Tier::kVerbatim: ++verbatim_pages; break;
          case html::StreamPage::Tier::kPatched: ++patched_pages; break;
          case html::StreamPage::Tier::kFlattened: ++flattened_pages; break;
        }
      }
    }
  }
  // Every dealers page carries an "&amp;" somewhere (business or dealer
  // names) but is otherwise canonical serializer output, so the patched
  // copy-on-write tier must be doing ALL the work here — never zero-copy,
  // never the full tokenize. The zero-copy tier is exercised by the DISC
  // sweep and the handcrafted canonical pages above.
  EXPECT_GT(patched_pages, 0u);
  EXPECT_EQ(verbatim_pages, 0u);
  EXPECT_EQ(flattened_pages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingSweepTest,
                         ::testing::Values(11u, 99u, 12345u));

TEST(StreamingSweepTest, DiscDatasetStreamsMatchArena) {
  // A second domain (DISC discographies: apostrophes, punctuation-heavy
  // titles) purely at the stream level.
  datasets::DiscConfig config;
  config.num_sites = 2;
  datasets::Dataset disc = datasets::MakeDisc(config);
  html::StreamPage page;
  size_t verbatim_pages = 0;
  for (const datasets::SiteData& site : disc.sites) {
    for (size_t p = 0; p < site.site.pages.size(); ++p) {
      std::string source = html::Serialize(site.site.pages.page(p).root());
      ExpectStreamMatchesArena(source);
      page.Build(source);
      if (page.verbatim()) ++verbatim_pages;
    }
  }
  // Unlike dealers, this corpus has entity-free pages, so the zero-copy
  // tier must engage on a real generated site, not just handcrafted HTML.
  EXPECT_GT(verbatim_pages, 0u);
}

// -------------------------------------------------------------------
// Fused streaming XPath: the bitset executor against the tokenizer
// stream must match the interpreted evaluator and the arena step
// machine on every axis/test/predicate combination.
// -------------------------------------------------------------------

/// Parses `expr_text`, compiles it, and asserts the interpreted, arena
/// DOM and fused streaming executors all return `expected`. XPath plans
/// are never dom_free() (they walk structure, not delimiters) but every
/// parseable program here must be streamable().
void ExpectXPathThreeWay(const std::string& expr_text,
                         const std::string& source,
                         const std::vector<std::string>& expected) {
  Result<xpath::Expr> expr = xpath::ParseXPath(expr_text);
  ASSERT_TRUE(expr.ok()) << expr_text;
  core::XPathWrapper wrapper(std::move(*expr));
  std::shared_ptr<const core::CompiledWrapper> compiled =
      core::CompiledWrapper::Compile(wrapper);
  ASSERT_NE(compiled, nullptr) << expr_text;
  EXPECT_FALSE(compiled->dom_free()) << expr_text;
  ASSERT_TRUE(compiled->streamable()) << expr_text;
  core::FastPageBuffer dom_buffer;
  core::StreamPageBuffer stream_buffer;
  EXPECT_EQ(InterpretedValues(wrapper, source), expected)
      << "interpreted, expr: " << expr_text;
  EXPECT_EQ(DomFastValues(*compiled, dom_buffer, source), expected)
      << "dom fast path, expr: " << expr_text;
  EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source), expected)
      << "streaming path, expr: " << expr_text;
}

TEST(StreamingXPath, ChildVersusDescendantAxes) {
  // Element matches extract the empty string on every path (values come
  // from text() steps); what these pin down is the match COUNT and that
  // the child axis needs the parent itself while the descendant axis
  // accepts any ancestor.
  std::string source =
      "<html><body><div><span>a</span><p><span>b</span></p></div>"
      "<span>c</span></body></html>";
  ExpectXPathThreeWay("/html/body/div/span", source, {""});
  ExpectXPathThreeWay("//div//span", source, {"", ""});
  ExpectXPathThreeWay("//span", source, {"", "", ""});
  ExpectXPathThreeWay("/html/body/div/span/text()[1]", source, {"a"});
  ExpectXPathThreeWay("//div//span/text()[1]", source, {"a", "b"});
  ExpectXPathThreeWay("//span/text()[1]", source, {"a", "b", "c"});
}

TEST(StreamingXPath, TagPositionUsesSameTagNumbering) {
  // b[2] counts only <b> element siblings: the interleaved <i> and the
  // text nodes do not shift it.
  std::string source =
      "<html><body><p>t<b>one</b><i>x</i><b>two</b><b>three</b></p>"
      "</body></html>";
  ExpectXPathThreeWay("//p/b[2]/text()[1]", source, {"two"});
  ExpectXPathThreeWay("//p/b[3]/text()[1]", source, {"three"});
  ExpectXPathThreeWay("//p/b[4]", source, {});
}

TEST(StreamingXPath, TextAndWildcardUseSiblingNumbering) {
  // text()[k] and *[k] count positions among ALL children: in
  // <p>a<b>x</b>c</p> the text "c" is the third child and <b> the
  // second.
  std::string source = "<html><body><p>a<b>x</b>c</p></body></html>";
  ExpectXPathThreeWay("//p/text()[1]", source, {"a"});
  ExpectXPathThreeWay("//p/text()[3]", source, {"c"});
  ExpectXPathThreeWay("//p/text()[2]", source, {});
  ExpectXPathThreeWay("//p/*[2]/text()[1]", source, {"x"});
  ExpectXPathThreeWay("//p/*[1]", source, {});
}

TEST(StreamingXPath, AttributeFiltersKeepLastDuplicateValue) {
  // A duplicated attribute name keeps the LAST value in every path: the
  // tree builders overwrite in place, and the fused executor scans the
  // token's attribute list backward.
  std::string source =
      "<html><body><div a=\"1\" a=\"2\"><b>x</b></div>"
      "<div a=\"1\"><b>y</b></div></body></html>";
  ExpectXPathThreeWay("//div[@a='2']/b/text()[1]", source, {"x"});
  ExpectXPathThreeWay("//div[@a='1']/b/text()[1]", source, {"y"});
  ExpectXPathThreeWay("//div[@a='3']", source, {});
  // Attribute filters always fail text nodes (no attributes to match).
  ExpectXPathThreeWay("//div/b/text()[@a='1']", source, {});
}

TEST(StreamingXPath, VoidAndSelfClosingSiblingsCountInPositions) {
  // <br> and <br/> produce childless element nodes that still occupy
  // sibling and same-tag slots.
  std::string source =
      "<html><body><div><br><span>x</span><br/><span>y</span></div>"
      "</body></html>";
  ExpectXPathThreeWay("//div/span[2]/text()[1]", source, {"y"});
  ExpectXPathThreeWay("//div/*[4]/text()[1]", source, {"y"});
  ExpectXPathThreeWay("//div/br[2]", source, {""});
}

TEST(StreamingXPath, TextCaptureCollapsesWhitespaceAndDecodesEntities) {
  std::string source =
      "<html><body><li>  a &amp;\n b  </li><li>&#32; </li></body></html>";
  ExpectXPathThreeWay("//li/text()[1]", source, {"a & b"});
  // The second <li>'s text decodes to pure whitespace and is skipped, so
  // it has no text child at all.
  ExpectXPathThreeWay("//li[2]/text()[1]", source, {});
}

TEST(StreamingXPath, TagSoupPageThroughFusedTokenizer) {
  // The fused executor runs the tokenizer directly: case folding,
  // single-quoted and bare attributes, and implied </li> closes must
  // resolve identically to both tree builders.
  std::string source =
      "<HTML><BODY><UL id=list><LI><B class='n'>a</B>"
      "<LI><B class='n'>b</B></UL></BODY></HTML>";
  ExpectXPathThreeWay("//li/b/text()[1]", source, {"a", "b"});
  ExpectXPathThreeWay("//ul[@id='list']/li[2]/b[@class='n']/text()[1]",
                      source, {"b"});
}

TEST(StreamingXPath, MisnestedAndStrayEndTags) {
  // </ul> closes the still-open <li>; the stray </table> is dropped
  // without crossing anything.
  std::string source =
      "<html><body><ul><li>one</table><li>two</ul>"
      "<p>after</p></body></html>";
  ExpectXPathThreeWay("//li/text()[1]", source, {"one", "two"});
  ExpectXPathThreeWay("/html/body/p/text()[1]", source, {"after"});
}

// -------------------------------------------------------------------
// Randomized tag-soup corpus: pages built from the LOCAL rewrite
// vocabulary (mixed-case names, re-quotable attributes, implied end
// tags) must all take the PATCHED tier — no fused-tokenize fallback —
// and stay byte-identical across every path.
// -------------------------------------------------------------------

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

/// Randomly uppercases letters of a canonical lowercase name.
std::string RandomCase(uint64_t* s, std::string_view name) {
  std::string out;
  for (char c : name) {
    bool up = c >= 'a' && c <= 'z' && (XorShift(s) & 1) != 0;
    out.push_back(up ? static_cast<char>(c - 'a' + 'A') : c);
  }
  return out;
}

/// Appends one attribute in a randomly chosen soup spelling: double,
/// single or unquoted value, optional whitespace around '=', random
/// separator whitespace. `value` must be quote- and space-free so the
/// bare form round-trips.
void AppendSoupAttr(uint64_t* s, std::string_view name,
                    std::string_view value, std::string* out) {
  out->push_back(" \t\n"[XorShift(s) % 3]);
  out->append(RandomCase(s, name));
  switch (XorShift(s) % 4) {
    case 0:
      out->append("=\"").append(value).append("\"");
      break;
    case 1:
      out->append("='").append(value).append("'");
      break;
    case 2:
      out->append("=").append(value);
      break;
    default:
      out->append(" = '").append(value).append("'");
      break;
  }
}

TEST(TagSoupCorpus, PatchedTierEngagesWithThreeWayIdentity) {
  core::LrWrapper name_lr("<b class=\"name\">", "</b>");
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    uint64_t s = seed * 0x9e3779b97f4a7c15ull;
    XorShift(&s);
    size_t items = 3 + XorShift(&s) % 4;
    std::vector<std::string> names;
    std::vector<std::string> cells;

    std::string page;
    page += "<" + RandomCase(&s, "html") + "><" + RandomCase(&s, "body");
    AppendSoupAttr(&s, "class", "top", &page);
    page += "><" + RandomCase(&s, "p") + ">Intro text";
    // No </p>: the following <ul> implies it. Each <li> is likewise
    // implied closed by the next <li> or by </ul>.
    page += "<" + RandomCase(&s, "ul");
    AppendSoupAttr(&s, "id", "list", &page);
    page += ">";
    for (size_t i = 1; i <= items; ++i) {
      names.push_back("Item " + std::to_string(i));
      page += "<" + RandomCase(&s, "li");
      if (XorShift(&s) & 1) {
        // Valueless attribute: canonicalizes to data-sale="".
        page.push_back(' ');
        page += RandomCase(&s, "data-sale");
      }
      page += "><" + RandomCase(&s, "b");
      AppendSoupAttr(&s, "class", "name", &page);
      page += ">" + names.back() + "</" + RandomCase(&s, "b") + ">";
      page += " $" + std::to_string(100 * i);
    }
    page += "</" + RandomCase(&s, "ul") + ">";
    // Table rows and cells left open: </table> resolves the whole pile
    // through the nearest-match walk.
    page += "<" + RandomCase(&s, "table") + ">";
    for (size_t r = 0; r < 2; ++r) {
      page += "<" + RandomCase(&s, "tr") + ">";
      for (size_t c = 0; c < 2; ++c) {
        cells.push_back("c" + std::to_string(2 * r + c));
        page += "<" + RandomCase(&s, "td") + ">" + cells.back();
      }
    }
    page += "</" + RandomCase(&s, "table") + ">";
    page += "</" + RandomCase(&s, "body") + "></" +
            RandomCase(&s, "html") + ">";

    // The implied-</li> splices alone guarantee at least one patch, so
    // the tier must be exactly kPatched: these rewrites are all LOCAL.
    html::StreamPage stream_page;
    stream_page.Build(page);
    EXPECT_EQ(stream_page.tier(), html::StreamPage::Tier::kPatched)
        << "seed " << seed << " page: " << page;
    ExpectStreamMatchesArena(page);

    ExpectThreeWayEqual(name_lr, page, names);
    ExpectXPathThreeWay("//li/b[@class='name']/text()[1]", page, names);
    ExpectXPathThreeWay("//table/tr[2]/td/text()[1]", page,
                        {cells[2], cells[3]});
    ExpectXPathThreeWay("/html/body/p/text()[1]", page, {"Intro text"});
  }
}

}  // namespace
}  // namespace ntw
