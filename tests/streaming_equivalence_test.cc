// Pins the streaming (no-DOM) extraction path's byte-identity contract:
//
//  1. StreamPage produces exactly the same flattened stream + text spans
//     as ArenaDocument (which itself mirrors text::CharView) for every
//     input — including the entity and whitespace constructs the patched
//     (copy-on-write) tier fixes in place and the tag-soup and raw-text
//     constructs that force the fused flatten.
//  2. CompiledWrapper::ExtractStreaming returns byte-identical values to
//     the DOM fast path AND the interpreted Wrapper::Extract pipeline,
//     for LR and HLRT plans — the entity-decoding edge cases (delimiters
//     straddling or containing references, numeric references at span
//     boundaries) are exercised explicitly, then a randomized seeded
//     sweep (sites × LR/HLRT × both paths) pins the general case.
//  3. The verbatim (zero-copy) tier engages exactly when it should: its
//     accept is a claim that raw bytes == normalized stream, so every
//     accepted page is also cross-checked against the arena flatten.

#include <memory>
#include <string>
#include <vector>

#include "core/compiled_wrapper.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "gtest/gtest.h"
#include "html/arena_dom.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "html/stream_page.h"

namespace ntw {
namespace {

std::vector<std::string> InterpretedValues(const core::Wrapper& wrapper,
                                           const std::string& source) {
  Result<html::Document> doc = html::Parse(source);
  EXPECT_TRUE(doc.ok());
  core::PageSet pages;
  pages.AddPage(std::move(*doc));
  std::vector<std::string> values;
  for (const core::NodeRef& ref : wrapper.Extract(pages)) {
    const html::Node* node = pages.Resolve(ref);
    if (node != nullptr) values.push_back(node->text());
  }
  return values;
}

std::vector<std::string> DomFastValues(const core::CompiledWrapper& compiled,
                                       core::FastPageBuffer& buffer,
                                       const std::string& source) {
  buffer.Clear();
  html::ArenaParse(source, &buffer.doc);
  compiled.Extract(buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(), buffer.values.end());
}

std::vector<std::string> StreamingValues(
    const core::CompiledWrapper& compiled, core::StreamPageBuffer& buffer,
    const std::string& source) {
  buffer.Clear();
  compiled.ExtractStreaming(source, buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(), buffer.values.end());
}

/// The ground truth for StreamPage: the arena DOM's flatten of the same
/// input. Any stream or span divergence here breaks every contract above.
void ExpectStreamMatchesArena(const std::string& source) {
  html::ArenaDocument doc;
  html::ArenaParse(source, &doc);
  html::StreamPage page;
  page.Build(source);
  ASSERT_EQ(page.stream(), doc.stream()) << "input: " << source;
  ASSERT_EQ(page.spans().size(), doc.spans().size()) << "input: " << source;
  for (size_t i = 0; i < page.spans().size(); ++i) {
    EXPECT_EQ(page.spans()[i].begin, doc.spans()[i].begin)
        << "span " << i << " input: " << source;
    EXPECT_EQ(page.spans()[i].end, doc.spans()[i].end)
        << "span " << i << " input: " << source;
  }
}

TEST(StreamPageTest, MatchesArenaFlattenOnTrickyInputs) {
  const char* inputs[] = {
      "",
      "just text",
      "<html><body><b>x</b></body></html>",
      // Entities everywhere: text, attributes, double-encoded.
      "<p>A &amp; B</p>",
      "<p title=\"A &amp; B\">x</p>",
      "<p>&amp;amp;</p>",
      "<p>&#65;BC&#66;</p>",
      "<p>&#x41;&#x42;</p>",
      "<p>&unknown; &amp</p>",
      "<p>&</p>",
      "<p>trailing &</p>",
      // Whitespace normalization.
      "<p>  leading and   internal  </p>",
      "<p>\ttabs\nand\nnewlines\r</p>",
      "<div>   </div>",
      // Tag soup: implied ends, mis-nesting, unmatched closes, EOF.
      "<ul><li>a<li>b</ul>",
      "<table><tr><td>a<td>b<tr><td>c</table>",
      "<p>one<p>two<div>three",
      "<b><i>x</b>y",
      "<div></span></div>",
      "<table><tr><td>x</div></td></tr></table>",
      "<div><p>unclosed",
      // Case folding and attribute handling.
      "<DIV CLASS=\"A\">x</DIV>",
      "<a href='single'>x</a>",
      "<a href=bare>x</a>",
      "<a href>x</a>",
      "<a a=\"1\" b=\"2\" a=\"3\">x</a>",
      "<a  spaced = \"v\" >x</a>",
      "<br/><hr /><img src=\"i\">",
      "<div/>x",
      // Comments, doctype, stray '<'.
      "<!doctype html><p>x</p>",
      "<p><!-- gone -->x</p>",
      "<p>1 < 2</p>",
      "<p>a<3</p>",
      // Raw text elements.
      "<script>var a = 1 && 2;</script><p>x</p>",
      "<script> if (a < b) { c(); } </script>",
      "<style>.a{color:red}</style>",
      "<textarea>A &amp; B</textarea>",
      "<script></script>after",
      "<script>unclosed",
      "<script/>sibling",
      // Canonical serializer-style output (the verbatim tier's domain).
      "<html><head><title>t</title></head><body><ul><li>one</li>"
      "<li>two</li></ul></body></html>",
  };
  for (const char* input : inputs) {
    ExpectStreamMatchesArena(input);
  }
}

TEST(StreamPageTest, VerbatimTierEngagesOnCanonicalPages) {
  // A page in canonical serialized form: lowercase tags, double-quoted
  // attrs, no entities, tight whitespace (no whitespace-only text nodes —
  // the stream drops those) — the zero-copy tier must accept it and alias
  // the input.
  std::string source =
      "<html><body><div class=\"row\"><b>Ada Lovelace</b><i>1815</i>"
      "</div></body></html>";
  html::StreamPage page;
  page.Build(source);
  EXPECT_TRUE(page.verbatim());
  EXPECT_EQ(page.stream(), source);
  EXPECT_EQ(page.stream().data(), std::string_view(source).data());
  ExpectStreamMatchesArena(source);
}

TEST(StreamPageTest, PatchedTierFixesLocalRewritesInPlace) {
  // Each construct diverges from the normalized stream only LOCALLY — an
  // entity decode, a collapse fix, a dropped whitespace-only text node —
  // so the copy-on-write scanner must patch it rather than bail to the
  // full tokenize, and the patched stream must match the arena flatten.
  const char* inputs[] = {
      "<p>A &amp; B</p>",           // Entity in text.
      "<p title=\"&amp;\">x</p>",   // Entity in attribute value.
      "<p>a  b</p>",                // Double space.
      "<p> a</p>",                  // Leading space.
      "<p>a </p>",                  // Trailing space.
      "<p>a\tb</p>",                // Non-space whitespace.
      "<script> a </script>",       // Raw text with edge whitespace.
      "<div>x</div> <div>y</div>",  // Whitespace-only text node (dropped).
  };
  html::StreamPage page;
  for (const char* input : inputs) {
    page.Build(input);
    EXPECT_EQ(page.tier(), html::StreamPage::Tier::kPatched)
        << "input: " << input;
    ExpectStreamMatchesArena(input);
  }
}

TEST(StreamPageTest, FlattenTierHandlesStructuralRewrites) {
  // Each construct forces a STRUCTURAL normalization — tag bytes move,
  // reorder or get synthesized — so the scanner must bail to the fused
  // flatten, whose stream must still match the arena flatten.
  const char* inputs[] = {
      "<P>x</P>",                  // Uppercase tag.
      "<p CLASS=\"a\">x</p>",      // Uppercase attribute name.
      "<ul><li>a<li>b</ul>",       // Implied end tag.
      "<a href='v'>x</a>",         // Single-quoted attribute.
      "<a href=bare>x</a>",        // Bare attribute.
      "<a href>x</a>",             // Valueless attribute.
      "<a a=\"1\" a=\"2\">x</a>",  // Duplicate attribute.
      "<br/>",                     // Self-closing slash.
      "<p>x",                      // Unclosed at EOF.
      "<!doctype html><p>x</p>",   // Doctype.
      "<p><!--c-->x</p>",          // Comment.
      "</p><b>x</b>",              // Unmatched end tag.
  };
  html::StreamPage page;
  for (const char* input : inputs) {
    page.Build(input);
    EXPECT_EQ(page.tier(), html::StreamPage::Tier::kFlattened)
        << "input: " << input;
    ExpectStreamMatchesArena(input);
  }
}

/// Asserts the three-way byte identity for one wrapper on one page.
void ExpectThreeWayEqual(const core::Wrapper& wrapper,
                         const std::string& source,
                         const std::vector<std::string>& expected) {
  std::shared_ptr<const core::CompiledWrapper> compiled =
      core::CompiledWrapper::Compile(wrapper);
  ASSERT_NE(compiled, nullptr);
  ASSERT_TRUE(compiled->dom_free());
  core::FastPageBuffer dom_buffer;
  core::StreamPageBuffer stream_buffer;
  std::vector<std::string> interpreted = InterpretedValues(wrapper, source);
  EXPECT_EQ(interpreted, expected) << "interpreted, input: " << source;
  EXPECT_EQ(DomFastValues(*compiled, dom_buffer, source), expected)
      << "dom fast path, input: " << source;
  EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source), expected)
      << "streaming path, input: " << source;
}

TEST(StreamingEntityEdgeCases, EntityInsideLeftDelimiter) {
  // The left delimiter "A &<i>" contains a decoded ampersand: in the raw
  // page it is "A &amp; <i>" (the trailing space collapses away), so the
  // delimiter straddles the reference.
  std::string source = "<html><body>A &amp; <i>V</i></body></html>";
  core::LrWrapper lr("A &<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"V"});
}

TEST(StreamingEntityEdgeCases, NumericReferencesAtSpanBoundaries) {
  // The extracted span both starts and ends with decoded numeric
  // references (&#65; = 'A', &#x42; = 'B').
  std::string source = "<html><body><i>&#65;mid&#x42;</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"AmidB"});
}

TEST(StreamingEntityEdgeCases, DoubleEncodedAmpersandInValue) {
  // &amp;amp; decodes once to the literal bytes "&amp;" — the streaming
  // path must not decode twice.
  std::string source = "<html><body><i>&amp;amp;</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"&amp;"});
}

TEST(StreamingEntityEdgeCases, EntityInAttributeInsideDelimiter) {
  // The delimiter runs through an attribute value whose raw form carries
  // a reference: stream is <td title="A & B">V</td>.
  std::string source =
      "<html><body><td title=\"A &amp; B\">V</td></body></html>";
  core::LrWrapper lr("<td title=\"A & B\">", "</td>");
  ExpectThreeWayEqual(lr, source, {"V"});
}

TEST(StreamingEntityEdgeCases, UndecodableAmpersandStaysVerbatim) {
  // "&nosuch;" is not a known reference: the bytes pass through and the
  // page can still take the zero-copy tier.
  std::string source = "<html><body><i>a &nosuch; b</i></body></html>";
  core::LrWrapper lr("<i>", "</i>");
  ExpectThreeWayEqual(lr, source, {"a &nosuch; b"});
  html::StreamPage page;
  page.Build(source);
  EXPECT_TRUE(page.verbatim());
}

TEST(StreamingEntityEdgeCases, HlrtHeadContainsDecodedEntity) {
  // HLRT whose head region marker contains a decoded entity, with two
  // candidate spans — only the one inside the region extracts.
  std::string source =
      "<html><body><i>skip</i>Deals &amp; Offers<i>take</i>"
      "END<i>after</i></body></html>";
  core::HlrtWrapper hlrt("Deals & Offers", "END", "<i>", "</i>");
  ExpectThreeWayEqual(hlrt, source, {"take"});
}

TEST(StreamingEntityEdgeCases, HlrtHeadAbsentYieldsNoValues) {
  std::string source = "<html><body><i>v</i></body></html>";
  core::HlrtWrapper hlrt("NO-SUCH-HEAD", "", "<i>", "</i>");
  ExpectThreeWayEqual(hlrt, source, {});
}

TEST(StreamingEntityEdgeCases, EmptyLeftDelimiter) {
  // Empty left: every span is a candidate (the all-spans loop, not the
  // BMH occurrence scan).
  std::string source = "<html><body><i>a</i><b>b</b></body></html>";
  core::LrWrapper lr("", "</b>");
  ExpectThreeWayEqual(lr, source, {"b"});
}

// The randomized wellbehaved-style sweep: seeded generated sites, one
// learned LR and one learned HLRT wrapper per site, every page through
// all three paths, byte identity required. Streams are also cross-checked
// against the arena flatten page by page.
class StreamingSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingSweepTest, SeededSitesAllPathsIdentical) {
  datasets::DealersConfig config;
  config.num_sites = 3;
  config.seed = GetParam();
  datasets::Dataset dealers = datasets::MakeDealers(config);

  core::LrInductor lr;
  core::HlrtInductor hlrt;
  core::FastPageBuffer dom_buffer;
  core::StreamPageBuffer stream_buffer;
  size_t verbatim_pages = 0;
  size_t patched_pages = 0;
  size_t flattened_pages = 0;
  for (const datasets::SiteData& site : dealers.sites) {
    auto truth = site.site.truth.find("name");
    ASSERT_NE(truth, site.site.truth.end());
    for (const core::WrapperInductor* inductor :
         std::initializer_list<const core::WrapperInductor*>{&lr, &hlrt}) {
      core::Induction induction =
          inductor->Induce(site.site.pages, truth->second);
      ASSERT_NE(induction.wrapper, nullptr);
      std::shared_ptr<const core::CompiledWrapper> compiled =
          core::CompiledWrapper::Compile(*induction.wrapper);
      ASSERT_NE(compiled, nullptr);
      ASSERT_TRUE(compiled->dom_free());
      for (size_t p = 0; p < site.site.pages.size(); ++p) {
        std::string source = html::Serialize(site.site.pages.page(p).root());
        ExpectStreamMatchesArena(source);
        std::vector<std::string> interpreted =
            InterpretedValues(*induction.wrapper, source);
        EXPECT_EQ(DomFastValues(*compiled, dom_buffer, source), interpreted)
            << "site " << site.site.name << " page " << p;
        EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source),
                  interpreted)
            << "site " << site.site.name << " page " << p;
        switch (stream_buffer.page.tier()) {
          case html::StreamPage::Tier::kVerbatim: ++verbatim_pages; break;
          case html::StreamPage::Tier::kPatched: ++patched_pages; break;
          case html::StreamPage::Tier::kFlattened: ++flattened_pages; break;
        }
      }
    }
  }
  // Every dealers page carries an "&amp;" somewhere (business or dealer
  // names) but is otherwise canonical serializer output, so the patched
  // copy-on-write tier must be doing ALL the work here — never zero-copy,
  // never the full tokenize. The zero-copy tier is exercised by the DISC
  // sweep and the handcrafted canonical pages above.
  EXPECT_GT(patched_pages, 0u);
  EXPECT_EQ(verbatim_pages, 0u);
  EXPECT_EQ(flattened_pages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingSweepTest,
                         ::testing::Values(11u, 99u, 12345u));

TEST(StreamingSweepTest, DiscDatasetStreamsMatchArena) {
  // A second domain (DISC discographies: apostrophes, punctuation-heavy
  // titles) purely at the stream level.
  datasets::DiscConfig config;
  config.num_sites = 2;
  datasets::Dataset disc = datasets::MakeDisc(config);
  html::StreamPage page;
  size_t verbatim_pages = 0;
  for (const datasets::SiteData& site : disc.sites) {
    for (size_t p = 0; p < site.site.pages.size(); ++p) {
      std::string source = html::Serialize(site.site.pages.page(p).root());
      ExpectStreamMatchesArena(source);
      page.Build(source);
      if (page.verbatim()) ++verbatim_pages;
    }
  }
  // Unlike dealers, this corpus has entity-free pages, so the zero-copy
  // tier must engage on a real generated site, not just handcrafted HTML.
  EXPECT_GT(verbatim_pages, 0u);
}

}  // namespace
}  // namespace ntw
