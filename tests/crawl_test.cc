// End-to-end tests of the fetch→extract→emit crawl pipeline
// (src/crawl/pipeline.cc, DESIGN.md §14) against generated origins:
// byte-identity across worker counts and transports (file:// vs a live
// in-process HTTP origin), frontier predicate pushdown (deny globs,
// depth, max-pages, dedup), robots.txt enforcement, 429 backoff with
// retry, and the self-healing hand-off — a mid-corpus template mutation
// that the crawl's drift detectors catch, re-induce, publish, and record
// in the repair quality ledger.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "crawl/pipeline.h"
#include "gtest/gtest.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/static_files.h"
#include "serve/wrapper_repository.h"
#include "sitegen/mutate.h"
#include "sitegen/origin.h"

namespace ntw::crawl {
namespace {

std::string UniqueRoot(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "ntw_crawl_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

/// A small written-to-disk origin (4 sites × 4 pages, XPATH + LR wrapper
/// per site) shared by the transport and frontier tests.
class CrawlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = UniqueRoot("origin");
    sitegen::OriginOptions options;
    options.sites = 4;
    options.pages_per_site = 4;
    corpus_ = sitegen::MakeOriginCorpus(options);
    ASSERT_TRUE(sitegen::WriteOriginTree(corpus_, root_ + "/origin").ok());
    ASSERT_TRUE(
        sitegen::WriteOriginWrapperRepository(corpus_, root_ + "/repo").ok());
    repository_ =
        std::make_unique<serve::WrapperRepository>(root_ + "/repo");
    ASSERT_TRUE(repository_->Load().ok());
  }

  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(root_, ignored);
  }

  std::string IndexSeed() const {
    return "file://" + root_ + "/origin/index.html";
  }

  /// One full crawl; returns the emitted NDJSON bytes.
  std::string Crawl(CrawlOptions options, std::vector<std::string> seeds,
                    CrawlStats* stats_out = nullptr) {
    ThreadPool pool(options.workers);
    CrawlPipeline pipeline(repository_.get(), &pool, options);
    std::string emitted;
    CrawlStats stats = pipeline.Run(seeds, [&emitted](std::string_view c) {
      emitted.append(c);
    });
    if (stats_out != nullptr) *stats_out = stats;
    return emitted;
  }

  std::string root_;
  sitegen::OriginCorpus corpus_;
  std::unique_ptr<serve::WrapperRepository> repository_;
};

TEST_F(CrawlTest, ByteIdenticalAcrossWorkerCounts) {
  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 1;
  CrawlStats serial_stats;
  std::string serial = Crawl(options, {IndexSeed()}, &serial_stats);
  // 16 pages + the index, two wrappers per page.
  EXPECT_EQ(serial_stats.pages_fetched, 17);
  EXPECT_EQ(serial_stats.records_emitted, 32);
  EXPECT_GT(serial_stats.values_extracted, 0);
  EXPECT_EQ(serial_stats.pages_failed, 0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.back(), '\n');

  for (int workers : {2, 4, 8}) {
    options.workers = workers;
    EXPECT_EQ(Crawl(options, {IndexSeed()}), serial)
        << workers << " workers diverged from serial";
  }
}

TEST_F(CrawlTest, EmissionFollowsFrontierDispatchOrder) {
  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 4;
  std::string emitted = Crawl(options, {IndexSeed()});
  // Pages are linked (and therefore dispatched) in sorted order, so the
  // first record is the first page of the first site and every line's
  // url is ≥ its predecessor's.
  EXPECT_NE(emitted.find("site_0000/page_0000.html"), std::string::npos);
  std::string previous;
  size_t pos = 0;
  while (pos < emitted.size()) {
    size_t eol = emitted.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = emitted.substr(pos, eol - pos);
    pos = eol + 1;
    size_t url = line.find("\"url\":\"");
    ASSERT_NE(url, std::string::npos);
    size_t begin = url + 7;
    size_t end = line.find('"', begin);
    ASSERT_NE(end, std::string::npos);
    std::string current = line.substr(begin, end - begin);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST_F(CrawlTest, HttpCrawlMatchesFileCrawl) {
  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 4;
  std::string file_output = Crawl(options, {IndexSeed()});

  serve::StaticFileHandler handler(root_ + "/origin", "index.html");
  serve::HttpServer server(
      serve::ServerOptions{},
      [&handler](const serve::HttpRequest& r) { return handler.Handle(r); });
  ASSERT_TRUE(server.Bind().ok());
  std::thread serving([&server] { EXPECT_TRUE(server.Run().ok()); });
  std::string base = "http://127.0.0.1:" + std::to_string(server.port());

  options.rate.requests_per_second = 1e6;
  options.rate.burst = 64;
  CrawlStats stats;
  std::string http_output =
      Crawl(options, {base + "/index.html"}, &stats);
  server.RequestShutdown();
  serving.join();

  EXPECT_EQ(stats.pages_failed, 0);
  // Same records modulo the url prefix.
  std::string normalized;
  size_t pos = 0;
  const std::string needle = base;
  const std::string replacement = "file://" + root_ + "/origin";
  while (true) {
    size_t hit = http_output.find(needle, pos);
    if (hit == std::string::npos) {
      normalized.append(http_output, pos, std::string::npos);
      break;
    }
    normalized.append(http_output, pos, hit - pos);
    normalized.append(replacement);
    pos = hit + needle.size();
  }
  EXPECT_EQ(normalized, file_output);
}

TEST_F(CrawlTest, RobotsDisallowSkipsSiteAndMissingRobotsAllowsAll) {
  // Re-write the tree with a robots.txt that bans site_0000.
  corpus_.options.robots_txt =
      "User-agent: *\nDisallow: /site_0000/\n";
  sitegen::OriginCorpus banned = sitegen::MakeOriginCorpus(corpus_.options);
  ASSERT_TRUE(sitegen::WriteOriginTree(banned, root_ + "/origin").ok());

  serve::StaticFileHandler handler(root_ + "/origin", "index.html");
  serve::HttpServer server(
      serve::ServerOptions{},
      [&handler](const serve::HttpRequest& r) { return handler.Handle(r); });
  ASSERT_TRUE(server.Bind().ok());
  std::thread serving([&server] { EXPECT_TRUE(server.Run().ok()); });
  std::string base = "http://127.0.0.1:" + std::to_string(server.port());

  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 2;
  options.rate.requests_per_second = 1e6;
  options.rate.burst = 64;
  CrawlStats stats;
  std::string output = Crawl(options, {base + "/index.html"}, &stats);
  server.RequestShutdown();
  serving.join();

  EXPECT_EQ(stats.robots_denied, 4);  // site_0000's four pages.
  EXPECT_EQ(stats.records_emitted, 24);  // Three sites × 4 pages × 2.
  EXPECT_EQ(output.find("site_0000"), std::string::npos);
  EXPECT_NE(output.find("site_0001"), std::string::npos);
}

/// Flaky-origin handler: answers 429 to the first request for every
/// path, then delegates to the static tree — each page needs exactly one
/// retry.
class FlakyOnceHandler {
 public:
  explicit FlakyOnceHandler(std::string root)
      : files_(std::move(root), "index.html") {}

  serve::HttpResponse Handle(const serve::HttpRequest& request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (seen_.insert(request.path).second) {
        serve::HttpResponse response;
        response.status = 429;
        response.body = "slow down";
        return response;
      }
    }
    return files_.Handle(request);
  }

 private:
  serve::StaticFileHandler files_;
  std::mutex mu_;
  std::set<std::string> seen_;
};

TEST_F(CrawlTest, RetryableFailuresBackOffAndRecover) {
  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 2;
  std::string file_output = Crawl(options, {IndexSeed()});

  FlakyOnceHandler handler(root_ + "/origin");
  serve::HttpServer server(
      serve::ServerOptions{},
      [&handler](const serve::HttpRequest& r) { return handler.Handle(r); });
  ASSERT_TRUE(server.Bind().ok());
  std::thread serving([&server] { EXPECT_TRUE(server.Run().ok()); });
  std::string base = "http://127.0.0.1:" + std::to_string(server.port());

  options.rate.requests_per_second = 1e6;
  options.rate.burst = 64;
  // Tiny penalties: the test asserts the backoff path runs, not that it
  // waits politely for seconds.
  options.rate.initial_backoff_seconds = 0.01;
  options.rate.max_backoff_seconds = 0.05;
  CrawlStats stats;
  std::string http_output =
      Crawl(options, {base + "/index.html"}, &stats);
  server.RequestShutdown();
  serving.join();

  EXPECT_EQ(stats.pages_failed, 0);
  EXPECT_GE(stats.retries, 17);  // Every fetch 429'd once.
  // Retries must not duplicate or reorder records: identical bytes.
  std::string normalized;
  size_t pos = 0;
  while (true) {
    size_t hit = http_output.find(base, pos);
    if (hit == std::string::npos) {
      normalized.append(http_output, pos, std::string::npos);
      break;
    }
    normalized.append(http_output, pos, hit - pos);
    normalized.append("file://" + root_ + "/origin");
    pos = hit + base.size();
  }
  EXPECT_EQ(normalized, file_output);
}

TEST_F(CrawlTest, PredicatePushdownDenyDepthMaxPagesDedup) {
  // Deny glob: site_0001 never fetched.
  CrawlOptions options;
  options.max_depth = 1;
  options.workers = 2;
  options.deny = {"*/site_0001/*"};
  CrawlStats stats;
  std::string output = Crawl(options, {IndexSeed()}, &stats);
  EXPECT_EQ(stats.urls_denied, 4);
  EXPECT_EQ(output.find("site_0001"), std::string::npos);
  EXPECT_NE(output.find("site_0002"), std::string::npos);

  // Depth 0: the seed only, no link following — and the index page has
  // no wrappers, so nothing is emitted.
  options = CrawlOptions();
  options.max_depth = 0;
  EXPECT_EQ(Crawl(options, {IndexSeed()}, &stats), "");
  EXPECT_EQ(stats.pages_fetched, 1);
  EXPECT_EQ(stats.links_discovered, 0);

  // max_pages: admission stops at the cap (seed + 5 pages).
  options = CrawlOptions();
  options.max_depth = 1;
  options.max_pages = 6;
  Crawl(options, {IndexSeed()}, &stats);
  EXPECT_EQ(stats.pages_fetched, 6);
  EXPECT_EQ(stats.urls_admitted, 6);

  // Dedup: the same seed twice crawls once.
  options = CrawlOptions();
  options.max_depth = 1;
  std::string once = Crawl(options, {IndexSeed()});
  std::string twice = Crawl(options, {IndexSeed(), IndexSeed()}, &stats);
  EXPECT_EQ(stats.urls_deduped, 1);
  EXPECT_EQ(twice, once);
}

// ---------------------------------------------------------------------
// Self-healing hand-off: mid-corpus template mutation.
// ---------------------------------------------------------------------

serve::DriftConfig FastDrift() {
  serve::DriftConfig config;
  config.warmup_pages = 8;
  config.evaluate_every = 4;
  config.empty_streak_limit = 4;
  config.hysteresis = 1;
  config.cooldown_pages = 8;
  config.retain_pages = 2;
  config.min_window_values = 4;
  return config;
}

TEST(CrawlSelfHealTest, MutationMidCrawlReinducesAndLedgersTheRepair) {
  std::string root = UniqueRoot("heal");
  std::string repo = root + "/repo";
  std::string origin = root + "/origin/example.com";
  ASSERT_TRUE(MakeDirs(origin).ok());
  ASSERT_TRUE(MakeDirs(repo + "/example.com").ok());
  // An LR delimiter wrapper a <b> → <strong> redesign breaks completely.
  ASSERT_TRUE(WriteFile(repo + "/example.com/name.wrapper",
                        "LR\t<b>\t</b>\n")
                  .ok());

  // 48 pages: the first 12 healthy (warmup + baseline), the rest
  // mutated. The same value pool appears throughout, so the detector's
  // dictionary (built while healthy) can label the retained mutated
  // pages for re-induction.
  sitegen::Mutation mutation;
  mutation.kind = sitegen::MutationKind::kDelimiterTextChange;
  const char* kValues[] = {"alpha cars", "bravo vans", "carol autos",
                           "delta trucks"};
  std::vector<std::string> seeds;
  for (int p = 0; p < 48; ++p) {
    std::string html = "<html><body><h1>listing page " +
                       std::to_string(p) + "</h1>";
    for (int v = 0; v < 4; ++v) {
      html += "<div><b>" + std::string(kValues[(p + v) % 4]) +
              "</b><i>details</i></div>";
    }
    html += "</body></html>";
    if (p >= 12) html = sitegen::MutatePage(html, mutation);
    char name[32];
    std::snprintf(name, sizeof(name), "page_%04d.html", p);
    ASSERT_TRUE(WriteFile(origin + "/" + name, html).ok());
    seeds.push_back("file://" + origin + "/" + name);
  }

  serve::WrapperRepository repository(repo);
  repository.SetDriftConfig(FastDrift());
  ASSERT_TRUE(repository.Load().ok());
  serve::ReinduceWorker reinducer(&repository, serve::ReinduceOptions{});
  reinducer.Start();

  CrawlOptions options;
  options.workers = 1;  // Healthy-then-mutated observation order matters.
  options.self_heal = true;
  ThreadPool pool(1);
  CrawlPipeline pipeline(&repository, &pool, options, &reinducer);
  std::string emitted;
  CrawlStats stats = pipeline.Run(
      seeds, [&emitted](std::string_view c) { emitted.append(c); });
  reinducer.WaitIdle();
  reinducer.Stop();

  EXPECT_EQ(stats.pages_fetched, 48);
  EXPECT_EQ(stats.records_emitted, 48);

  // The repair happened: ledger entry, repaired delimiters on disk.
  std::vector<serve::WrapperRepository::RepairRecord> ledger =
      repository.repair_ledger();
  ASSERT_FALSE(ledger.empty());
  EXPECT_EQ(ledger[0].site, "example.com");
  EXPECT_EQ(ledger[0].attribute, "name");
  EXPECT_GT(ledger[0].repair_score, 0.0);
  EXPECT_GT(ledger[0].published_version, 0u);
  Result<std::string> repaired = ReadFile(repo + "/example.com/name.wrapper");
  ASSERT_TRUE(repaired.ok());
  EXPECT_NE(repaired->find("strong"), std::string::npos);

  // The ledger is durable: a fresh repository over the same root reads
  // it back from .repairs.tsv.
  serve::WrapperRepository reloaded(repo);
  ASSERT_TRUE(reloaded.Load().ok());
  std::vector<serve::WrapperRepository::RepairRecord> persisted =
      reloaded.repair_ledger();
  ASSERT_EQ(persisted.size(), ledger.size());
  EXPECT_EQ(persisted[0].site, "example.com");
  EXPECT_DOUBLE_EQ(persisted[0].repair_score, ledger[0].repair_score);

  // And /driftz surfaces it.
  serve::ExtractService service(&repository, nullptr);
  serve::HttpRequest request;
  request.method = "GET";
  request.path = "/driftz";
  serve::HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"repairs\":[{"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"repair_score\":"), std::string::npos);

  std::error_code ignored;
  std::filesystem::remove_all(root, ignored);
}

}  // namespace
}  // namespace ntw::crawl
