// Unit tests for the per-domain token bucket (src/crawl/rate_limiter.cc).
// The load-bearing assertion is the politeness invariant: grants to one
// domain over any interval T never exceed burst + rate·T — verified both
// single-threaded on a scripted clock and under genuinely concurrent
// workers hammering TryAcquire. Plus: backoff escalation and clearance,
// Crawl-delay folding, and domain independence.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "crawl/rate_limiter.h"
#include "gtest/gtest.h"

namespace ntw::crawl {
namespace {

RateLimiterOptions TestOptions(double rate, double burst) {
  RateLimiterOptions options;
  options.requests_per_second = rate;
  options.burst = burst;
  return options;
}

TEST(RateLimiterTest, FreshDomainGrantsBurstThenPaces) {
  DomainRateLimiter limiter(TestOptions(2.0, 3.0));
  // A fresh domain starts with a full bucket: `burst` immediate grants.
  EXPECT_EQ(limiter.TryAcquire("d:80", 100.0), 0.0);
  EXPECT_EQ(limiter.TryAcquire("d:80", 100.0), 0.0);
  EXPECT_EQ(limiter.TryAcquire("d:80", 100.0), 0.0);
  // Bucket empty: the wait quote is one token's refill time (0.5s @ 2/s).
  double wait = limiter.TryAcquire("d:80", 100.0);
  EXPECT_NEAR(wait, 0.5, 1e-9);
  // After the quoted wait the token is there.
  EXPECT_EQ(limiter.TryAcquire("d:80", 100.0 + wait), 0.0);
}

TEST(RateLimiterTest, GrantsNeverExceedBudgetOnScriptedClock) {
  const double kRate = 5.0;
  const double kBurst = 2.0;
  DomainRateLimiter limiter(TestOptions(kRate, kBurst));
  // Sweep a scripted clock in uneven steps, greedily acquiring at every
  // instant; count grants over the whole window.
  int granted = 0;
  double now = 0.0;
  const double kSteps[] = {0.0,  0.01, 0.02, 0.1, 0.13, 0.5,
                           0.55, 1.0,  1.7,  2.0, 2.9,  4.0};
  for (double step : kSteps) {
    now = step;
    while (limiter.TryAcquire("d:80", now) == 0.0) ++granted;
  }
  // Budget over [0, 4.0] with a full starting bucket.
  EXPECT_LE(granted, static_cast<int>(kBurst + kRate * 4.0));
  // And not vacuously stingy. (Exactly rate·T is unreachable here: the
  // bucket clamps at burst, so refill accrued across a gap longer than
  // burst/rate is forfeited — greedy sampling at these instants nets 13.)
  EXPECT_GE(granted, 10);
}

TEST(RateLimiterTest, ConcurrentWorkersCannotBeatTheBucket) {
  const double kRate = 50.0;
  const double kBurst = 4.0;
  const double kWindow = 0.8;  // Real seconds of hammering.
  DomainRateLimiter limiter(TestOptions(kRate, kBurst));
  std::atomic<int64_t> granted{0};
  std::atomic<bool> stop{false};

  auto now_seconds = [start = std::chrono::steady_clock::now()] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  std::vector<std::thread> workers;
  for (int i = 0; i < 8; ++i) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (limiter.TryAcquire("hot:80", now_seconds()) == 0.0) {
          granted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (now_seconds() < kWindow) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& worker : workers) worker.join();
  double elapsed = now_seconds();  // ≥ kWindow; grants kept accruing
                                   // until every worker observed stop.
  // Zero rate-limit violations: the hard politeness cap held under
  // 8 threads racing the bucket.
  EXPECT_LE(granted.load(), static_cast<int64_t>(kBurst + kRate * elapsed));
  EXPECT_GT(granted.load(), 0);
}

TEST(RateLimiterTest, BackoffEscalatesExponentiallyAndSuccessClears) {
  RateLimiterOptions options = TestOptions(100.0, 1.0);
  options.initial_backoff_seconds = 0.5;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 4.0;
  DomainRateLimiter limiter(options);

  EXPECT_EQ(limiter.TryAcquire("d:80", 0.0), 0.0);
  limiter.ReportRetryableFailure("d:80", 0.0);
  EXPECT_NEAR(limiter.BackoffRemaining("d:80", 0.0), 0.5, 1e-9);
  // Blocked while the penalty runs, even with tokens available.
  EXPECT_GT(limiter.TryAcquire("d:80", 0.1), 0.0);
  // Second failure doubles the penalty: 1.0s from t=0.5.
  limiter.ReportRetryableFailure("d:80", 0.5);
  EXPECT_NEAR(limiter.BackoffRemaining("d:80", 0.5), 1.0, 1e-9);
  // Escalate to the ceiling.
  limiter.ReportRetryableFailure("d:80", 2.0);  // 2.0s penalty
  limiter.ReportRetryableFailure("d:80", 2.0);  // clamped at 4.0s
  limiter.ReportRetryableFailure("d:80", 2.0);
  EXPECT_NEAR(limiter.BackoffRemaining("d:80", 2.0), 4.0, 1e-9);
  // A success collapses the penalty; the next failure starts over.
  limiter.ReportSuccess("d:80");
  EXPECT_EQ(limiter.BackoffRemaining("d:80", 2.0), 0.0);
  EXPECT_EQ(limiter.TryAcquire("d:80", 10.0), 0.0);
  limiter.ReportRetryableFailure("d:80", 10.0);
  EXPECT_NEAR(limiter.BackoffRemaining("d:80", 10.0), 0.5, 1e-9);
}

TEST(RateLimiterTest, CrawlDelayLowersEffectiveRate) {
  // Configured 10/s, but Crawl-delay: 2 → one request per 2 seconds.
  DomainRateLimiter limiter(TestOptions(10.0, 1.0));
  limiter.SetCrawlDelay("slow:80", 2.0);
  EXPECT_EQ(limiter.TryAcquire("slow:80", 0.0), 0.0);
  double wait = limiter.TryAcquire("slow:80", 0.0);
  EXPECT_NEAR(wait, 2.0, 1e-9);
  EXPECT_GT(limiter.TryAcquire("slow:80", 1.0), 0.0);
  EXPECT_EQ(limiter.TryAcquire("slow:80", 2.0), 0.0);
  // A delay looser than the configured rate is a no-op for pacing
  // (min(configured, 1/delay) keeps the configured rate).
  limiter.SetCrawlDelay("fast:80", 0.01);
  EXPECT_EQ(limiter.TryAcquire("fast:80", 0.0), 0.0);
  EXPECT_NEAR(limiter.TryAcquire("fast:80", 0.0), 0.1, 1e-9);
}

TEST(RateLimiterTest, DomainsAreIsolated) {
  DomainRateLimiter limiter(TestOptions(1.0, 1.0));
  EXPECT_EQ(limiter.TryAcquire("a:80", 0.0), 0.0);
  limiter.ReportRetryableFailure("a:80", 0.0);
  // Domain b is unaffected by a's empty bucket and backoff.
  EXPECT_EQ(limiter.TryAcquire("b:80", 0.0), 0.0);
  EXPECT_EQ(limiter.BackoffRemaining("b:80", 0.0), 0.0);
}

}  // namespace
}  // namespace ntw::crawl
