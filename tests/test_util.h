#ifndef NTW_TESTS_TEST_UTIL_H_
#define NTW_TESTS_TEST_UTIL_H_

#include <array>
#include <string>
#include <vector>

#include "core/label.h"
#include "html/parser.h"

namespace ntw::testing {

/// Parses HTML into a finalized document, aborting the test on failure.
html::Document MustParse(const std::string& source);

/// Builds the 5×4 table of Example 1: five business rows, four columns
/// (name, address, zip, phone). Cell (i, j) holds the text "r<i>c<j>"
/// except the first column, which holds "n<i>".
core::PageSet ExampleTablePage();

/// Node reference for the text node in row `row`, column `col` (1-based)
/// of ExampleTablePage.
core::NodeRef ExampleCell(const core::PageSet& pages, int row, int col);

/// A small two-page dealer-locator page set in Figure-1 style: each record
/// is <tr><td><u>NAME</u><br>ADDR<br>CITY</td><td><a>Map</a></td></tr>.
core::PageSet FigureOnePages();

/// Text of a resolved node, empty if unresolvable.
std::string TextOf(const core::PageSet& pages, const core::NodeRef& ref);

/// Refs of all text nodes whose text equals `text`.
std::vector<core::NodeRef> FindText(const core::PageSet& pages,
                                    const std::string& text);

}  // namespace ntw::testing

#endif  // NTW_TESTS_TEST_UTIL_H_
