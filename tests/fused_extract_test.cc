// Fused multi-attribute extraction tests (DESIGN.md §15). The contract
// under test is byte-identity: the shared Aho–Corasick pass must yield
// exactly the occurrence sets the per-attribute BMH scans enumerate, and
// everything built on it — FusedSiteExtractor (in-memory and pack-blob
// variants), the repository's FindFused on both backends, and the
// service's `attribute=*` endpoint with the fused scan on or off — must
// return the same bytes as the per-attribute path.

#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/compiled_wrapper.h"
#include "core/fused_matcher.h"
#include "core/wrapper_pack.h"
#include "gtest/gtest.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"
#include "sitegen/origin.h"

namespace ntw {
namespace {

constexpr char kSuffix[] = ".wrapper";

std::vector<size_t> BmhOccurrences(const core::StringSearcher& searcher,
                                   std::string_view haystack) {
  std::vector<size_t> begins;
  size_t from = 0;
  while (true) {
    size_t pos = searcher.Find(haystack, from);
    if (pos == std::string_view::npos) break;
    begins.push_back(pos);
    from = pos + 1;  // Overlapping occurrences count.
  }
  return begins;
}

TEST(FusedAutomatonTest, ScanMatchesBmhOnRandomInputs) {
  std::mt19937_64 rng(991);
  const char alphabet[] = "abc<>/";  // Small: forces overlaps + shared
                                     // prefixes through the trie.
  for (int round = 0; round < 40; ++round) {
    core::AcBuilder builder;
    std::vector<std::string> patterns;
    std::vector<uint32_t> ids;
    size_t pattern_count = 1 + rng() % 12;
    for (size_t p = 0; p < pattern_count; ++p) {
      std::string pattern;
      size_t len = 1 + rng() % 6;
      for (size_t i = 0; i < len; ++i) {
        pattern.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
      }
      patterns.push_back(pattern);
      ids.push_back(builder.AddPattern(pattern));
    }
    // Duplicates resolve to the same id; empties to kNoPattern.
    EXPECT_EQ(builder.AddPattern(patterns[0]), ids[0]);
    EXPECT_EQ(builder.AddPattern(""), core::kNoPattern);

    std::string blob = builder.Build();
    ASSERT_TRUE(core::FusedAutomaton::Validate(blob));
    core::FusedAutomaton automaton(blob);

    std::string haystack;
    size_t hay_len = rng() % 2000;
    for (size_t i = 0; i < hay_len; ++i) {
      haystack.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }

    std::vector<std::vector<size_t>> occurrences;
    automaton.Scan(haystack, &occurrences);
    ASSERT_EQ(occurrences.size(), automaton.pattern_count());
    for (size_t p = 0; p < patterns.size(); ++p) {
      core::StringSearcher searcher(patterns[p]);
      EXPECT_EQ(occurrences[ids[p]], BmhOccurrences(searcher, haystack))
          << "round " << round << " pattern '" << patterns[p] << "'";
    }
  }
}

// Plans covering the delimiter edge cases: LR with and without a left
// delimiter, HLRT with head+tail, HLRT whose tail never occurs.
std::vector<std::pair<std::string, std::shared_ptr<const core::CompiledWrapper>>>
EdgeCasePlans() {
  return {
      {"bold", core::CompiledWrapper::MakeLr("<b>", "</b>")},
      {"leftless", core::CompiledWrapper::MakeLr("", "</i>")},
      {"list", core::CompiledWrapper::MakeHlrt("<ul>", "</ul>", "<li>",
                                               "</li>")},
      {"notail", core::CompiledWrapper::MakeHlrt("<ol>", "<!--never-->",
                                                 "<li>", "</li>")},
  };
}

const char kEdgeCasePage[] =
    "<html><body><i>first</i><b>one</b> mid <b>two</b>"
    "<ul><li>a1</li><li>a2</li></ul>"
    "<ol><li>b1</li></ol>"
    "<b>three</b><i>last</i></body></html>";

void ExpectFusedMatchesPerAttribute(
    const core::FusedSiteExtractor& fused,
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const core::CompiledWrapper>>>&
        plans,
    std::string_view page) {
  core::StreamPageBuffer fused_buffer;
  core::FusedScratch scratch;
  fused.ExtractAllStreaming(page, fused_buffer, scratch);
  ASSERT_EQ(scratch.values.size(), fused.attributes().size());

  for (const auto& [name, plan] : plans) {
    size_t index = fused.FindAttribute(name);
    ASSERT_NE(index, std::string_view::npos) << name;
    core::StreamPageBuffer buffer;
    std::vector<std::string_view> expected;
    plan->ExtractStreaming(page, buffer, &expected);
    const auto& actual = scratch.values[index];
    ASSERT_EQ(actual.size(), expected.size()) << name;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]) << name << "[" << i << "]";
    }
  }
}

TEST(FusedSiteExtractorTest, MatchesPerAttributeStreaming) {
  auto plans = EdgeCasePlans();
  auto fused = core::FusedSiteExtractor::Build(plans);
  ASSERT_NE(fused, nullptr);
  ASSERT_EQ(fused->attributes().size(), 4u);
  ExpectFusedMatchesPerAttribute(*fused, plans, kEdgeCasePage);
  // Degenerate inputs go through the same contract.
  ExpectFusedMatchesPerAttribute(*fused, plans, "");
  ExpectFusedMatchesPerAttribute(*fused, plans, "no delimiters at all");
  ExpectFusedMatchesPerAttribute(*fused, plans, "<b>unclosed");
}

TEST(FusedSiteExtractorTest, FromBlobMatchesBuild) {
  auto plans = EdgeCasePlans();
  auto built = core::FusedSiteExtractor::Build(plans);
  ASSERT_NE(built, nullptr);

  std::vector<core::FusedSiteExtractor::Attribute> attributes(
      built->attributes());
  auto from_blob =
      core::FusedSiteExtractor::FromBlob(built->blob(), attributes);
  ASSERT_NE(from_blob, nullptr);
  EXPECT_EQ(from_blob->blob(), built->blob());
  ExpectFusedMatchesPerAttribute(*from_blob, plans, kEdgeCasePage);

  // Out-of-range pattern bindings and invalid blobs are rejected.
  auto bad_binding = attributes;
  bad_binding[0].left_pattern = 1000;
  EXPECT_EQ(core::FusedSiteExtractor::FromBlob(built->blob(), bad_binding),
            nullptr);
  EXPECT_EQ(core::FusedSiteExtractor::FromBlob("garbage", attributes),
            nullptr);
}

class FusedRepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = (std::filesystem::temp_directory_path() /
             ("ntw_fused_test_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);
    root_ = work_ + "/repo";
    sitegen::SyntheticRepositoryOptions options;
    options.sites = 9;  // Covers every plan-kind rotation.
    options.attrs = 3;
    options.seed = 41;
    ASSERT_TRUE(
        sitegen::WriteSyntheticWrapperRepository(options, root_).ok());

    pack_ = work_ + "/wrappers.pack";
    core::WrapperPackBuilder builder;
    auto site_dirs = ListSubdirectories(root_);
    ASSERT_TRUE(site_dirs.ok());
    for (const std::string& site_dir : *site_dirs) {
      std::string site = std::filesystem::path(site_dir).filename().string();
      auto files = ListFiles(site_dir, kSuffix);
      ASSERT_TRUE(files.ok());
      for (const std::string& file : *files) {
        std::string attr = std::filesystem::path(file).filename().string();
        attr.resize(attr.size() - (sizeof(kSuffix) - 1));
        auto record = ReadFile(file);
        ASSERT_TRUE(record.ok());
        ASSERT_TRUE(builder.Add(site, attr, *record).ok());
      }
    }
    ASSERT_TRUE(builder.WriteFile(pack_).ok());
  }

  void TearDown() override { std::filesystem::remove_all(work_); }

  // A page that hits every dom_free delimiter set of the site twice.
  static std::string PageFor(const core::FusedSiteExtractor& fused) {
    std::string page = "<html><body>";
    for (const auto& attribute : fused.attributes()) {
      const auto& plan = *attribute.plan;
      page += plan.head();
      for (int v = 0; v < 2; ++v) {
        page += plan.left() + attribute.name + StrFormat("_%d", v) +
                plan.right();
      }
      page += plan.tail();
    }
    page += "</body></html>";
    return page;
  }

  std::string work_;
  std::string root_;
  std::string pack_;
};

TEST_F(FusedRepositoryTest, PackFusedMatchesDirectoryFused) {
  serve::WrapperRepository dir_repo(root_);
  ASSERT_TRUE(dir_repo.Load().ok());
  serve::WrapperRepository pack_repo(
      serve::WrapperRepository::Options{std::string(), pack_});
  ASSERT_TRUE(pack_repo.Load().ok());

  auto dir_pin = dir_repo.Pin();
  auto pack_pin = pack_repo.Pin();
  ASSERT_NE(pack_pin->pack, nullptr);

  int fused_sites = 0;
  for (int s = 0; s < 9; ++s) {
    std::string site = StrFormat("site_%06d", s);
    auto from_dir = dir_pin->FindFused(site);
    auto from_pack = pack_pin->FindFused(site);
    ASSERT_EQ(from_dir == nullptr, from_pack == nullptr) << site;
    if (from_dir == nullptr) continue;
    ++fused_sites;
    // Same attributes, same serialized automaton (the pack stores the
    // bytes the in-memory builder produces).
    ASSERT_EQ(from_dir->attributes().size(), from_pack->attributes().size());
    EXPECT_EQ(from_dir->blob(), from_pack->blob()) << site;

    std::string page = PageFor(*from_dir);
    core::StreamPageBuffer dir_buffer, pack_buffer;
    core::FusedScratch dir_scratch, pack_scratch;
    from_dir->ExtractAllStreaming(page, dir_buffer, dir_scratch);
    from_pack->ExtractAllStreaming(page, pack_buffer, pack_scratch);
    for (size_t i = 0; i < from_dir->attributes().size(); ++i) {
      EXPECT_EQ(from_dir->attributes()[i].name,
                from_pack->attributes()[i].name);
      const auto& a = dir_scratch.values[i];
      const auto& b = pack_scratch.values[i];
      ASSERT_EQ(a.size(), b.size()) << site;
      EXPECT_GE(a.size(), 2u) << site;  // The page must actually extract.
      for (size_t v = 0; v < a.size(); ++v) EXPECT_EQ(a[v], b[v]);
    }
  }
  EXPECT_GT(fused_sites, 0);
}

TEST_F(FusedRepositoryTest, ServiceMultiAttributeByteIdentity) {
  serve::WrapperRepository dir_repo(root_);
  ASSERT_TRUE(dir_repo.Load().ok());
  serve::WrapperRepository pack_repo(
      serve::WrapperRepository::Options{std::string(), pack_});
  ASSERT_TRUE(pack_repo.Load().ok());
  ThreadPool pool(2);

  serve::ExtractService::Options fused_off;
  fused_off.fused = false;
  serve::ExtractService dir_fused(&dir_repo, &pool);
  serve::ExtractService dir_plain(&dir_repo, &pool, fused_off);
  serve::ExtractService pack_fused(&pack_repo, &pool);
  serve::ExtractService pack_plain(&pack_repo, &pool, fused_off);

  for (int s = 0; s < 9; ++s) {
    std::string site = StrFormat("site_%06d", s);
    auto fused = dir_repo.Pin()->FindFused(site);
    std::string page =
        fused != nullptr
            ? PageFor(*fused)
            : "<html><body><div class=\"c1\"><li>x</li></div></body></html>";
    serve::HttpRequest request;
    request.method = "POST";
    request.target = "/extract?site=" + site + "&attribute=*";
    request.path = "/extract";  // The server's parser fills these in.
    request.query = {{"site", site}, {"attribute", "*"}};
    request.body = page;

    serve::HttpResponse baseline = dir_plain.Handle(request);
    ASSERT_EQ(baseline.status, 200) << site << ": " << baseline.body;
    // Fused on/off and directory/pack backends: same bytes.
    for (auto* service : {&dir_fused, &pack_fused, &pack_plain}) {
      serve::HttpResponse response = service->Handle(request);
      EXPECT_EQ(response.status, baseline.status) << site;
      EXPECT_EQ(response.body, baseline.body) << site;
    }
  }

  // Unknown sites 404 in multi-attribute mode.
  serve::HttpRequest missing;
  missing.method = "POST";
  missing.path = "/extract";
  missing.query = {{"site", "no_such_site"}, {"attribute", "*"}};
  missing.body = "<html></html>";
  EXPECT_EQ(dir_fused.Handle(missing).status, 404);
}

}  // namespace
}  // namespace ntw
