#include "core/publication_model.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

NodeSet Names(const PageSet& pages) {
  NodeSet set;
  for (const char* name :
       {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER",
        "KIDDIE WORLD CENTER", "LULLABY LANE"}) {
    for (const NodeRef& ref : FindText(pages, name)) set.Insert(ref);
  }
  return set;
}

TEST(SegmentationTest, SegmentsBetweenConsecutiveBoundaries) {
  PageSet pages = FigureOnePages();
  NodeSet names = Names(pages);
  std::vector<Segment> segments = SegmentRecords(pages, names);
  // Page 1 has 3 names → 2 segments; page 2 has 2 names → 1 segment.
  ASSERT_EQ(segments.size(), 3u);
  // Identical record structure ⇒ identical segments.
  EXPECT_EQ(segments[0], segments[1]);
  EXPECT_EQ(segments[0], segments[2]);
}

TEST(SegmentationTest, SegmentStartsAtBoundaryToken) {
  PageSet pages = FigureOnePages();
  std::vector<Segment> segments = SegmentRecords(pages, Names(pages));
  ASSERT_FALSE(segments.empty());
  // The boundary text node itself is the first token (a typed token < 0
  // for set 0... single-type: token -1).
  EXPECT_EQ(segments[0].front(), -1);
}

TEST(SegmentationTest, SegmentContainsRecordTextNodes) {
  PageSet pages = FigureOnePages();
  std::vector<Segment> segments = SegmentRecords(pages, Names(pages));
  int text_tokens = 0;
  for (int token : segments[0]) {
    if (token <= 0) ++text_tokens;
  }
  // name + street + city + "Map" = 4 text nodes per record.
  EXPECT_EQ(text_tokens, 4);
}

TEST(SegmentationTest, FewerThanTwoBoundariesNoSegments) {
  PageSet pages = FigureOnePages();
  NodeSet one(FindText(pages, "PORTER FURNITURE"));
  EXPECT_TRUE(SegmentRecords(pages, one).empty());
}

TEST(SegmentationTest, ShiftedBoundariesPreserveSimilarity) {
  // Sec. 6: using mid-record elements as boundaries yields cyclically
  // shifted records whose structural similarity is preserved.
  PageSet pages = FigureOnePages();
  NodeSet streets;
  for (const char* street :
       {"201 HWY. 30 WEST", "123 MAIN ST.", "514 4TH STREET",
        "1899 W. SAN CARLOS ST.", "532 SAN MATEO AVE."}) {
    for (const NodeRef& ref : FindText(pages, street)) streets.Insert(ref);
  }
  std::vector<Segment> shifted = SegmentRecords(pages, streets);
  ASSERT_EQ(shifted.size(), 3u);
  EXPECT_EQ(shifted[0], shifted[1]);
  ListFeatures names_features =
      ComputeListFeatures(SegmentRecords(pages, Names(pages)));
  ListFeatures shifted_features = ComputeListFeatures(shifted);
  EXPECT_EQ(shifted_features.alignment, names_features.alignment);
  EXPECT_EQ(shifted_features.schema_size, names_features.schema_size);
}

TEST(SegmentationTest, MultiTypeTokensDistinguished) {
  PageSet pages = FigureOnePages();
  NodeSet names = Names(pages);
  NodeSet streets;
  for (const NodeRef& ref : FindText(pages, "201 HWY. 30 WEST")) {
    streets.Insert(ref);
  }
  std::vector<Segment> segments =
      SegmentRecords(pages, {&names, &streets});
  ASSERT_FALSE(segments.empty());
  // Type-0 boundary token -1 opens each segment; the street node in the
  // first page-1 segment is typed -2.
  EXPECT_EQ(segments[0].front(), -1);
  bool saw_typed_street = false;
  for (int token : segments[0]) {
    if (token == -2) saw_typed_street = true;
  }
  EXPECT_TRUE(saw_typed_street);
}

TEST(ListFeaturesTest, PerfectListHasZeroAlignment) {
  PageSet pages = FigureOnePages();
  ListFeatures features =
      ComputeListFeatures(SegmentRecords(pages, Names(pages)));
  EXPECT_EQ(features.alignment, 0.0);
  EXPECT_EQ(features.schema_size, 4.0);
  EXPECT_EQ(features.segment_count, 3);
}

TEST(ListFeaturesTest, AllTextWrapperHasSchemaOne) {
  // X = every text node ⇒ single-step segments ⇒ schema 1 (Sec. 3's X3).
  PageSet pages = FigureOnePages();
  ListFeatures features =
      ComputeListFeatures(SegmentRecords(pages, pages.AllTextNodes()));
  EXPECT_LE(features.schema_size, 2.0);
  EXPECT_GE(features.segment_count, 15);
}

TEST(ListFeaturesTest, BadlyAlignedListScoresWorse) {
  // X2-style list (names + streets as one type): alternating gap pattern.
  PageSet pages = FigureOnePages();
  NodeSet mixed = Names(pages);
  for (const char* street : {"201 HWY. 30 WEST", "123 MAIN ST."}) {
    for (const NodeRef& ref : FindText(pages, street)) mixed.Insert(ref);
  }
  ListFeatures bad = ComputeListFeatures(SegmentRecords(pages, mixed));
  ListFeatures good =
      ComputeListFeatures(SegmentRecords(pages, Names(pages)));
  EXPECT_GT(bad.alignment, good.alignment);
}

TEST(ListFeaturesTest, EmptySegments) {
  ListFeatures features = ComputeListFeatures({});
  EXPECT_EQ(features.schema_size, 0.0);
  EXPECT_EQ(features.alignment, 0.0);
  EXPECT_EQ(features.segment_count, 0);
}

TEST(ListFeaturesTest, SingleSegmentCountsItsTextNodes) {
  std::vector<Segment> segments = {{-1, 3, 0, 4, 0}};
  ListFeatures features = ComputeListFeatures(segments);
  EXPECT_EQ(features.schema_size, 3.0);  // Tokens <= 0: -1, 0, 0.
  EXPECT_EQ(features.segment_count, 1);
}

TEST(ListFeaturesTest, AlignmentCapped) {
  std::vector<Segment> segments;
  segments.push_back(Segment(300, 1));
  segments.push_back(Segment(300, 2));
  ListFeatures features = ComputeListFeatures(segments, /*alignment_cap=*/64);
  EXPECT_EQ(features.alignment, 64.0);
}

TEST(PublicationModelTest, FitRequiresData) {
  EXPECT_FALSE(PublicationModel::Fit({}).ok());
}

TEST(PublicationModelTest, PrefersListsLikeTraining) {
  std::vector<ListFeatures> training;
  for (double schema : {4.0, 3.0, 4.0, 5.0, 4.0}) {
    ListFeatures f;
    f.schema_size = schema;
    f.alignment = 2.0;
    training.push_back(f);
  }
  Result<PublicationModel> model = PublicationModel::Fit(training);
  ASSERT_TRUE(model.ok());

  ListFeatures like_training;
  like_training.schema_size = 4.0;
  like_training.alignment = 2.0;
  ListFeatures degenerate;  // Whole-table / singleton wrappers.
  degenerate.schema_size = 0.0;
  degenerate.alignment = 0.0;
  ListFeatures misaligned;
  misaligned.schema_size = 4.0;
  misaligned.alignment = 40.0;
  EXPECT_GT(model->LogProb(like_training), model->LogProb(degenerate));
  EXPECT_GT(model->LogProb(like_training), model->LogProb(misaligned));
}

TEST(PublicationModelTest, EndToEndLogProbOnPages) {
  PageSet pages = FigureOnePages();
  std::vector<ListFeatures> training = {
      ComputeListFeatures(SegmentRecords(pages, Names(pages)))};
  Result<PublicationModel> model = PublicationModel::Fit(training);
  ASSERT_TRUE(model.ok());
  double good = model->LogProb(pages, Names(pages));
  double bad = model->LogProb(pages, pages.AllTextNodes());
  EXPECT_GT(good, bad);
}

}  // namespace
}  // namespace ntw::core
