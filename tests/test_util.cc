#include "test_util.h"

#include <cassert>

#include "gtest/gtest.h"

namespace ntw::testing {

html::Document MustParse(const std::string& source) {
  Result<html::Document> doc = html::Parse(source);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  assert(doc.ok());
  return std::move(doc).value();
}

core::PageSet ExampleTablePage() {
  std::string html = "<html><body><table>";
  for (int row = 1; row <= 5; ++row) {
    html += "<tr>";
    html += "<td>n" + std::to_string(row) + "</td>";
    for (int col = 2; col <= 4; ++col) {
      html +=
          "<td>r" + std::to_string(row) + "c" + std::to_string(col) + "</td>";
    }
    html += "</tr>";
  }
  html += "</table></body></html>";
  core::PageSet pages;
  pages.AddPage(MustParse(html));
  return pages;
}

core::NodeRef ExampleCell(const core::PageSet& pages, int row, int col) {
  std::string want = col == 1
                         ? "n" + std::to_string(row)
                         : "r" + std::to_string(row) + "c" +
                               std::to_string(col);
  std::vector<core::NodeRef> found = FindText(pages, want);
  EXPECT_EQ(found.size(), 1u) << "cell " << want;
  assert(found.size() == 1);
  return found[0];
}

core::PageSet FigureOnePages() {
  auto make_page = [](const std::vector<std::array<std::string, 3>>& rows) {
    std::string html = "<html><body><div class='dealerlinks'><table>";
    for (const auto& row : rows) {
      html += "<tr><td><u>" + row[0] + "</u><br>" + row[1] + "<br>" + row[2] +
              "</td><td><a href='#map'>Map</a></td></tr>";
    }
    html += "</table></div></body></html>";
    return html;
  };
  core::PageSet pages;
  pages.AddPage(MustParse(make_page(
      {{"PORTER FURNITURE", "201 HWY. 30 WEST", "NEW ALBANY, MS 38652"},
       {"WOODLAND FURNITURE", "123 MAIN ST.", "WOODLAND, MS 39776"},
       {"HELLER HOME CENTER", "514 4TH STREET", "SAN RAFAEL, CA 94901"}})));
  pages.AddPage(MustParse(make_page(
      {{"KIDDIE WORLD CENTER", "1899 W. SAN CARLOS ST.", "SAN JOSE, CA 95128"},
       {"LULLABY LANE", "532 SAN MATEO AVE.", "SAN BRUNO, CA 94066"}})));
  return pages;
}

std::string TextOf(const core::PageSet& pages, const core::NodeRef& ref) {
  const html::Node* node = pages.Resolve(ref);
  return node == nullptr ? "" : node->text();
}

std::vector<core::NodeRef> FindText(const core::PageSet& pages,
                                    const std::string& text) {
  std::vector<core::NodeRef> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (const html::Node* node : pages.page(p).text_nodes()) {
      if (node->text() == text) {
        out.push_back(
            core::NodeRef{static_cast<int>(p), node->preorder_index()});
      }
    }
  }
  return out;
}

}  // namespace ntw::testing
