// The arena DOM's contract is byte-for-byte agreement with the heap DOM:
// same nodes in the same pre-order, same numbering, same attribute order,
// same decoded/collapsed text, and a flattened stream identical to
// text::CharView. These tests pin that contract on handwritten edge cases
// and on full generated corpora (every page of a DEALERS subset), plus
// the Clear()-and-reuse steady state the serving layer depends on.

#include "html/arena_dom.h"

#include <string>
#include <vector>

#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "html/dom.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "text/char_view.h"

namespace ntw::html {
namespace {

/// Asserts the arena document is node-for-node identical to the heap one.
void ExpectSameTree(const Document& heap, const ArenaDocument& arena) {
  ASSERT_EQ(heap.node_count(), arena.node_count());
  for (size_t i = 0; i < heap.node_count(); ++i) {
    int32_t index = static_cast<int32_t>(i);
    const Node* h = heap.node(static_cast<int>(i));
    const ArenaNode& a = arena.node(index);
    ASSERT_EQ(h->kind(), a.kind) << "node " << i;
    EXPECT_EQ(h->preorder_index(), static_cast<int>(i));
    EXPECT_EQ(h->sibling_index(), a.sibling_index) << "node " << i;
    EXPECT_EQ(h->same_tag_child_number(), a.same_tag_child_number)
        << "node " << i;
    if (h->parent() == nullptr) {
      EXPECT_EQ(a.parent, -1);
    } else {
      EXPECT_EQ(h->parent()->preorder_index(), a.parent) << "node " << i;
    }
    if (h->is_element()) {
      EXPECT_EQ(h->tag(), a.tag) << "node " << i;
      const auto& heap_attrs = h->attrs();
      ASSERT_EQ(static_cast<int32_t>(heap_attrs.size()),
                a.attrs_end - a.attrs_begin)
          << "node " << i;
      for (size_t k = 0; k < heap_attrs.size(); ++k) {
        const ArenaAttr& attr =
            arena.attrs()[static_cast<size_t>(a.attrs_begin) + k];
        EXPECT_EQ(heap_attrs[k].first, attr.name) << "node " << i;
        EXPECT_EQ(heap_attrs[k].second, attr.value) << "node " << i;
        EXPECT_EQ(NameTable::Global().Find(heap_attrs[k].first),
                  attr.name_id);
      }
    } else {
      EXPECT_EQ(h->text(), a.text) << "node " << i;
    }
  }
}

/// Asserts the arena stream/spans equal text::CharView over the heap DOM.
void ExpectSameStream(const Document& heap, ArenaDocument& arena) {
  text::CharView view(heap);
  EXPECT_EQ(view.stream(), arena.stream());
  ASSERT_EQ(view.spans().size(), arena.spans().size());
  for (size_t i = 0; i < view.spans().size(); ++i) {
    EXPECT_EQ(view.spans()[i].node->preorder_index(), arena.spans()[i].node);
    EXPECT_EQ(view.spans()[i].begin, arena.spans()[i].begin);
    EXPECT_EQ(view.spans()[i].end, arena.spans()[i].end);
  }
}

void ExpectEquivalent(const std::string& input) {
  Result<Document> heap = Parse(input);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ArenaDocument arena;
  ArenaParse(input, &arena);
  ExpectSameTree(*heap, arena);
  ExpectSameStream(*heap, arena);
}

TEST(ArenaDomTest, SimpleListPage) {
  ExpectEquivalent(
      "<html><body><ul><li>One<li>Two<li>Three</ul></body></html>");
}

TEST(ArenaDomTest, VoidElementsAndAttributes) {
  ExpectEquivalent(
      "<div class=\"a\" id=x><img src=\"p.png\"><br><input value='v'>"
      "text</div>");
}

TEST(ArenaDomTest, DuplicateAttributesKeepFirstPositionLastValue) {
  ExpectEquivalent("<p class=\"a\" id=\"1\" class=\"b\">x</p>");
}

TEST(ArenaDomTest, EntitiesAndWhitespaceCollapse) {
  ExpectEquivalent(
      "<td>  AT&amp;T   &#x20AC; 5 </td><td>\n\t</td><td>&bogus;</td>");
}

TEST(ArenaDomTest, ImpliedClosesAndTables) {
  ExpectEquivalent(
      "<table><tr><td>a<td>b<tr><td>c</table><p>one<p>two");
}

TEST(ArenaDomTest, SameTagChildNumbering) {
  const char kInput[] =
      "<div><span>a</span><b>x</b><span>b</span><span>c</span></div>";
  Result<Document> heap = Parse(kInput);
  ASSERT_TRUE(heap.ok());
  ArenaDocument arena;
  ArenaParse(kInput, &arena);
  ExpectSameTree(*heap, arena);
  // Spot-check the numbering semantics directly: same-tag numbers count
  // per tag, sibling indexes count all children.
  std::vector<int32_t> same_tag;
  std::vector<int32_t> sibling;
  for (size_t i = 0; i < arena.node_count(); ++i) {
    const ArenaNode& n = arena.node(static_cast<int32_t>(i));
    if (n.kind == NodeKind::kElement && n.tag == "span") {
      same_tag.push_back(n.same_tag_child_number);
      sibling.push_back(n.sibling_index);
    }
  }
  EXPECT_EQ(same_tag, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(sibling, (std::vector<int32_t>{0, 2, 3}));
}

TEST(ArenaDomTest, GeneratedCorpusEquivalence) {
  datasets::DealersConfig config;
  config.num_sites = 4;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  size_t pages = 0;
  for (const datasets::SiteData& site : dealers.sites) {
    for (size_t p = 0; p < site.site.pages.size(); ++p) {
      ExpectEquivalent(Serialize(site.site.pages.page(p).root()));
      ++pages;
    }
  }
  EXPECT_GT(pages, 0u);
}

TEST(ArenaDomTest, ClearAndReuseStaysEquivalentWithoutFreshGrowth) {
  datasets::DealersConfig config;
  config.num_sites = 2;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  std::vector<std::string> sources;
  for (const datasets::SiteData& site : dealers.sites) {
    for (size_t p = 0; p < site.site.pages.size(); ++p) {
      sources.push_back(Serialize(site.site.pages.page(p).root()));
    }
  }
  ArenaDocument arena;
  // Warm-up pass: grow the arena and vectors to the working-set size.
  for (const std::string& source : sources) ArenaParse(source, &arena);
  // Steady state: every page re-parses correctly from recycled capacity.
  for (const std::string& source : sources) {
    ArenaParse(source, &arena);
    arena.stream();  // Also exercise the lazy stream rebuild.
    EXPECT_EQ(arena.arena().fresh_bytes(), 0u);
    Result<Document> heap = Parse(source);
    ASSERT_TRUE(heap.ok());
    ExpectSameTree(*heap, arena);
    ExpectSameStream(*heap, arena);
  }
}

TEST(NameTableTest, InternIsStableAndFindNeverCreates) {
  NameTable& table = NameTable::Global();
  NameTable::Interned a = table.Intern("div");
  NameTable::Interned b = table.Intern("div");
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.name, "div");
  EXPECT_EQ(table.Find("div"), a.id);
  EXPECT_EQ(table.Find("never-a-tag-name-xyzzy"), -1);
  NameTable::Interned c = table.Intern("span");
  EXPECT_NE(c.id, a.id);
}

}  // namespace
}  // namespace ntw::html
