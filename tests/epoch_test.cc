// Unit tests for the epoch-based reclamation domain behind the serving
// repository's snapshot swap (DESIGN.md §11): a pinned reader must defer
// reclamation, an unpinned one must allow it, and a publish/retire storm
// against concurrent readers must never free a pointer a reader still
// dereferences (the TSan build is the real teeth of that last one).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "gtest/gtest.h"

namespace ntw {
namespace {

TEST(EpochTest, RetiredObjectIsFreedOnceQuiescent) {
  EpochDomain domain;
  bool freed = false;
  domain.Retire([&freed] { freed = true; });
  EXPECT_TRUE(domain.has_retired());
  // No reader was ever pinned: the first reclaim pass frees it.
  EXPECT_EQ(domain.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
  EXPECT_FALSE(domain.has_retired());
}

TEST(EpochTest, PinnedReaderDefersReclamation) {
  EpochDomain domain;
  bool freed = false;
  {
    EpochDomain::Pin pin(&domain);
    domain.Retire([&freed] { freed = true; });
    // The pin predates the retirement, so the object must survive.
    EXPECT_EQ(domain.TryReclaim(), 0u);
    EXPECT_FALSE(freed);
  }
  EXPECT_EQ(domain.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochTest, ReaderPinnedAfterRetireDoesNotBlockIt) {
  EpochDomain domain;
  bool freed = false;
  domain.Retire([&freed] { freed = true; });
  {
    // Pinned strictly after the retire: this reader announced a newer
    // epoch, so it provably never saw the retired object.
    EpochDomain::Pin pin(&domain);
    EXPECT_EQ(domain.TryReclaim(), 1u);
    EXPECT_TRUE(freed);
  }
}

TEST(EpochTest, DestructorFreesOutstandingRetirements) {
  int freed = 0;
  {
    EpochDomain domain;
    domain.Retire([&freed] { ++freed; });
    domain.Retire([&freed] { ++freed; });
  }
  EXPECT_EQ(freed, 2);
}

TEST(EpochTest, EachRetireRunsFreeExactlyOnce) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  constexpr int kObjects = 16;
  for (int i = 0; i < kObjects; ++i) {
    domain.Retire([&freed] { freed.fetch_add(1); });
  }
  // Reclaim repeatedly; every object frees exactly once in total.
  domain.TryReclaim();
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), kObjects);
}

// The serving scenario in miniature: a published pointer swapped and
// retired under continuous reader traffic. Readers copy the value out of
// the pointee and assert it is coherent; under TSan this also proves no
// reader ever touches freed memory.
TEST(EpochTest, ConcurrentReadersNeverSeeFreedMemory) {
  struct Payload {
    explicit Payload(uint64_t v) : a(v), b(~v) {}
    uint64_t a;
    uint64_t b;  // Always ~a: a torn or freed read breaks the invariant.
  };

  EpochDomain domain;
  std::atomic<const Payload*> published{new Payload(0)};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Pin pin(&domain);
        const Payload* p = published.load(std::memory_order_seq_cst);
        ASSERT_EQ(p->b, ~p->a);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Wait until the readers are actually running before swapping — on a
  // single-core machine the writer can otherwise finish all swaps before
  // any reader is ever scheduled, proving nothing.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  constexpr int kSwaps = 500;
  for (uint64_t v = 1; v <= kSwaps; ++v) {
    const Payload* next = new Payload(v);
    const Payload* old = published.exchange(next, std::memory_order_seq_cst);
    domain.Retire([old] { delete old; });
    domain.TryReclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Everything retired must eventually free (readers are gone now).
  domain.TryReclaim();
  EXPECT_FALSE(domain.has_retired());
  delete published.load();
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace ntw
