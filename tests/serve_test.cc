// End-to-end tests for the serving subsystem: a real HttpServer bound to
// an ephemeral port, driven by a raw-socket client so the wire behavior
// (status lines, framing, connection lifecycle) is what is asserted, not
// any client library's interpretation of it. Covers the happy paths, the
// production concerns (413, slow-loris timeout, 503 backpressure,
// graceful drain) and the determinism contract: concurrent load replays
// byte-identically to a serial baseline.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"

namespace ntw::serve {
namespace {

using std::chrono::milliseconds;

// Server counters are sharded (per-reactor stripes); value() is the
// merged total across shards.
int64_t CounterValue(const std::string& name) {
  return obs::Registry::Global().GetShardedCounter(name)->value();
}

// ---------------------------------------------------------------------
// Raw-socket client helpers.
// ---------------------------------------------------------------------

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_EQ(rc, 0) << "connect: " << std::strerror(errno);
  }

  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// Reads exactly one HTTP response (headers + Content-Length body) off
  /// the connection and returns its raw bytes; "" on close/error.
  std::string ReadResponse() {
    while (true) {
      size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        size_t body_start = header_end + 4;
        size_t content_length = ContentLengthOf(buffer_.substr(0, body_start));
        // An interim 100 Continue has no body; return it as-is.
        size_t total = body_start + content_length;
        if (buffer_.size() >= total) {
          std::string response = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return response;
        }
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server closed the connection (EOF after any buffered
  /// bytes are drained).
  bool WaitForClose() {
    char chunk[4096];
    while (true) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  int fd() const { return fd_; }

 private:
  static size_t ContentLengthOf(const std::string& headers) {
    // Lower-case scan; test-only leniency.
    std::string lowered = headers;
    for (char& c : lowered) c = static_cast<char>(tolower(c));
    size_t pos = lowered.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<size_t>(
        std::strtoul(lowered.c_str() + pos + 15, nullptr, 10));
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string ExtractRequest(const std::string& site, const std::string& attr,
                           const std::string& html, bool close = false) {
  std::string request = "POST /extract?site=" + site + "&attribute=" + attr +
                        " HTTP/1.1\r\nHost: test\r\nContent-Length: " +
                        std::to_string(html.size()) + "\r\n";
  if (close) request += "Connection: close\r\n";
  return request + "\r\n" + html;
}

std::string GetRequest(const std::string& path, bool close = false) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: test\r\n";
  if (close) request += "Connection: close\r\n";
  return request + "\r\n";
}

// ---------------------------------------------------------------------
// Server harness: Bind() + Run() on a background thread.
// ---------------------------------------------------------------------

class TestServer {
 public:
  /// `configure` runs after Bind() and before Run() — the window where
  /// reload/tick hooks may be installed.
  TestServer(ServerOptions options, HttpServer::Handler handler,
             std::function<void(HttpServer&)> configure = nullptr)
      : server_(std::move(options), std::move(handler)) {
    bound_ = server_.Bind();
    if (configure) configure(server_);
    if (bound_.ok()) {
      thread_ = std::thread([this] { run_status_ = server_.Run(); });
    }
  }

  ~TestServer() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_.RequestShutdown();
      thread_.join();
    }
  }

  HttpServer& server() { return server_; }
  const Status& bound() const { return bound_; }
  const Status& run_status() const { return run_status_; }
  int port() const { return server_.port(); }

 private:
  HttpServer server_;
  Status bound_;
  Status run_status_;
  std::thread thread_;
};

// ---------------------------------------------------------------------
// Fixture: a wrapper repository on disk + a served ExtractService.
// ---------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  static std::string MakeRoot() {
    return ::testing::TempDir() + "ntw_serve_test_" +
           std::to_string(::getpid());
  }

  ServeTest() : root_(MakeRoot()), repository_(root_) {
    std::filesystem::remove_all(root_);
    EXPECT_TRUE(MakeDirs(root_ + "/example.com").ok());
    EXPECT_TRUE(WriteFile(root_ + "/example.com/name.wrapper",
                          "XPATH\t//li/text()\n")
                    .ok());
    EXPECT_TRUE(repository_.Load().ok());
  }

  ~ServeTest() override { std::filesystem::remove_all(root_); }

  /// Starts a served ExtractService; the caller owns the TestServer.
  std::unique_ptr<TestServer> StartService(
      ServerOptions options, ThreadPool* pool,
      std::function<void(HttpServer&)> configure = nullptr) {
    options.pool = pool;
    service_ = std::make_unique<ExtractService>(&repository_, pool);
    auto server = std::make_unique<TestServer>(
        options,
        [this](const HttpRequest& request) {
          return service_->Handle(request);
        },
        std::move(configure));
    EXPECT_TRUE(server->bound().ok()) << server->bound().ToString();
    return server;
  }

  std::string root_;
  WrapperRepository repository_;
  std::unique_ptr<ExtractService> service_;
};

// ---------------------------------------------------------------------
// Happy paths.
// ---------------------------------------------------------------------

TEST_F(ServeTest, HealthzExtractAndMetrics) {
  int64_t requests_before = CounterValue("ntw.serve.requests");
  auto server = StartService(ServerOptions{}, nullptr);

  Client client(server->port());
  ASSERT_TRUE(client.Send(GetRequest("/healthz")));
  std::string health = client.ReadResponse();
  EXPECT_NE(health.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  ASSERT_TRUE(client.Send(ExtractRequest(
      "example.com", "name", "<ul><li>alpha</li><li>beta</li></ul>")));
  std::string extract = client.ReadResponse();
  EXPECT_NE(extract.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(extract.find("\"schema\":\"ntw-serve-extract\""),
            std::string::npos)
      << extract;
  EXPECT_NE(extract.find("\"values\":[\"alpha\",\"beta\"]"),
            std::string::npos)
      << extract;

  ASSERT_TRUE(client.Send(GetRequest("/metrics", /*close=*/true)));
  std::string metrics = client.ReadResponse();
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(metrics.find("\"schema\":\"ntw-metrics\""), std::string::npos);
  EXPECT_NE(metrics.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(client.WaitForClose());

  server->Stop();
  EXPECT_TRUE(server->run_status().ok());
  // Three fully parsed requests were dispatched, exactly.
  EXPECT_EQ(CounterValue("ntw.serve.requests") - requests_before, 3);
}

TEST_F(ServeTest, BatchFanoutPreservesInputOrder) {
  ThreadPool pool(4);
  auto server = StartService(ServerOptions{}, &pool);

  std::string body;
  for (int i = 0; i < 16; ++i) {
    body += "{\"id\":\"p" + std::to_string(i) + "\",\"html\":\"<ul><li>v" +
            std::to_string(i) + "</li></ul>\"}\n";
  }
  std::string request =
      "POST /extract_batch?site=example.com&attribute=name HTTP/1.1\r\n"
      "Host: test\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;

  Client client(server->port());
  ASSERT_TRUE(client.Send(request));
  std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/x-ndjson\r\n"),
            std::string::npos);
  for (int i = 0; i < 16; ++i) {
    std::string line = "{\"index\":" + std::to_string(i) + ",\"id\":\"p" +
                       std::to_string(i) + "\",\"values\":[\"v" +
                       std::to_string(i) + "\"]}";
    EXPECT_NE(response.find(line), std::string::npos) << response;
  }
}

TEST_F(ServeTest, UnknownWrapperAndPathAreClientErrors) {
  auto server = StartService(ServerOptions{}, nullptr);
  Client client(server->port());

  ASSERT_TRUE(client.Send(ExtractRequest("nosite", "name", "<p>x</p>")));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 404 "), std::string::npos);

  ASSERT_TRUE(client.Send(GetRequest("/nope")));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 404 "), std::string::npos);

  // Wrong method on an endpoint.
  ASSERT_TRUE(client.Send(GetRequest("/extract")));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 405 "), std::string::npos);
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrder) {
  auto server = StartService(ServerOptions{}, nullptr);
  Client client(server->port());
  // Two requests in one write; responses must come back in order.
  ASSERT_TRUE(client.Send(
      ExtractRequest("example.com", "name", "<ul><li>one</li></ul>") +
      ExtractRequest("example.com", "name", "<ul><li>two</li></ul>")));
  EXPECT_NE(client.ReadResponse().find("\"values\":[\"one\"]"),
            std::string::npos);
  EXPECT_NE(client.ReadResponse().find("\"values\":[\"two\"]"),
            std::string::npos);
}

TEST_F(ServeTest, ExpectContinueHandshake) {
  auto server = StartService(ServerOptions{}, nullptr);
  Client client(server->port());
  std::string html = "<ul><li>later</li></ul>";
  ASSERT_TRUE(client.Send(
      "POST /extract?site=example.com&attribute=name HTTP/1.1\r\n"
      "Host: test\r\nExpect: 100-continue\r\nContent-Length: " +
      std::to_string(html.size()) + "\r\n\r\n"));
  std::string interim = client.ReadResponse();
  EXPECT_NE(interim.find("HTTP/1.1 100 Continue\r\n"), std::string::npos)
      << interim;
  ASSERT_TRUE(client.Send(html));
  EXPECT_NE(client.ReadResponse().find("\"values\":[\"later\"]"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Production concerns.
// ---------------------------------------------------------------------

TEST_F(ServeTest, OversizedBodyIsRejectedWith413) {
  int64_t rejected_before = CounterValue("ntw.serve.rejected_too_large");
  ServerOptions options;
  options.limits.max_body_bytes = 64;
  auto server = StartService(options, nullptr);

  Client client(server->port());
  ASSERT_TRUE(client.Send(ExtractRequest("example.com", "name",
                                         std::string(4096, 'x'))));
  std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 413 "), std::string::npos) << response;
  // Parse errors close the connection.
  EXPECT_TRUE(client.WaitForClose());
  EXPECT_EQ(CounterValue("ntw.serve.rejected_too_large") - rejected_before,
            1);
}

TEST_F(ServeTest, SlowLorisIsTimedOutAndClosed) {
  int64_t timeouts_before = CounterValue("ntw.serve.read_timeouts");
  ServerOptions options;
  options.read_timeout_ms = 150;
  auto server = StartService(options, nullptr);

  Client slow(server->port());
  // A partial request that never completes.
  ASSERT_TRUE(slow.Send("POST /extract HTTP/1.1\r\nHost: t"));
  EXPECT_TRUE(slow.WaitForClose());
  EXPECT_EQ(CounterValue("ntw.serve.read_timeouts") - timeouts_before, 1);
}

TEST_F(ServeTest, OverloadIsRejectedWith503) {
  int64_t rejected_before = CounterValue("ntw.serve.rejected_overload");
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> active{0};

  ThreadPool pool(4);
  ServerOptions options;
  options.max_inflight = 1;
  options.pool = &pool;
  TestServer server(options, [&](const HttpRequest&) {
    active.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return HttpResponse{200, "text/plain", "done\n"};
  });
  ASSERT_TRUE(server.bound().ok());

  Client first(server.port());
  ASSERT_TRUE(first.Send(GetRequest("/x")));
  // Wait until the first request occupies the only in-flight slot.
  while (active.load() == 0) std::this_thread::sleep_for(milliseconds(1));

  Client second(server.port());
  ASSERT_TRUE(second.Send(GetRequest("/y")));
  std::string rejected = second.ReadResponse();
  EXPECT_NE(rejected.find("HTTP/1.1 503 "), std::string::npos) << rejected;

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(first.ReadResponse().find("HTTP/1.1 200 OK\r\n"),
            std::string::npos);
  EXPECT_EQ(CounterValue("ntw.serve.rejected_overload") - rejected_before,
            1);
}

TEST_F(ServeTest, GracefulShutdownDrainsInFlightRequests) {
  int64_t dropped_before = CounterValue("ntw.serve.dropped_responses");
  constexpr int kInFlight = 4;
  std::atomic<int> started{0};

  ThreadPool pool(kInFlight);
  ServerOptions options;
  options.pool = &pool;
  TestServer server(options, [&](const HttpRequest& request) {
    started.fetch_add(1);
    std::this_thread::sleep_for(milliseconds(100));
    return HttpResponse{200, "text/plain", "slow " + request.path + "\n"};
  });
  ASSERT_TRUE(server.bound().ok());

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kInFlight; ++i) {
    clients.push_back(std::make_unique<Client>(server.port()));
    ASSERT_TRUE(clients[i]->Send(GetRequest("/req" + std::to_string(i))));
  }
  // SIGTERM mid-load: all dispatched requests must still be answered.
  while (started.load() < kInFlight) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  server.server().RequestShutdown();

  for (int i = 0; i < kInFlight; ++i) {
    std::string response = clients[i]->ReadResponse();
    EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos)
        << "client " << i << ": " << response;
    EXPECT_NE(response.find("slow /req" + std::to_string(i) + "\n"),
              std::string::npos);
    // The drain closes every connection once its response is flushed
    // (the header may still say keep-alive — it was serialized when the
    // request was dispatched, before the shutdown arrived).
    EXPECT_TRUE(clients[i]->WaitForClose());
  }
  server.Stop();
  EXPECT_TRUE(server.run_status().ok())
      << server.run_status().ToString();
  EXPECT_EQ(CounterValue("ntw.serve.dropped_responses") - dropped_before, 0);
}

// ---------------------------------------------------------------------
// Determinism: concurrent load replays byte-identically to serial.
// ---------------------------------------------------------------------

TEST_F(ServeTest, ConcurrentClientsMatchSerialByteForByte) {
  constexpr int kClients = 8;
  constexpr int kRequests = 25;  // Distinct requests, replayed per client.
  int64_t requests_before = CounterValue("ntw.serve.requests");

  ThreadPool pool(4);
  auto server = StartService(ServerOptions{}, &pool);

  auto request_bytes = [](int i) {
    return ExtractRequest("example.com", "name",
                          "<ul><li>value" + std::to_string(i) +
                              "</li><li>tail</li></ul>");
  };

  // Serial baseline over one keep-alive connection.
  std::vector<std::string> baseline(kRequests);
  {
    Client client(server->port());
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(client.Send(request_bytes(i)));
      baseline[i] = client.ReadResponse();
      ASSERT_NE(baseline[i].find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    }
  }

  // Concurrent replay: every client sends the same request stream.
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      for (int i = 0; i < kRequests; ++i) {
        if (!client.Send(request_bytes(i))) return;
        got[c].push_back(client.ReadResponse());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), static_cast<size_t>(kRequests))
        << "client " << c;
    for (int i = 0; i < kRequests; ++i) {
      EXPECT_EQ(got[c][i], baseline[i]) << "client " << c << " request " << i;
    }
  }
  // The request counter accounts for every request issued, exactly.
  EXPECT_EQ(CounterValue("ntw.serve.requests") - requests_before,
            kRequests * (kClients + 1));
}

// ---------------------------------------------------------------------
// Hot reload: a new snapshot serves without restarting.
// ---------------------------------------------------------------------

TEST_F(ServeTest, ReloadPicksUpNewWrappers) {
  auto server = StartService(ServerOptions{}, nullptr,
                             [this](HttpServer& http_server) {
                               http_server.SetReloadHook([this] {
                                 EXPECT_TRUE(repository_.Load().ok());
                               });
                             });

  Client client(server->port());
  ASSERT_TRUE(client.Send(ExtractRequest("example.com", "price",
                                         "<ul><li>9</li></ul>")));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 404 "), std::string::npos);

  ASSERT_TRUE(WriteFile(root_ + "/example.com/price.wrapper",
                        "XPATH\t//li/text()\n")
                  .ok());
  EXPECT_TRUE(repository_.PollForChanges());
  // Record the version before requesting the reload — the hook runs on
  // the event loop and may fire before this thread resumes.
  uint64_t version = repository_.snapshot()->version;
  server->server().RequestReload();
  while (repository_.snapshot()->version == version) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_TRUE(client.Send(ExtractRequest("example.com", "price",
                                         "<ul><li>9</li></ul>")));
  EXPECT_NE(client.ReadResponse().find("\"values\":[\"9\"]"),
            std::string::npos);
}

}  // namespace
}  // namespace ntw::serve
