#include <string>

#include "gtest/gtest.h"
#include "html/entities.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "html/tokenizer.h"
#include "test_util.h"

namespace ntw::html {
namespace {

using ::ntw::testing::MustParse;

// -------------------------------------------------------------- Entities.

TEST(EntitiesTest, NamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeEntities("&lt;td&gt;"), "<td>");
  EXPECT_EQ(DecodeEntities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
}

TEST(EntitiesTest, NumericDecimal) {
  EXPECT_EQ(DecodeEntities("&#65;&#66;"), "AB");
}

TEST(EntitiesTest, NumericHex) {
  EXPECT_EQ(DecodeEntities("&#x41;&#X42;"), "AB");
}

TEST(EntitiesTest, NumericUtf8MultiByte) {
  EXPECT_EQ(DecodeEntities("&#233;"), "\xc3\xa9");        // é
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xe2\x82\xac");  // €
  EXPECT_EQ(DecodeEntities("&#x1F600;"), "\xf0\x9f\x98\x80");
}

TEST(EntitiesTest, OverflowBecomesReplacement) {
  EXPECT_EQ(DecodeEntities("&#x110000;"), "\xef\xbf\xbd");
}

TEST(EntitiesTest, UnknownPassesThrough) {
  EXPECT_EQ(DecodeEntities("&bogus; &"), "&bogus; &");
  EXPECT_EQ(DecodeEntities("AT&T"), "AT&T");
}

TEST(EntitiesTest, MissingSemicolonStillDecodes) {
  EXPECT_EQ(DecodeEntities("&amp x"), "& x");
}

TEST(EntitiesTest, HugeNumericSaturatesToReplacement) {
  // Values far past the uint32 range must saturate, not wrap back into a
  // valid code point.
  EXPECT_EQ(DecodeEntities("&#99999999999999999999;"), "\xef\xbf\xbd");
  EXPECT_EQ(DecodeEntities("&#xFFFFFFFFFFFFFFFF;"), "\xef\xbf\xbd");
  // One past the Unicode maximum, and exactly the maximum.
  EXPECT_EQ(DecodeEntities("&#1114112;"), "\xef\xbf\xbd");
  EXPECT_EQ(DecodeEntities("&#x10FFFF;"), "\xf4\x8f\xbf\xbf");
}

TEST(EntitiesTest, TruncatedNumericReferencePassesThrough) {
  // A reference cut off before any digit is not a reference at all.
  EXPECT_EQ(DecodeEntities("&#"), "&#");
  EXPECT_EQ(DecodeEntities("&#x"), "&#x");
  EXPECT_EQ(DecodeEntities("&#X"), "&#X");
  EXPECT_EQ(DecodeEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeEntities("&#x;"), "&#x;");
  EXPECT_EQ(DecodeEntities("value &#x"), "value &#x");
  EXPECT_EQ(DecodeEntities("&#xZZ;"), "&#xZZ;");
}

TEST(EntitiesTest, TrailingAmpersandAndEmptyName) {
  EXPECT_EQ(DecodeEntities("&"), "&");
  EXPECT_EQ(DecodeEntities("&;"), "&;");
  EXPECT_EQ(DecodeEntities("a & b"), "a & b");
}

TEST(EntitiesTest, UnknownNamedEntityKeepsSemicolonAndCase) {
  EXPECT_EQ(DecodeEntities("&AMP;"), "&AMP;");  // Names are case-sensitive.
  // The name scan is maximal: "nbspx" is not an entity, so nothing decodes.
  EXPECT_EQ(DecodeEntities("&nbsp &nbspx;"), "\xc2\xa0 &nbspx;");
  EXPECT_EQ(DecodeEntities("&verylongunknownentityname;"),
            "&verylongunknownentityname;");
}

TEST(EntitiesTest, NumericZeroAndControlDecodeLiterally) {
  EXPECT_EQ(DecodeEntities("&#65;&#0;&#66;"),
            std::string("A\0B", 3));
}

// -------------------------------------------------------------- Tokenizer.

TEST(TokenizerTest, BasicTags) {
  Tokenizer tokenizer("<div class='a'>hi</div>");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStartTag);
  EXPECT_EQ(tokens[0].data, "div");
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].first, "class");
  EXPECT_EQ(tokens[0].attrs[0].second, "a");
  EXPECT_EQ(tokens[1].kind, TokenKind::kText);
  EXPECT_EQ(tokens[1].data, "hi");
  EXPECT_EQ(tokens[2].kind, TokenKind::kEndTag);
  EXPECT_EQ(tokens[2].data, "div");
}

TEST(TokenizerTest, TagNamesLowercased) {
  Tokenizer tokenizer("<DIV Class=\"X\">t</DIV>");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  EXPECT_EQ(tokens[0].data, "div");
  EXPECT_EQ(tokens[0].attrs[0].first, "class");
  EXPECT_EQ(tokens[0].attrs[0].second, "X");  // Values keep their case.
}

TEST(TokenizerTest, AttributeStyles) {
  Tokenizer tokenizer("<a href=x b='y' c=\"z\" checked>t</a>");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens[0].attrs.size(), 4u);
  EXPECT_EQ(tokens[0].attrs[0], (std::pair<std::string, std::string>{"href", "x"}));
  EXPECT_EQ(tokens[0].attrs[1], (std::pair<std::string, std::string>{"b", "y"}));
  EXPECT_EQ(tokens[0].attrs[2], (std::pair<std::string, std::string>{"c", "z"}));
  EXPECT_EQ(tokens[0].attrs[3].first, "checked");
  EXPECT_EQ(tokens[0].attrs[3].second, "");
}

TEST(TokenizerTest, SelfClosing) {
  Tokenizer tokenizer("<br/><img src='a' />");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_TRUE(tokens[1].self_closing);
}

TEST(TokenizerTest, CommentsAndDoctype) {
  Tokenizer tokenizer("<!DOCTYPE html><!-- note -->x");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDoctype);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].data, " note ");
  EXPECT_EQ(tokens[2].data, "x");
}

TEST(TokenizerTest, StrayLessThanIsText) {
  Tokenizer tokenizer("a < b <td>c</td>");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kText);
  EXPECT_EQ(tokens[0].data, "a ");
  EXPECT_EQ(tokens[1].kind, TokenKind::kText);
  EXPECT_EQ(tokens[1].data, "< b ");
  EXPECT_EQ(tokens[2].kind, TokenKind::kStartTag);
}

TEST(TokenizerTest, ScriptIsRawText) {
  Tokenizer tokenizer("<script>if (a<b) { x(); }</script>after");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].data, "script");
  EXPECT_EQ(tokens[1].kind, TokenKind::kText);
  EXPECT_EQ(tokens[1].data, "if (a<b) { x(); }");
  EXPECT_EQ(tokens[2].kind, TokenKind::kEndTag);
  EXPECT_EQ(tokens[3].data, "after");
}

TEST(TokenizerTest, EntityInTextAndAttr) {
  Tokenizer tokenizer("<a title=\"A&amp;B\">x &lt; y</a>");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  EXPECT_EQ(tokens[0].attrs[0].second, "A&B");
  EXPECT_EQ(tokens[1].data, "x < y");
}

TEST(TokenizerTest, UnterminatedTagAtEof) {
  Tokenizer tokenizer("<div class='x'");
  std::vector<Token> tokens = tokenizer.TokenizeAll();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStartTag);
}

// ----------------------------------------------------------------- Parser.

TEST(ParserTest, SimpleTree) {
  Document doc = MustParse("<div><p>one</p><p>two</p></div>");
  const Node* div = doc.root()->child(0);
  EXPECT_EQ(div->tag(), "div");
  ASSERT_EQ(div->child_count(), 2u);
  EXPECT_EQ(div->child(0)->tag(), "p");
  EXPECT_EQ(div->child(0)->child(0)->text(), "one");
  EXPECT_EQ(div->child(1)->child(0)->text(), "two");
}

TEST(ParserTest, WhitespaceTextDropped) {
  Document doc = MustParse("<div>\n  <p>x</p>\n</div>");
  EXPECT_EQ(doc.root()->child(0)->child_count(), 1u);
}

TEST(ParserTest, TextCollapsed) {
  Document doc = MustParse("<p>a\n   b</p>");
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(), "a b");
}

TEST(ParserTest, VoidElementsDontNest) {
  Document doc = MustParse("<td>a<br>b<br>c</td>");
  const Node* td = doc.root()->child(0);
  ASSERT_EQ(td->child_count(), 5u);
  EXPECT_EQ(td->child(0)->text(), "a");
  EXPECT_EQ(td->child(1)->tag(), "br");
  EXPECT_EQ(td->child(1)->child_count(), 0u);
  EXPECT_EQ(td->child(2)->text(), "b");
}

TEST(ParserTest, ImpliedEndTagsLi) {
  Document doc = MustParse("<ul><li>a<li>b<li>c</ul>");
  const Node* ul = doc.root()->child(0);
  ASSERT_EQ(ul->child_count(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ul->child(i)->tag(), "li");
    EXPECT_EQ(ul->child(i)->child_count(), 1u);
  }
}

TEST(ParserTest, ImpliedEndTagsTableCells) {
  Document doc = MustParse("<table><tr><td>a<td>b<tr><td>c</table>");
  const Node* table = doc.root()->child(0);
  ASSERT_EQ(table->child_count(), 2u);
  EXPECT_EQ(table->child(0)->child_count(), 2u);
  EXPECT_EQ(table->child(1)->child_count(), 1u);
}

TEST(ParserTest, ImpliedParagraphEnd) {
  Document doc = MustParse("<div><p>one<p>two</div>");
  const Node* div = doc.root()->child(0);
  ASSERT_EQ(div->child_count(), 2u);
  EXPECT_EQ(div->child(0)->tag(), "p");
  EXPECT_EQ(div->child(1)->tag(), "p");
}

TEST(ParserTest, UnmatchedEndTagIgnored) {
  Document doc = MustParse("<div>a</span>b</div>");
  const Node* div = doc.root()->child(0);
  ASSERT_EQ(div->child_count(), 2u);
  EXPECT_EQ(div->child(0)->text(), "a");
  EXPECT_EQ(div->child(1)->text(), "b");
}

TEST(ParserTest, StrayEndTagCannotCrossTable) {
  Document doc = MustParse("<div><table><tr><td>x</div>y</table></div>");
  // The </div> inside the table must not close the outer div.
  const Node* div = doc.root()->child(0);
  EXPECT_EQ(div->tag(), "div");
  EXPECT_EQ(div->child(0)->tag(), "table");
}

TEST(ParserTest, AttributesPreserved) {
  Document doc =
      MustParse("<div class='dealer links' id=main data-x='1'>t</div>");
  const Node* div = doc.root()->child(0);
  EXPECT_EQ(*div->GetAttr("class"), "dealer links");
  EXPECT_EQ(*div->GetAttr("id"), "main");
  EXPECT_EQ(*div->GetAttr("data-x"), "1");
  EXPECT_EQ(div->GetAttr("missing"), nullptr);
}

TEST(ParserTest, PreorderIndicesAreDocumentOrder) {
  Document doc = MustParse("<a><b>x</b><c>y</c></a>");
  EXPECT_EQ(doc.root()->preorder_index(), 0);
  const Node* a = doc.root()->child(0);
  EXPECT_EQ(a->preorder_index(), 1);
  EXPECT_EQ(a->child(0)->preorder_index(), 2);            // b
  EXPECT_EQ(a->child(0)->child(0)->preorder_index(), 3);  // x
  EXPECT_EQ(a->child(1)->preorder_index(), 4);            // c
  EXPECT_EQ(a->child(1)->child(0)->preorder_index(), 5);  // y
  EXPECT_EQ(doc.node_count(), 6u);
  EXPECT_EQ(doc.node(4)->tag(), "c");
}

TEST(ParserTest, SameTagChildNumbers) {
  Document doc = MustParse("<tr><td>a</td><th>h</th><td>b</td></tr>");
  const Node* tr = doc.root()->child(0);
  EXPECT_EQ(tr->child(0)->same_tag_child_number(), 1);  // td[1]
  EXPECT_EQ(tr->child(1)->same_tag_child_number(), 1);  // th[1]
  EXPECT_EQ(tr->child(2)->same_tag_child_number(), 2);  // td[2]
}

TEST(ParserTest, TextNodesIndexed) {
  Document doc = MustParse("<div>a<span>b</span>c</div>");
  ASSERT_EQ(doc.text_nodes().size(), 3u);
  EXPECT_EQ(doc.text_nodes()[0]->text(), "a");
  EXPECT_EQ(doc.text_nodes()[1]->text(), "b");
  EXPECT_EQ(doc.text_nodes()[2]->text(), "c");
}

TEST(ParserTest, TextContentConcatenates) {
  Document doc = MustParse("<td><u>NAME</u><br>ADDR</td>");
  EXPECT_EQ(doc.root()->child(0)->TextContent(), "NAMEADDR");
}

TEST(ParserTest, CommentsDropped) {
  Document doc = MustParse("<div><!-- hidden -->x</div>");
  EXPECT_EQ(doc.root()->child(0)->child_count(), 1u);
}

TEST(ParserTest, EmptyInput) {
  Document doc = MustParse("");
  EXPECT_EQ(doc.root()->child_count(), 0u);
  EXPECT_EQ(doc.node_count(), 1u);
}

TEST(ParserTest, FigureOneSnippet) {
  // The paper's Figure 1 markup (with its quirky tr-inside-div).
  Document doc = MustParse(
      "<div class='dealerlinks'>"
      "<tr><td><u>PORTER FURNITURE</u><br>201 HWY.30 West<br>"
      "NEW ALBANY, MS 38652</td></tr>"
      "<tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>"
      "WOODLAND, MS 3977</td></tr></div>");
  EXPECT_EQ(doc.text_nodes().size(), 6u);
  EXPECT_EQ(doc.text_nodes()[0]->text(), "PORTER FURNITURE");
  EXPECT_EQ(doc.text_nodes()[0]->parent()->tag(), "u");
}

// -------------------------------------------------------------- Serializer.

TEST(SerializerTest, RoundTripsSimpleTree) {
  std::string source =
      "<div class=\"a\"><p>one</p><ul><li>x</li><li>y</li></ul></div>";
  Document doc = MustParse(source);
  EXPECT_EQ(Serialize(doc.root()), source);
}

TEST(SerializerTest, EscapesText) {
  Document doc;
  auto* el = doc.root()->AppendChild(std::make_unique<Node>("p"));
  el->AppendChild(Node::MakeText("a<b & c"));
  doc.Finalize();
  EXPECT_EQ(Serialize(doc.root()), "<p>a&lt;b &amp; c</p>");
}

TEST(SerializerTest, VoidElements) {
  Document doc = MustParse("<td>a<br>b</td>");
  EXPECT_EQ(Serialize(doc.root()), "<td>a<br>b</td>");
}

TEST(SerializerTest, ParseSerializeParseIsStable) {
  std::string source =
      "<html><body><div class='x'><table><tr><td><u>N</u><br>A</td>"
      "<td><a href='#m'>Map</a></td></tr></table></div></body></html>";
  Document first = MustParse(source);
  std::string serialized = Serialize(first.root());
  Document second = MustParse(serialized);
  EXPECT_EQ(Serialize(second.root()), serialized);
  EXPECT_EQ(first.node_count(), second.node_count());
  for (size_t i = 0; i < first.node_count(); ++i) {
    EXPECT_EQ(first.node(static_cast<int>(i))->tag(),
              second.node(static_cast<int>(i))->tag());
    EXPECT_EQ(first.node(static_cast<int>(i))->text(),
              second.node(static_cast<int>(i))->text());
  }
}

TEST(SerializerTest, DumpTreeShape) {
  Document doc = MustParse("<div><u>N</u></div>");
  std::string dump = DumpTree(doc.root());
  EXPECT_NE(dump.find("#document"), std::string::npos);
  EXPECT_NE(dump.find("  div"), std::string::npos);
  EXPECT_NE(dump.find("    u"), std::string::npos);
  EXPECT_NE(dump.find("      #text \"N\""), std::string::npos);
}

TEST(SerializerTest, StructuralSignatureMasksText) {
  Document a = MustParse("<td><u>PORTER</u><br>X</td>");
  Document b = MustParse("<td><u>WOODLAND</u><br>Y</td>");
  EXPECT_EQ(StructuralSignature(a.root()), StructuralSignature(b.root()));
  Document c = MustParse("<td><b>PORTER</b><br>X</td>");
  EXPECT_NE(StructuralSignature(a.root()), StructuralSignature(c.root()));
}

}  // namespace
}  // namespace ntw::html
