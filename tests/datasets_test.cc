#include <set>

#include "core/xpath_inductor.h"
#include "datasets/dataset.h"
#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "datasets/products.h"
#include "datasets/runner.h"
#include "gtest/gtest.h"
#include "html/serializer.h"

namespace ntw::datasets {
namespace {

DealersConfig SmallDealers() {
  DealersConfig config;
  config.num_sites = 16;
  config.universe_size = 600;
  return config;
}

TEST(DealersTest, ShapeAndTypes) {
  Dataset dataset = MakeDealers(SmallDealers());
  EXPECT_EQ(dataset.name, "DEALERS");
  EXPECT_EQ(dataset.types,
            (std::vector<std::string>{"name", "zip", "phone"}));
  ASSERT_EQ(dataset.sites.size(), 16u);
  for (const SiteData& data : dataset.sites) {
    EXPECT_EQ(data.site.pages.size(), 12u);
    EXPECT_FALSE(data.site.truth.at("name").empty());
    EXPECT_FALSE(data.site.truth.at("zip").empty());
    // One zip line per record.
    EXPECT_EQ(data.site.truth.at("name").size(),
              data.site.truth.at("zip").size());
  }
}

TEST(DealersTest, DeterministicBySeed) {
  Dataset a = MakeDealers(SmallDealers());
  Dataset b = MakeDealers(SmallDealers());
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].site.name, b.sites[i].site.name);
    EXPECT_EQ(a.sites[i].annotations.at("name"),
              b.sites[i].annotations.at("name"));
    EXPECT_EQ(a.sites[i].site.truth.at("name"),
              b.sites[i].site.truth.at("name"));
  }
}

TEST(DealersTest, AnnotatorOperatingPoint) {
  DealersConfig config;
  config.num_sites = 40;
  Dataset dataset = MakeDealers(config);
  core::Prf quality = AnnotatorQuality(dataset, "name");
  // The paper's dictionary annotator: 0.95 precision / 0.24 recall. Allow
  // sampling slack but pin the operating regime.
  EXPECT_GT(quality.precision, 0.85);
  EXPECT_GT(quality.recall, 0.15);
  EXPECT_LT(quality.recall, 0.40);
}

TEST(DealersTest, ZipAnnotatorNoisyButHighRecall) {
  Dataset dataset = MakeDealers(SmallDealers());
  core::Prf quality = AnnotatorQuality(dataset, "zip");
  EXPECT_GT(quality.recall, 0.95);   // The regex always hits real zips...
  EXPECT_LT(quality.precision, 0.95);  // ...and footers/street numbers too.
}

TEST(DealersTest, TruthNodesAreTextNodes) {
  Dataset dataset = MakeDealers(SmallDealers());
  for (const SiteData& data : dataset.sites) {
    for (const auto& [type, truth] : data.site.truth) {
      for (const core::NodeRef& ref : truth) {
        const html::Node* node = data.site.pages.Resolve(ref);
        ASSERT_NE(node, nullptr);
        EXPECT_TRUE(node->is_text());
      }
    }
  }
}

TEST(DealersTest, SitesAreStructurallyDiverse) {
  Dataset dataset = MakeDealers(SmallDealers());
  std::set<std::string> first_page_signatures;
  for (const SiteData& data : dataset.sites) {
    first_page_signatures.insert(
        html::StructuralSignature(data.site.pages.page(0).root()));
  }
  // Random templates: essentially every site should differ structurally.
  EXPECT_GT(first_page_signatures.size(), dataset.sites.size() / 2);
}

TEST(DiscTest, ShapeAndSeedAlbums) {
  DiscConfig config;
  Dataset dataset = MakeDisc(config);
  EXPECT_EQ(dataset.name, "DISC");
  ASSERT_EQ(dataset.sites.size(), 15u);
  for (const SiteData& data : dataset.sites) {
    // min seed + min extra pages at least.
    EXPECT_GE(data.site.pages.size(),
              config.min_seed_albums + config.min_extra_albums);
    EXPECT_FALSE(data.site.truth.at("track").empty());
    // One album title node per page.
    EXPECT_EQ(data.site.truth.at("album").size(), data.site.pages.size());
  }
}

TEST(DiscTest, TrackAnnotatorFindsSeedTracks) {
  Dataset dataset = MakeDisc(DiscConfig{});
  core::Prf quality = AnnotatorQuality(dataset, "track");
  EXPECT_GT(quality.precision, 0.7);
  EXPECT_GT(quality.recall, 0.3);  // Non-seed albums dilute global recall.
  // Recall restricted to annotated pages is what the paper reports (0.9);
  // verified indirectly: most seed-album tracks are hit.
}

TEST(DiscTest, AlbumAnnotationsAreNoisy) {
  Dataset dataset = MakeDisc(DiscConfig{});
  size_t labels = 0, hits = 0;
  for (const SiteData& data : dataset.sites) {
    const core::NodeSet& album_labels = data.annotations.at("album");
    labels += album_labels.size();
    hits += album_labels.IntersectSize(data.site.truth.at("album"));
  }
  EXPECT_GT(labels, 0u);
  // Seed titles recur in head titles, details tabs, reviews and title
  // tracks: a substantial share of the labels are off-truth noise —
  // exactly why Appendix B.2 calls this annotator "very noisy".
  EXPECT_LT(hits, labels);
  EXPECT_GT(labels - hits, labels / 4);
}

TEST(ProductsTest, ShapeAndCatalogue) {
  ProductsConfig config;
  Dataset dataset = MakeProducts(config);
  EXPECT_EQ(dataset.name, "PRODUCTS");
  ASSERT_EQ(dataset.sites.size(), 10u);
  core::Prf quality = AnnotatorQuality(dataset, "model");
  EXPECT_GT(quality.precision, 0.7);
  EXPECT_GT(quality.recall, 0.4);
}

TEST(SplitTest, AlternatesSites) {
  Dataset dataset = MakeDealers(SmallDealers());
  Split split = MakeSplit(dataset);
  EXPECT_EQ(split.train.size() + split.test.size(), dataset.sites.size());
  EXPECT_EQ(split.train[0], 0u);
  EXPECT_EQ(split.test[0], 1u);
}

TEST(LearnModelsTest, ProducesPlausibleModels) {
  Dataset dataset = MakeDealers(SmallDealers());
  Split split = MakeSplit(dataset);
  Result<TrainedModels> models = LearnModels(dataset, "name", split.train);
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  EXPECT_GT(models->annotation.p(), 0.8);
  EXPECT_GT(models->annotation.r(), 0.1);
  EXPECT_LT(models->annotation.r(), 0.5);
  // The publication model prefers record-like lists over degenerate ones.
  core::ListFeatures record_like;
  record_like.schema_size = 4;
  record_like.alignment = 3;
  core::ListFeatures degenerate;
  EXPECT_GT(models->publication.LogProb(record_like),
            models->publication.LogProb(degenerate));
}

TEST(RunnerTest, SmallEndToEndRun) {
  Dataset dataset = MakeDealers(SmallDealers());
  core::XPathInductor inductor;
  RunConfig config;
  config.type = "name";
  Result<RunSummary> summary = RunSingleType(dataset, inductor, config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->sites.size() + summary->skipped_sites, 8u);
  EXPECT_GT(summary->ntw_avg.f1, summary->naive_avg.f1);
  EXPECT_GT(summary->naive_avg.recall, 0.95);  // NAIVE over-generalizes.
  std::string formatted = FormatSummary("title", *summary);
  EXPECT_NE(formatted.find("NTW"), std::string::npos);
  EXPECT_NE(formatted.find("NAIVE"), std::string::npos);
}

}  // namespace
}  // namespace ntw::datasets
