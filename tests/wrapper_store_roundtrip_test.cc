// Property tests for the wrapper store, the serialization boundary the
// serving repository trusts: for every wrapper an inductor can produce,
// Serialize → Deserialize → Serialize must be byte-identical and the
// reconstructed wrapper must extract exactly what the original did; and
// no truncated or corrupted record may do anything worse than return a
// clean error Status.

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/table_inductor.h"
#include "core/wrapper.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

NodeSet RandomSubset(const NodeSet& pool, Rng* rng, size_t max_size) {
  std::vector<NodeRef> refs;
  size_t want = 1 + rng->NextBounded(max_size);
  for (size_t i = 0; i < want; ++i) {
    refs.push_back(pool[rng->NextBounded(pool.size())]);
  }
  return NodeSet(std::move(refs));
}

/// One (inductor, page set, label pool) context to draw wrappers from —
/// the same randomized generators the well-behavedness suite uses, so
/// the store is exercised on realistic rules, not hand-picked ones.
struct Context {
  std::string name;
  const WrapperInductor* inductor;
  const PageSet* pages;
  NodeSet pool;
};

class RoundTripTest : public ::testing::Test {
 protected:
  RoundTripTest() {
    table_pages_ = testing::ExampleTablePage();
    dealer_pages_ = testing::FigureOnePages();
    datasets::DealersConfig config;
    config.num_sites = 4;
    config.pages_per_site = 3;
    dataset_ = datasets::MakeDealers(config);

    contexts_.push_back({"LR-table", &lr_, &table_pages_,
                         table_pages_.AllTextNodes()});
    contexts_.push_back({"XPATH-table", &xpath_, &table_pages_,
                         table_pages_.AllTextNodes()});
    contexts_.push_back({"LR-dealers", &lr_, &dealer_pages_,
                         dealer_pages_.AllTextNodes()});
    contexts_.push_back({"XPATH-dealers", &xpath_, &dealer_pages_,
                         dealer_pages_.AllTextNodes()});
    // HLRT labels must come from the template-bracketed truth list (see
    // hlrt_inductor.h) for the induced rule to be meaningful.
    for (const datasets::SiteData& data : dataset_.sites) {
      const NodeSet& truth = data.site.truth.at("name");
      if (truth.size() < 2) continue;
      contexts_.push_back({"HLRT-" + data.site.name, &hlrt_,
                           &data.site.pages, truth});
    }
  }

  /// Serialized records of randomized induced wrappers, paired with the
  /// context they came from (for Extract equivalence checks).
  std::vector<std::pair<std::string, const Context*>> SampleRecords(
      int trials_per_context) {
    std::vector<std::pair<std::string, const Context*>> records;
    Rng rng(4242);
    for (const Context& context : contexts_) {
      for (int trial = 0; trial < trials_per_context; ++trial) {
        NodeSet labels = RandomSubset(context.pool, &rng, 5);
        Induction induction = context.inductor->Induce(*context.pages, labels);
        if (induction.wrapper == nullptr) continue;
        Result<std::string> record = SerializeWrapper(*induction.wrapper);
        if (!record.ok()) {
          ADD_FAILURE() << context.name << ": "
                        << record.status().ToString();
          continue;
        }
        records.emplace_back(*record, &context);
      }
    }
    return records;
  }

  LrInductor lr_;
  XPathInductor xpath_;
  HlrtInductor hlrt_;
  PageSet table_pages_;
  PageSet dealer_pages_;
  datasets::Dataset dataset_;
  std::vector<Context> contexts_;
};

// Serialize → Deserialize → Serialize is byte-identical, and the
// reconstructed wrapper is extraction-equivalent to the original.
TEST_F(RoundTripTest, SerializeParseSerializeByteIdentical) {
  Rng rng(99);
  int checked = 0;
  for (const Context& context : contexts_) {
    for (int trial = 0; trial < 20; ++trial) {
      NodeSet labels = RandomSubset(context.pool, &rng, 5);
      Induction induction = context.inductor->Induce(*context.pages, labels);
      ASSERT_NE(induction.wrapper, nullptr) << context.name;

      Result<std::string> record = SerializeWrapper(*induction.wrapper);
      ASSERT_TRUE(record.ok())
          << context.name << ": " << record.status().ToString();

      Result<WrapperPtr> parsed = DeserializeWrapper(*record);
      ASSERT_TRUE(parsed.ok())
          << context.name << " record=" << *record << ": "
          << parsed.status().ToString();

      Result<std::string> again = SerializeWrapper(**parsed);
      ASSERT_TRUE(again.ok()) << context.name;
      EXPECT_EQ(*record, *again) << context.name;

      EXPECT_EQ((*parsed)->Extract(*context.pages), induction.extraction)
          << context.name << " record=" << *record;
      ++checked;
    }
  }
  EXPECT_GE(checked, 100);
}

// Every strict prefix of a valid record either parses cleanly or returns
// a non-OK Status — never crashes. (Some prefixes are legitimately valid
// records themselves, e.g. an xpath cut at a step boundary.)
TEST_F(RoundTripTest, TruncatedRecordsFailCleanly) {
  for (const auto& [record, context] : SampleRecords(3)) {
    for (size_t len = 0; len < record.size(); ++len) {
      Result<WrapperPtr> parsed = DeserializeWrapper(record.substr(0, len));
      if (parsed.ok()) {
        // A shorter-but-valid record must still round-trip.
        Result<std::string> again = SerializeWrapper(**parsed);
        EXPECT_TRUE(again.ok()) << context->name << " prefix len " << len;
      } else {
        EXPECT_FALSE(parsed.status().ToString().empty());
      }
    }
  }
}

// Random single-byte corruption never crashes, and whatever still parses
// must itself round-trip.
TEST_F(RoundTripTest, CorruptedRecordsFailCleanly) {
  Rng rng(1717);
  std::vector<std::pair<std::string, const Context*>> records =
      SampleRecords(3);
  ASSERT_FALSE(records.empty());
  for (int trial = 0; trial < 400; ++trial) {
    const auto& [record, context] =
        records[rng.NextBounded(records.size())];
    if (record.empty()) continue;
    std::string corrupt = record;
    corrupt[rng.NextBounded(corrupt.size())] =
        static_cast<char>(rng.NextBounded(256));
    Result<WrapperPtr> parsed = DeserializeWrapper(corrupt);
    if (parsed.ok()) {
      Result<std::string> again = SerializeWrapper(**parsed);
      EXPECT_TRUE(again.ok()) << context->name << " corrupt=" << corrupt;
    } else {
      EXPECT_FALSE(parsed.status().ToString().empty());
    }
  }
}

TEST(WrapperStoreTest, MalformedRecordsAreRejected) {
  const char* malformed[] = {
      "",                      // Empty record.
      "XPATH",                 // Kind without payload tab.
      "LR",                    // Kind without payload tab.
      "LR\tonly-left",         // LR needs two fields.
      "HLRT\ta\tb",            // HLRT needs four fields.
      "HLRT\ta\tb\tc",         // Still one short.
      "BOGUS\tx",              // Unknown kind.
      "TABLE\t0",              // TABLE is not serializable either way.
      "XPATH\t((",             // Unparseable xpath expression.
      "LR\tbad\\q\tr",         // Invalid escape sequence.
  };
  for (const char* record : malformed) {
    Result<core::WrapperPtr> parsed = DeserializeWrapper(record);
    EXPECT_FALSE(parsed.ok()) << "record=" << record;
  }
}

// The TABLE inductor's wrapper is a pedagogical device bound to one page
// set; serializing it must be a clean error, not a crash.
TEST(WrapperStoreTest, TableWrapperIsNotSerializable) {
  core::PageSet pages = testing::ExampleTablePage();
  TableInductor inductor;
  NodeSet labels({testing::ExampleCell(pages, 1, 2)});
  Induction induction = inductor.Induce(pages, labels);
  ASSERT_NE(induction.wrapper, nullptr);
  Result<std::string> record = SerializeWrapper(*induction.wrapper);
  EXPECT_FALSE(record.ok());
}

}  // namespace
}  // namespace ntw::core
