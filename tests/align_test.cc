#include "align/edit_distance.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace ntw::align {
namespace {

std::vector<int> V(std::initializer_list<int> v) { return v; }

TEST(EditDistanceTest, Basics) {
  EXPECT_EQ(EditDistance(V({}), V({})), 0);
  EXPECT_EQ(EditDistance(V({1, 2, 3}), V({1, 2, 3})), 0);
  EXPECT_EQ(EditDistance(V({1, 2, 3}), V({})), 3);
  EXPECT_EQ(EditDistance(V({}), V({1, 2})), 2);
  EXPECT_EQ(EditDistance(V({1, 2, 3}), V({1, 9, 3})), 1);   // Substitute.
  EXPECT_EQ(EditDistance(V({1, 2, 3}), V({1, 3})), 1);      // Delete.
  EXPECT_EQ(EditDistance(V({1, 3}), V({1, 2, 3})), 1);      // Insert.
  EXPECT_EQ(EditDistance(V({1, 2, 3, 4}), V({4, 3, 2, 1})), 4);
}

TEST(EditDistanceTest, Symmetry) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a, b;
    for (size_t i = 0; i < rng.NextBounded(12); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    for (size_t i = 0; i < rng.NextBounded(12); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a, b, c;
    for (size_t i = 0; i < rng.NextBounded(10); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    for (size_t i = 0; i < rng.NextBounded(10); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    for (size_t i = 0; i < rng.NextBounded(10); ++i) {
      c.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceTest, BoundedByLengthDifference) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> a, b;
    for (size_t i = 0; i < rng.NextBounded(15); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(5)));
    }
    for (size_t i = 0; i < rng.NextBounded(15); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(5)));
    }
    int d = EditDistance(a, b);
    int gap = static_cast<int>(a.size() > b.size() ? a.size() - b.size()
                                                   : b.size() - a.size());
    EXPECT_GE(d, gap);
    EXPECT_LE(d, static_cast<int>(std::max(a.size(), b.size())));
  }
}

TEST(EditDistanceBoundedTest, AgreesBelowBound) {
  Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<int> a, b;
    for (size_t i = 0; i < rng.NextBounded(14); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    for (size_t i = 0; i < rng.NextBounded(14); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    int exact = EditDistance(a, b);
    int bounded = EditDistanceBounded(a, b, 100);
    EXPECT_EQ(exact, bounded);
  }
}

TEST(EditDistanceBoundedTest, CapsAtBound) {
  std::vector<int> a(20, 1);
  std::vector<int> b(20, 2);
  EXPECT_EQ(EditDistanceBounded(a, b, 5), 5);
  EXPECT_EQ(EditDistanceBounded(a, std::vector<int>{}, 5), 5);
}

TEST(EditDistanceBoundedTest, ExactWhenEqualToBoundMinusOne) {
  std::vector<int> a = {1, 2, 3, 4};
  std::vector<int> b = {1, 9, 3, 8};
  EXPECT_EQ(EditDistanceBounded(a, b, 3), 2);
}

TEST(LongestCommonSubstringTest, Basics) {
  CommonSubstring cs = LongestCommonSubstring(V({1, 2, 3, 4}), V({9, 2, 3, 8}));
  EXPECT_EQ(cs.length, 2);
  EXPECT_EQ(cs.tokens, V({2, 3}));
}

TEST(LongestCommonSubstringTest, EmptyInputs) {
  EXPECT_EQ(LongestCommonSubstring(V({}), V({1})).length, 0);
  EXPECT_EQ(LongestCommonSubstring(V({1}), V({})).length, 0);
}

TEST(LongestCommonSubstringTest, NoCommon) {
  CommonSubstring cs = LongestCommonSubstring(V({1, 2}), V({3, 4}));
  EXPECT_EQ(cs.length, 0);
  EXPECT_TRUE(cs.tokens.empty());
}

TEST(LongestCommonSubstringTest, WholeSequence) {
  CommonSubstring cs =
      LongestCommonSubstring(V({5, 6, 7}), V({5, 6, 7}));
  EXPECT_EQ(cs.length, 3);
  EXPECT_EQ(cs.tokens, V({5, 6, 7}));
}

TEST(LongestCommonSubstringTest, Contiguity) {
  // LCS (subsequence) would be {1,2,3}; common substring is only {1,2}.
  CommonSubstring cs =
      LongestCommonSubstring(V({1, 2, 9, 3}), V({1, 2, 3}));
  EXPECT_EQ(cs.length, 2);
}

TEST(LongestCommonSubstringTest, SubstringIsInBoth) {
  Rng rng(5);
  auto contains = [](const std::vector<int>& hay,
                     const std::vector<int>& needle) {
    if (needle.empty()) return true;
    for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
      if (std::equal(needle.begin(), needle.end(), hay.begin() + i)) {
        return true;
      }
    }
    return false;
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int> a, b;
    for (size_t i = 0; i < 3 + rng.NextBounded(10); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    for (size_t i = 0; i < 3 + rng.NextBounded(10); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    CommonSubstring cs = LongestCommonSubstring(a, b);
    EXPECT_EQ(static_cast<size_t>(cs.length), cs.tokens.size());
    EXPECT_TRUE(contains(a, cs.tokens));
    EXPECT_TRUE(contains(b, cs.tokens));
  }
}

TEST(LongestCommonSubsequenceTest, Basics) {
  EXPECT_EQ(LongestCommonSubsequence(V({1, 2, 9, 3}), V({1, 2, 3})), 3);
  EXPECT_EQ(LongestCommonSubsequence(V({}), V({1})), 0);
  EXPECT_EQ(LongestCommonSubsequence(V({1, 2}), V({2, 1})), 1);
}

TEST(LongestCommonSubsequenceTest, RelatesToEditDistanceForBinaryOps) {
  // For unit-cost insert/delete only (no substitution), dist = |a|+|b|-2·LCS.
  // With substitution allowed, EditDistance <= that quantity.
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int> a, b;
    for (size_t i = 0; i < rng.NextBounded(12); ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    for (size_t i = 0; i < rng.NextBounded(12); ++i) {
      b.push_back(static_cast<int>(rng.NextBounded(3)));
    }
    int lcs = LongestCommonSubsequence(a, b);
    EXPECT_LE(EditDistance(a, b),
              static_cast<int>(a.size() + b.size()) - 2 * lcs);
  }
}

}  // namespace
}  // namespace ntw::align
