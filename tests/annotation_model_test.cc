#include "core/annotation_model.h"

#include <cmath>

#include "gtest/gtest.h"

namespace ntw::core {
namespace {

NodeRef R(int node) { return NodeRef{0, node}; }

TEST(AnnotationModelTest, ParametersClamped) {
  AnnotationModel extreme(1.0, 0.0);
  EXPECT_LT(extreme.p(), 1.0);
  EXPECT_GT(extreme.r(), 0.0);
}

TEST(AnnotationModelTest, PerfectCoverScoresHighest) {
  AnnotationModel model(0.95, 0.5);
  NodeSet labels({R(1), R(2), R(3)});
  // X = L maximizes Eq. 4 when r > 1 − p.
  double exact = model.LogProb(labels, labels);
  double with_extra = model.LogProb(labels, NodeSet({R(1), R(2), R(3), R(4)}));
  double partial = model.LogProb(labels, NodeSet({R(1), R(2)}));
  EXPECT_GT(exact, with_extra);
  EXPECT_GT(exact, partial);
}

TEST(AnnotationModelTest, HitWeightIsLogOdds) {
  AnnotationModel model(0.9, 0.4);
  NodeSet labels({R(1)});
  double one_hit = model.LogProb(labels, NodeSet({R(1)}));
  EXPECT_NEAR(one_hit, std::log(0.4 / 0.1), 1e-12);
  double one_miss = model.LogProb(labels, NodeSet({R(2)}));
  EXPECT_NEAR(one_miss, std::log(0.6 / 0.9), 1e-12);
}

TEST(AnnotationModelTest, ScoreIsAdditiveInHitsAndMisses) {
  AnnotationModel model(0.9, 0.3);
  NodeSet labels({R(1), R(2), R(3), R(4)});
  // 2 hits + 3 misses.
  NodeSet x({R(1), R(2), R(10), R(11), R(12)});
  double expected = 2 * std::log(0.3 / 0.1) + 3 * std::log(0.7 / 0.9);
  EXPECT_NEAR(model.LogProb(labels, x), expected, 1e-12);
}

TEST(AnnotationModelTest, EmptyExtractionScoresZero) {
  // Eq. 4 is relative to constants; X = ∅ contributes nothing.
  AnnotationModel model(0.9, 0.3);
  EXPECT_DOUBLE_EQ(model.LogProb(NodeSet({R(1)}), NodeSet()), 0.0);
}

TEST(AnnotationModelTest, LowRecallAnnotatorToleratesMisses) {
  // With r = 0.24 the model must still prefer a full list X over the bare
  // label set when the list properties demand it — i.e. per-miss penalty
  // is small: log((1−r)/p) ≈ log(0.76/0.95) ≈ −0.22.
  AnnotationModel model(0.95, 0.24);
  NodeSet labels({R(1), R(2)});
  NodeSet list({R(1), R(2), R(3), R(4), R(5), R(6), R(7), R(8)});
  double full = model.LogProb(labels, list);
  double bare = model.LogProb(labels, labels);
  EXPECT_LT(bare - full, 2.0);  // Six extra nodes cost ≈ 1.3 nats.
}

TEST(AnnotationModelTest, EstimateRecoversRates) {
  // Universe of 100 nodes, truth = 20, labels hit 5 of them plus 2 FPs.
  std::vector<NodeRef> truth_refs, label_refs;
  for (int i = 0; i < 20; ++i) truth_refs.push_back(R(i));
  for (int i = 0; i < 5; ++i) label_refs.push_back(R(i));
  label_refs.push_back(R(50));
  label_refs.push_back(R(51));
  Result<AnnotationModel> model = AnnotationModel::Estimate(
      NodeSet(label_refs), NodeSet(truth_refs), 100);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->r(), 0.25, 1e-9);        // 5/20.
  EXPECT_NEAR(model->p(), 1.0 - 2.0 / 80.0, 1e-9);
}

TEST(AnnotationModelTest, AccumulatorPoolsAcrossSites) {
  AnnotationModel::Accumulator acc;
  acc.Observe(NodeSet({R(1)}), NodeSet({R(1), R(2)}), 10);
  acc.Observe(NodeSet({R(3), R(9)}), NodeSet({R(3), R(4)}), 10);
  Result<AnnotationModel> model = acc.Finish();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->r(), 2.0 / 4.0, 1e-9);
  EXPECT_NEAR(model->p(), 1.0 - 1.0 / 16.0, 1e-9);
}

TEST(AnnotationModelTest, EstimateFailsOnDegenerateTruth) {
  EXPECT_FALSE(AnnotationModel::Estimate(NodeSet(), NodeSet(), 10).ok());
}

}  // namespace
}  // namespace ntw::core
