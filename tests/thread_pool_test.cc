#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace ntw {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, DeterministicSlotWritesMatchSerialResult) {
  std::vector<int64_t> serial(500);
  for (size_t i = 0; i < serial.size(); ++i) {
    serial[i] = static_cast<int64_t>(i * i + 7);
  }
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> parallel(serial.size());
    pool.ParallelFor(parallel.size(), [&](size_t i) {
      parallel[i] = static_cast<int64_t>(i * i + 7);
    });
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 32;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](size_t) {
    pool.ParallelFor(kInner, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterDraining) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                         completed.fetch_add(1, std::memory_order_relaxed);
                       }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 63);  // Every other index still ran.
}

TEST(ThreadPoolTest, TaskGroupRunsEveryTask) {
  ThreadPool pool(3);
  ThreadPool::TaskGroup group(&pool);
  std::vector<std::atomic<int>> ran(10);
  for (size_t i = 0; i < ran.size(); ++i) {
    group.Add([&ran, i] { ran[i].fetch_add(1, std::memory_order_relaxed); });
  }
  group.Run();
  for (size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i].load(), 1);
  group.Run();  // Drained: running again is a no-op.
  for (size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i].load(), 1);
}

TEST(ThreadPoolTest, WidthClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  int calls = 0;
  pool.ParallelFor(5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, GlobalPoolConfigurableFromFlags) {
  const char* argv[] = {"tool", "--threads=3"};
  Result<Flags> flags = Flags::Parse(2, argv);
  ASSERT_TRUE(flags.ok());
  Result<int> width = ConfigureGlobalThreadPool(*flags);
  ASSERT_TRUE(width.ok());
  EXPECT_EQ(*width, 3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  EXPECT_EQ(ThreadPool::Global().threads(), 3);

  // 0 = hardware concurrency.
  const char* argv_hw[] = {"tool", "--threads=0"};
  Result<Flags> flags_hw = Flags::Parse(2, argv_hw);
  ASSERT_TRUE(flags_hw.ok());
  Result<int> hw = ConfigureGlobalThreadPool(*flags_hw);
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(*hw, HardwareConcurrency());

  // Negative values are rejected.
  const char* argv_bad[] = {"tool", "--threads=-2"};
  Result<Flags> flags_bad = Flags::Parse(2, argv_bad);
  ASSERT_TRUE(flags_bad.ok());
  EXPECT_FALSE(ConfigureGlobalThreadPool(*flags_bad).ok());

  ThreadPool::SetGlobalThreads(0);  // Restore the default for other tests.
}

}  // namespace
}  // namespace ntw
