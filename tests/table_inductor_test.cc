#include "core/table_inductor.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::ExampleCell;
using ::ntw::testing::ExampleTablePage;

class TableInductorTest : public ::testing::Test {
 protected:
  TableInductorTest() : pages_(ExampleTablePage()) {}

  NodeRef Cell(int row, int col) { return ExampleCell(pages_, row, col); }

  PageSet pages_;
  TableInductor inductor_;
};

TEST_F(TableInductorTest, CandidateUniverseIsAllCells) {
  EXPECT_EQ(TableInductor::CellTextNodes(pages_).size(), 20u);
}

TEST_F(TableInductorTest, CellCoordinates) {
  auto cell = TableInductor::CellOf(pages_, Cell(2, 3));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->col, 3);
  auto other = TableInductor::CellOf(pages_, Cell(2, 1));
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->row, cell->row);  // Same row id.
  auto third = TableInductor::CellOf(pages_, Cell(3, 1));
  ASSERT_TRUE(third.has_value());
  EXPECT_NE(third->row, cell->row);
}

TEST_F(TableInductorTest, EmptyLabelsYieldEmptyWrapper) {
  Induction induction = inductor_.Induce(pages_, NodeSet());
  EXPECT_TRUE(induction.extraction.empty());
}

// Example 1: "If L consists of a single label, TABLE learns a rule that
// returns just the label itself."
TEST_F(TableInductorTest, SingletonStaysSingleton) {
  NodeSet labels({Cell(1, 1)});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_EQ(induction.extraction, labels);
}

// "If L consists of labels all from the same row (or column), TABLE
// generalizes it to the entire row (or column)."
TEST_F(TableInductorTest, SameColumnGeneralizesToColumn) {
  Induction induction =
      inductor_.Induce(pages_, NodeSet({Cell(1, 1), Cell(2, 1)}));
  ASSERT_EQ(induction.extraction.size(), 5u);
  for (int row = 1; row <= 5; ++row) {
    EXPECT_TRUE(induction.extraction.Contains(Cell(row, 1)));
  }
}

TEST_F(TableInductorTest, SameRowGeneralizesToRow) {
  Induction induction =
      inductor_.Induce(pages_, NodeSet({Cell(4, 1), Cell(4, 2)}));
  ASSERT_EQ(induction.extraction.size(), 4u);
  for (int col = 1; col <= 4; ++col) {
    EXPECT_TRUE(induction.extraction.Contains(Cell(4, col)));
  }
}

// "If L consists of labels that span at least two rows and columns,
// TABLE generalizes it to the entire table."
TEST_F(TableInductorTest, SpanningLabelsGiveWholeTable) {
  Induction induction =
      inductor_.Induce(pages_, NodeSet({Cell(4, 2), Cell(5, 3)}));
  EXPECT_EQ(induction.extraction.size(), 20u);
}

// Example 3: the feature-based formulation. {n1, a4} has empty feature
// intersection, hence the whole table.
TEST_F(TableInductorTest, FeatureIntersectionSemantics) {
  Induction induction =
      inductor_.Induce(pages_, NodeSet({Cell(1, 1), Cell(4, 2)}));
  EXPECT_EQ(induction.extraction.size(), 20u);
}

TEST_F(TableInductorTest, ThreeLabelsOneColumn) {
  // {n1, n2, n4} generalizes to the first column (Example 3).
  Induction induction = inductor_.Induce(
      pages_, NodeSet({Cell(1, 1), Cell(2, 1), Cell(4, 1)}));
  EXPECT_EQ(induction.extraction.size(), 5u);
}

TEST_F(TableInductorTest, SubdivisionByRowAndColumn) {
  NodeSet labels({Cell(1, 1), Cell(2, 1), Cell(4, 1), Cell(4, 2),
                  Cell(5, 3)});
  std::vector<AttrHandle> attrs = inductor_.Attributes(pages_, labels);
  ASSERT_EQ(attrs.size(), 2u);

  // By row: {n1}, {n2}, {n4, a4}, {z5}.
  std::vector<NodeSet> by_row = inductor_.Subdivide(pages_, labels, attrs[0]);
  EXPECT_EQ(by_row.size(), 4u);
  // By column: {n1, n2, n4}, {a4}, {z5}.
  std::vector<NodeSet> by_col = inductor_.Subdivide(pages_, labels, attrs[1]);
  EXPECT_EQ(by_col.size(), 3u);
  bool found_column_group = false;
  for (const NodeSet& group : by_col) {
    if (group.size() == 3) {
      found_column_group = true;
      EXPECT_TRUE(group.Contains(Cell(1, 1)));
      EXPECT_TRUE(group.Contains(Cell(2, 1)));
      EXPECT_TRUE(group.Contains(Cell(4, 1)));
    }
  }
  EXPECT_TRUE(found_column_group);
}

TEST_F(TableInductorTest, WrapperToStringIsDescriptive) {
  Induction induction =
      inductor_.Induce(pages_, NodeSet({Cell(1, 1), Cell(2, 1)}));
  EXPECT_NE(induction.wrapper->ToString().find("col="), std::string::npos);
}

TEST_F(TableInductorTest, RowsDistinctAcrossPages) {
  // Two copies of the table on different pages: the same row index on
  // another page is a different row id, but columns align.
  PageSet two_pages;
  two_pages.AddPage(testing::MustParse(
      "<table><tr><td>a1</td><td>b1</td></tr></table>"));
  two_pages.AddPage(testing::MustParse(
      "<table><tr><td>a2</td><td>b2</td></tr></table>"));
  auto a1 = testing::FindText(two_pages, "a1")[0];
  auto a2 = testing::FindText(two_pages, "a2")[0];
  Induction induction = inductor_.Induce(two_pages, NodeSet({a1, a2}));
  // Common column 1, rows differ → the whole first column across pages.
  EXPECT_EQ(induction.extraction.size(), 2u);
  EXPECT_TRUE(induction.extraction.Contains(a1));
  EXPECT_TRUE(induction.extraction.Contains(a2));
}

}  // namespace
}  // namespace ntw::core
