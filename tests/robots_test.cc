// Unit tests for the crawl politeness parser (src/crawl/robots.cc):
// robots.txt directive parsing with mixed-case names, wildcard and
// specific agent-group selection, pattern matching ('*' runs, '$'
// anchors, longest-match-wins with allow on ties), the missing/404 →
// allow-all default, Crawl-delay, and the TTL'd per-domain cache with
// its anti-stampede pending mark.

#include <memory>
#include <string>

#include "crawl/robots.h"
#include "gtest/gtest.h"

namespace ntw::crawl {
namespace {

TEST(RobotsPathMatchTest, PrefixWildcardAndAnchor) {
  EXPECT_TRUE(RobotsPathMatch("/", "/anything"));
  EXPECT_TRUE(RobotsPathMatch("/private", "/private/x"));
  EXPECT_FALSE(RobotsPathMatch("/private", "/pub"));
  EXPECT_TRUE(RobotsPathMatch("/*.html", "/a/b/page.html"));
  EXPECT_TRUE(RobotsPathMatch("/*/tmp", "/a/tmp/file"));
  EXPECT_FALSE(RobotsPathMatch("/*/tmp", "/tmp"));
  // '$' anchors to the exact end of the path.
  EXPECT_TRUE(RobotsPathMatch("/exact$", "/exact"));
  EXPECT_FALSE(RobotsPathMatch("/exact$", "/exactly"));
  EXPECT_TRUE(RobotsPathMatch("/*.pdf$", "/docs/a.pdf"));
  EXPECT_FALSE(RobotsPathMatch("/*.pdf$", "/docs/a.pdf.html"));
}

TEST(ParseRobotsTest, MixedCaseDirectivesAndComments) {
  RobotsRules rules = ParseRobots(
      "# politeness file\n"
      "USER-AGENT: *\n"
      "DisAllow: /private   # no peeking\n"
      "ALLOW: /private/ok\n"
      "CRAWL-DELAY: 2.5\n",
      "ntw_crawl/1");
  EXPECT_FALSE(rules.Allows("/private/x"));
  EXPECT_TRUE(rules.Allows("/private/ok/page"));  // Longer allow wins.
  EXPECT_TRUE(rules.Allows("/public"));
  EXPECT_DOUBLE_EQ(rules.crawl_delay_seconds, 2.5);
}

TEST(ParseRobotsTest, SpecificAgentGroupBeatsWildcard) {
  const char kBody[] =
      "User-agent: *\n"
      "Disallow: /\n"
      "\n"
      "User-agent: ntw_crawl\n"
      "Disallow: /private\n";
  // The specific group applies to us: only /private is off-limits.
  RobotsRules ours = ParseRobots(kBody, "ntw_crawl/1");
  EXPECT_TRUE(ours.Allows("/page"));
  EXPECT_FALSE(ours.Allows("/private/x"));
  // Everyone else falls back to the wildcard group's Disallow: /.
  RobotsRules theirs = ParseRobots(kBody, "otherbot");
  EXPECT_FALSE(theirs.Allows("/page"));
}

TEST(ParseRobotsTest, ConsecutiveAgentLinesShareOneGroup) {
  RobotsRules rules = ParseRobots(
      "User-agent: somebot\n"
      "User-agent: ntw_crawl\n"
      "Disallow: /shared\n",
      "ntw_crawl/1");
  EXPECT_FALSE(rules.Allows("/shared/x"));
  EXPECT_TRUE(rules.Allows("/open"));
}

TEST(ParseRobotsTest, EmptyDisallowAllowsEverything) {
  RobotsRules rules = ParseRobots(
      "User-agent: *\n"
      "Disallow:\n",
      "ntw_crawl/1");
  EXPECT_TRUE(rules.rules.empty());
  EXPECT_TRUE(rules.Allows("/anything"));
}

TEST(ParseRobotsTest, MissingOrGarbageBodyAllowsAll) {
  // A 404'd robots.txt yields default-constructed rules; garbage parses
  // to no rules. Both allow everything.
  EXPECT_TRUE(RobotsRules().Allows("/any"));
  RobotsRules garbage = ParseRobots("<html>404 not found</html>", "ntw");
  EXPECT_TRUE(garbage.Allows("/any"));
  RobotsRules empty = ParseRobots("", "ntw");
  EXPECT_TRUE(empty.Allows("/any"));
}

TEST(ParseRobotsTest, LongestMatchWinsAllowOnTie) {
  RobotsRules rules = ParseRobots(
      "User-agent: *\n"
      "Disallow: /a/\n"
      "Allow: /a/b/\n",
      "ntw");
  EXPECT_FALSE(rules.Allows("/a/x"));
  EXPECT_TRUE(rules.Allows("/a/b/x"));  // /a/b/ is the longer match.
  // Equal-length allow and disallow: allow wins.
  RobotsRules tie = ParseRobots(
      "User-agent: *\n"
      "Disallow: /tie\n"
      "Allow: /tie\n",
      "ntw");
  EXPECT_TRUE(tie.Allows("/tie/x"));
}

TEST(RobotsCacheTest, FetchNeededThenHitThenTtlExpiry) {
  RobotsCache cache(10.0);
  std::shared_ptr<const RobotsRules> rules;
  EXPECT_EQ(cache.Lookup("example.com:80", 100.0, &rules),
            RobotsCache::State::kFetchNeeded);
  // A second caller while the first is fetching must not stampede.
  EXPECT_EQ(cache.Lookup("example.com:80", 100.0, &rules),
            RobotsCache::State::kPending);

  RobotsRules fetched;
  fetched.rules.push_back({"/private", false});
  cache.Put("example.com:80", fetched, 100.0);
  EXPECT_EQ(cache.Lookup("example.com:80", 105.0, &rules),
            RobotsCache::State::kHit);
  ASSERT_NE(rules, nullptr);
  EXPECT_FALSE(rules->Allows("/private/x"));

  // Within TTL: still a hit. Past TTL: refetch, and the stale entry
  // pends again for other callers.
  EXPECT_EQ(cache.Lookup("example.com:80", 109.9, &rules),
            RobotsCache::State::kHit);
  EXPECT_EQ(cache.Lookup("example.com:80", 110.1, &rules),
            RobotsCache::State::kFetchNeeded);
  EXPECT_EQ(cache.Lookup("example.com:80", 110.2, &rules),
            RobotsCache::State::kPending);
}

TEST(RobotsCacheTest, DomainsAreIndependent) {
  RobotsCache cache(10.0);
  std::shared_ptr<const RobotsRules> rules;
  EXPECT_EQ(cache.Lookup("a:80", 0.0, &rules),
            RobotsCache::State::kFetchNeeded);
  EXPECT_EQ(cache.Lookup("b:80", 0.0, &rules),
            RobotsCache::State::kFetchNeeded);
  cache.Put("a:80", RobotsRules(), 0.0);
  EXPECT_EQ(cache.Lookup("a:80", 1.0, &rules), RobotsCache::State::kHit);
  EXPECT_EQ(cache.Lookup("b:80", 1.0, &rules),
            RobotsCache::State::kPending);
}

}  // namespace
}  // namespace ntw::crawl
