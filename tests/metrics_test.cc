#include "core/metrics.h"

#include "gtest/gtest.h"

namespace ntw::core {
namespace {

NodeRef R(int node) { return NodeRef{0, node}; }

TEST(MetricsTest, PerfectExtraction) {
  NodeSet truth({R(1), R(2), R(3)});
  Prf prf = Evaluate(truth, truth);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
  EXPECT_EQ(prf.true_positives, 3u);
}

TEST(MetricsTest, OverGeneralized) {
  NodeSet truth({R(1), R(2)});
  NodeSet extraction({R(1), R(2), R(3), R(4), R(5), R(6), R(7), R(8)});
  Prf prf = Evaluate(extraction, truth);
  EXPECT_DOUBLE_EQ(prf.precision, 0.25);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_NEAR(prf.f1, 0.4, 1e-12);
}

TEST(MetricsTest, PartialRecall) {
  NodeSet truth({R(1), R(2), R(3), R(4)});
  NodeSet extraction({R(1), R(2)});
  Prf prf = Evaluate(extraction, truth);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
}

TEST(MetricsTest, EmptyExtraction) {
  Prf prf = Evaluate(NodeSet(), NodeSet({R(1)}));
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);  // Nothing wrongly extracted.
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
}

TEST(MetricsTest, EmptyTruthAndExtraction) {
  Prf prf = Evaluate(NodeSet(), NodeSet());
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
}

TEST(MetricsTest, DisjointSets) {
  Prf prf = Evaluate(NodeSet({R(1)}), NodeSet({R(2)}));
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  NodeSet truth({R(1), R(2), R(3), R(4)});
  NodeSet extraction({R(1), R(2), R(5), R(6)});
  Prf prf = Evaluate(extraction, truth);  // P = R = 0.5.
  EXPECT_DOUBLE_EQ(prf.f1, 0.5);
}

TEST(MetricsTest, MacroAverage) {
  Prf a = Evaluate(NodeSet({R(1)}), NodeSet({R(1)}));        // 1/1/1.
  Prf b = Evaluate(NodeSet({R(1)}), NodeSet({R(2)}));        // 0/0/0.
  Prf avg = MacroAverage({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.recall, 0.5);
  EXPECT_DOUBLE_EQ(avg.f1, 0.5);
}

TEST(MetricsTest, MacroAverageEmpty) {
  Prf avg = MacroAverage({});
  EXPECT_DOUBLE_EQ(avg.precision, 0.0);
}

TEST(MetricsTest, ToStringFormat) {
  Prf prf = Evaluate(NodeSet({R(1)}), NodeSet({R(1)}));
  EXPECT_EQ(ToString(prf), "precision=1.000 recall=1.000 f1=1.000");
}

}  // namespace
}  // namespace ntw::core
