#include "core/label.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

NodeRef R(int page, int node) { return NodeRef{page, node}; }

TEST(NodeSetTest, NormalizesOnConstruction) {
  NodeSet set({R(1, 5), R(0, 3), R(1, 5), R(0, 1)});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], R(0, 1));
  EXPECT_EQ(set[1], R(0, 3));
  EXPECT_EQ(set[2], R(1, 5));
}

TEST(NodeSetTest, InsertKeepsSortedUnique) {
  NodeSet set;
  set.Insert(R(0, 5));
  set.Insert(R(0, 2));
  set.Insert(R(0, 5));
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], R(0, 2));
  EXPECT_TRUE(set.Contains(R(0, 5)));
  EXPECT_FALSE(set.Contains(R(0, 3)));
}

TEST(NodeSetTest, SetOperations) {
  NodeSet a({R(0, 1), R(0, 2), R(0, 3)});
  NodeSet b({R(0, 2), R(0, 3), R(0, 4)});
  EXPECT_EQ(a.Union(b), NodeSet({R(0, 1), R(0, 2), R(0, 3), R(0, 4)}));
  EXPECT_EQ(a.Intersect(b), NodeSet({R(0, 2), R(0, 3)}));
  EXPECT_EQ(a.Difference(b), NodeSet({R(0, 1)}));
  EXPECT_EQ(a.IntersectSize(b), 2u);
}

TEST(NodeSetTest, SubsetChecks) {
  NodeSet a({R(0, 1), R(0, 3)});
  NodeSet b({R(0, 1), R(0, 2), R(0, 3)});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(NodeSet().IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(NodeSetTest, EmptySetOperations) {
  NodeSet empty;
  NodeSet a({R(0, 1)});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(a.Union(empty), a);
  EXPECT_EQ(a.Intersect(empty), empty);
  EXPECT_EQ(a.Difference(empty), a);
  EXPECT_EQ(empty.Difference(a), empty);
}

TEST(NodeSetTest, FingerprintDistinguishes) {
  NodeSet a({R(0, 1), R(0, 2)});
  NodeSet b({R(0, 1), R(0, 3)});
  NodeSet c({R(0, 1), R(0, 2)});
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(a.Fingerprint(), NodeSet().Fingerprint());
}

TEST(NodeSetTest, FingerprintOrderInvariant) {
  NodeSet a({R(1, 1), R(0, 2)});
  NodeSet b({R(0, 2), R(1, 1)});
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(NodeSetTest, ToStringFormat) {
  EXPECT_EQ(NodeSet({R(0, 3), R(1, 2)}).ToString(), "{(0,3),(1,2)}");
  EXPECT_EQ(NodeSet().ToString(), "{}");
}

TEST(PageSetTest, ResolveValidAndInvalid) {
  core::PageSet pages = testing::FigureOnePages();
  NodeSet texts = pages.AllTextNodes();
  ASSERT_FALSE(texts.empty());
  for (const NodeRef& ref : texts) {
    const html::Node* node = pages.Resolve(ref);
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(node->is_text());
  }
  EXPECT_EQ(pages.Resolve(R(-1, 0)), nullptr);
  EXPECT_EQ(pages.Resolve(R(99, 0)), nullptr);
  EXPECT_EQ(pages.Resolve(R(0, 100000)), nullptr);
}

TEST(PageSetTest, AllTextNodesCountsMatch) {
  core::PageSet pages = testing::FigureOnePages();
  EXPECT_EQ(pages.AllTextNodes().size(), pages.TextNodeCount());
  // Figure-1 pages: 3 records × 4 texts + 2 records × 4 texts = 20.
  EXPECT_EQ(pages.TextNodeCount(), 20u);
}

TEST(PageSetTest, RefsOrderedByPageThenNode) {
  core::PageSet pages = testing::FigureOnePages();
  NodeSet texts = pages.AllTextNodes();
  for (size_t i = 1; i < texts.size(); ++i) {
    EXPECT_TRUE(texts[i - 1] < texts[i]);
  }
}

}  // namespace
}  // namespace ntw::core
