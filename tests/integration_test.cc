// Cross-module integration tests: the full paper pipeline — generate
// sites, annotate automatically, learn models on a training half, run
// NTW/NAIVE on held-out sites — asserting the *shapes* of the paper's
// results (Sec. 7) on reduced dataset sizes so the suite stays fast.

#include "core/lr_inductor.h"
#include "core/multi_type.h"
#include "core/single_entity.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "datasets/disc.h"
#include "datasets/products.h"
#include "datasets/runner.h"
#include "gtest/gtest.h"

namespace ntw {
namespace {

using datasets::Dataset;
using datasets::RunConfig;
using datasets::RunSummary;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datasets::DealersConfig dealers_config;
    dealers_config.num_sites = 40;
    dealers_ = new Dataset(datasets::MakeDealers(dealers_config));
    disc_ = new Dataset(datasets::MakeDisc(datasets::DiscConfig{}));
  }

  static Dataset* dealers_;
  static Dataset* disc_;
};

Dataset* IntegrationTest::dealers_ = nullptr;
Dataset* IntegrationTest::disc_ = nullptr;

// Fig. 2(d): XPATH on DEALERS — NTW near-perfect, NAIVE recall 1 with
// collapsed precision.
TEST_F(IntegrationTest, XPathOnDealers) {
  core::XPathInductor inductor;
  RunConfig config;
  config.type = "name";
  Result<RunSummary> summary =
      datasets::RunSingleType(*dealers_, inductor, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->ntw_avg.f1, 0.9);
  EXPECT_GT(summary->ntw_avg.precision, 0.9);
  EXPECT_GT(summary->naive_avg.recall, 0.95);
  // Macro-averaged over 20 test sites; the paper-scale bench run shows a
  // much deeper collapse (~0.67 at 330 sites).
  EXPECT_LT(summary->naive_avg.precision, 0.92);
  EXPECT_GT(summary->ntw_avg.f1, summary->naive_avg.f1 + 0.05);
}

// Fig. 2(e): LR on DEALERS — same trend, more pronounced over-
// generalization for NAIVE; NTW high but LR-limited.
TEST_F(IntegrationTest, LrOnDealers) {
  core::LrInductor inductor;
  RunConfig config;
  config.type = "name";
  Result<RunSummary> summary =
      datasets::RunSingleType(*dealers_, inductor, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->ntw_avg.f1, 0.85);
  EXPECT_LT(summary->naive_avg.precision, 0.92);
  EXPECT_GT(summary->ntw_avg.f1, summary->naive_avg.f1 + 0.05);
}

// Fig. 2(f): XPATH on DISC.
TEST_F(IntegrationTest, XPathOnDisc) {
  core::XPathInductor inductor;
  RunConfig config;
  config.type = "track";
  Result<RunSummary> summary =
      datasets::RunSingleType(*disc_, inductor, config);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->ntw_avg.f1, 0.95);
  EXPECT_LT(summary->naive_avg.precision, 0.6);
}

// Sec. 7.3 ablation: neither NTW-L nor NTW-X alone beats full NTW.
TEST_F(IntegrationTest, AblationOrdering) {
  core::XPathInductor inductor;
  double f1_by_variant[3];
  for (core::RankerVariant variant :
       {core::RankerVariant::kFull, core::RankerVariant::kAnnotationOnly,
        core::RankerVariant::kListOnly}) {
    RunConfig config;
    config.type = "name";
    config.variant = variant;
    Result<RunSummary> summary =
        datasets::RunSingleType(*dealers_, inductor, config);
    ASSERT_TRUE(summary.ok());
    f1_by_variant[static_cast<int>(variant)] = summary->ntw_avg.f1;
  }
  // The full model dominates up to small-sample noise (20 test sites here;
  // the bench runs the paper-scale version).
  double full = f1_by_variant[static_cast<int>(core::RankerVariant::kFull)];
  EXPECT_GE(full + 0.05,
            f1_by_variant[static_cast<int>(
                core::RankerVariant::kAnnotationOnly)]);
  EXPECT_GE(full + 0.05,
            f1_by_variant[static_cast<int>(core::RankerVariant::kListOnly)]);
  EXPECT_GT(full, 0.9);
}

// TopDown and BottomUp give identical end-to-end results (they enumerate
// the same space); only the call counts differ.
TEST_F(IntegrationTest, EnumerationAlgorithmsEquivalentEndToEnd) {
  core::XPathInductor inductor;
  RunConfig top_down;
  top_down.type = "name";
  top_down.algorithm = core::EnumAlgorithm::kTopDown;
  RunConfig bottom_up = top_down;
  bottom_up.algorithm = core::EnumAlgorithm::kBottomUp;
  Result<RunSummary> td = datasets::RunSingleType(*dealers_, inductor, top_down);
  Result<RunSummary> bu =
      datasets::RunSingleType(*dealers_, inductor, bottom_up);
  ASSERT_TRUE(td.ok());
  ASSERT_TRUE(bu.ok());
  ASSERT_EQ(td->sites.size(), bu->sites.size());
  for (size_t i = 0; i < td->sites.size(); ++i) {
    EXPECT_DOUBLE_EQ(td->sites[i].ntw.f1, bu->sites[i].ntw.f1);
    EXPECT_EQ(td->sites[i].space_size, bu->sites[i].space_size);
    EXPECT_LE(td->sites[i].inductor_calls, bu->sites[i].inductor_calls);
  }
}

// Appendix A: multi-type NTW assembles records; NAIVE recall collapses.
TEST_F(IntegrationTest, MultiTypeOnDealers) {
  core::XPathInductor inductor;
  datasets::Split split = datasets::MakeSplit(*dealers_);
  Result<datasets::TrainedModels> name_models =
      datasets::LearnModels(*dealers_, "name", split.train);
  Result<datasets::TrainedModels> zip_models =
      datasets::LearnModels(*dealers_, "zip", split.train);
  ASSERT_TRUE(name_models.ok());
  ASSERT_TRUE(zip_models.ok());

  std::vector<core::Prf> ntw_names, naive_names;
  for (size_t index : split.test) {
    const datasets::SiteData& data = dealers_->sites[index];
    core::MultiTypeLabels labels;
    labels.type_names = {"name", "zip"};
    labels.labels = {data.annotations.at("name"), data.annotations.at("zip")};
    if (labels.labels[0].empty() || labels.labels[1].empty()) continue;
    std::vector<core::AnnotationModel> annotators = {
        name_models->annotation, zip_models->annotation};
    Result<core::MultiTypeOutcome> ntw = core::LearnMultiTypeNtw(
        inductor, data.site.pages, labels, annotators,
        name_models->publication);
    Result<core::MultiTypeOutcome> naive =
        core::LearnMultiTypeNaive(inductor, data.site.pages, labels);
    const core::NodeSet& truth = data.site.truth.at("name");
    ntw_names.push_back(core::Evaluate(
        ntw.ok() ? ntw->records.TypeNodes(0) : core::NodeSet(), truth));
    naive_names.push_back(core::Evaluate(
        naive.ok() ? naive->records.TypeNodes(0) : core::NodeSet(), truth));
  }
  ASSERT_FALSE(ntw_names.empty());
  core::Prf ntw_avg = core::MacroAverage(ntw_names);
  core::Prf naive_avg = core::MacroAverage(naive_names);
  EXPECT_GT(ntw_avg.f1, 0.9);
  EXPECT_LT(naive_avg.recall, 0.3);  // Fig. 3(a): recall close to 0.
}

// Three-type extraction (the paper's full name/address/phone schema of
// Sec. 2.1): on sites that render phone numbers for every record, the
// joint extractor assembles (name, zip, phone) records.
TEST_F(IntegrationTest, ThreeTypeExtraction) {
  datasets::DealersConfig config;
  config.num_sites = 12;
  config.phone_present_prob = 1.0;  // No missing fields (Appendix A notes
                                    // missing fields complicate assembly).
  Dataset dealers = datasets::MakeDealers(config);
  datasets::Split split = datasets::MakeSplit(dealers);
  Result<datasets::TrainedModels> name_models =
      datasets::LearnModels(dealers, "name", split.train);
  ASSERT_TRUE(name_models.ok());

  core::XPathInductor inductor;
  int evaluated = 0, perfect = 0;
  for (size_t index : split.test) {
    const datasets::SiteData& data = dealers.sites[index];
    auto phone_truth = data.site.truth.find("phone");
    // Only sites whose rendering script shows phone numbers qualify.
    if (phone_truth == data.site.truth.end() ||
        phone_truth->second.size() != data.site.truth.at("name").size()) {
      continue;
    }
    core::MultiTypeLabels labels;
    labels.type_names = {"name", "zip", "phone"};
    labels.labels = {data.annotations.at("name"),
                     data.annotations.at("zip"),
                     data.annotations.at("phone")};
    if (labels.labels[0].empty() || labels.labels[1].empty() ||
        labels.labels[2].empty()) {
      continue;
    }
    std::vector<core::AnnotationModel> annotators = {
        name_models->annotation, core::AnnotationModel(0.9, 0.9),
        core::AnnotationModel(0.99, 0.9)};
    Result<core::MultiTypeOutcome> outcome = core::LearnMultiTypeNtw(
        inductor, data.site.pages, labels, annotators,
        name_models->publication);
    if (!outcome.ok()) continue;
    ++evaluated;
    core::Prf records = core::EvaluateRecords(
        data.site.pages, outcome->records,
        {data.site.truth.at("name"), data.site.truth.at("zip"),
         phone_truth->second});
    if (records.f1 > 0.99) ++perfect;
  }
  ASSERT_GT(evaluated, 0);
  EXPECT_GE(perfect * 2, evaluated);  // Majority of sites fully correct.
}

// Appendix B.2: single-entity album extraction succeeds on every site.
TEST_F(IntegrationTest, SingleEntityAlbumsOnDisc) {
  core::XPathInductor inductor;
  int correct = 0, total = 0;
  for (const datasets::SiteData& data : disc_->sites) {
    const core::NodeSet& labels = data.annotations.at("album");
    if (labels.empty()) continue;
    ++total;
    Result<core::SingleEntityOutcome> outcome =
        core::LearnSingleEntity(inductor, data.site.pages, labels);
    if (!outcome.ok()) continue;
    // Correct when each extracted node's text equals that page's title.
    const core::NodeSet& truth = data.site.truth.at("album");
    bool good = !outcome->best.extraction.empty();
    for (const core::NodeRef& ref : outcome->best.extraction) {
      std::string want;
      for (const core::NodeRef& t : truth) {
        if (t.page == ref.page) {
          want = data.site.pages.Resolve(t)->text();
          break;
        }
      }
      if (data.site.pages.Resolve(ref)->text() != want) good = false;
    }
    if (good) ++correct;
  }
  EXPECT_EQ(correct, total);
  EXPECT_GT(total, 10);
}

}  // namespace
}  // namespace ntw
