#!/bin/sh
# End-to-end test of the command-line tools: generate a corpus, evaluate
# it, learn + save a wrapper, reload and re-apply it, and check the two
# extraction runs agree.
set -eu

BIN_DIR="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# 1. Generate and export a small corpus.
"$BIN_DIR/../tools/ntw_corpus" --dataset dealers --out "$WORK/corpus" \
    --sites 4 --pages 4 --seed 5 > "$WORK/corpus.log"
grep -q "exported DEALERS: 4 sites" "$WORK/corpus.log"
test -f "$WORK/corpus/site_0000/page_0000.html"
test -f "$WORK/corpus/site_0000/truth.tsv"

# 2. Evaluate the corpus end to end.
"$BIN_DIR/../tools/ntw_eval" --corpus "$WORK/corpus" --type name \
    --all-sites --per-site > "$WORK/eval.log"
grep -q "NTW" "$WORK/eval.log"
grep -q "NAIVE" "$WORK/eval.log"

# 3. Learn a wrapper for one site from its own truth as a dictionary
#    (names only; sed-decode the HTML-escaped ampersands).
SITE="$WORK/corpus/site_0001"
awk -F'\t' '$1 == "name" {print $2, $3}' "$SITE/truth.tsv" > /dev/null
# Build a dictionary from two distinct rendered names.
grep -ho '<u>[^<]*</u>\|<b>[^<]*</b>\|<strong>[^<]*</strong>\|<em>[^<]*</em>\|<span>[^<]*</span>\|<a [^>]*>[^<]*</a>' \
    "$SITE"/page_0000.html | sed 's/<[^>]*>//g; s/&amp;/\&/g' | head -40 \
    > "$WORK/candidates.txt"
head -1 "$WORK/candidates.txt" > "$WORK/dict.txt"
tail -1 "$WORK/candidates.txt" >> "$WORK/dict.txt"

"$BIN_DIR/../tools/ntw_extract" --pages "$SITE" --dict "$WORK/dict.txt" \
    --save-wrapper "$WORK/wrapper.txt" --quiet > "$WORK/learned.tsv" || {
  # Some candidate pairs cannot induce a wrapper (e.g. both map to the
  # same node); that is a usage error, not a tool failure — fall back to
  # a dictionary of all candidates.
  cp "$WORK/candidates.txt" "$WORK/dict.txt"
  "$BIN_DIR/../tools/ntw_extract" --pages "$SITE" --dict "$WORK/dict.txt" \
      --save-wrapper "$WORK/wrapper.txt" --quiet > "$WORK/learned.tsv"
}
test -s "$WORK/learned.tsv"
test -s "$WORK/wrapper.txt"

# 4. Reload the wrapper and re-apply: extraction must be identical.
"$BIN_DIR/../tools/ntw_extract" --pages "$SITE" \
    --load-wrapper "$WORK/wrapper.txt" --quiet > "$WORK/applied.tsv"
cmp "$WORK/learned.tsv" "$WORK/applied.tsv"

# 5. Serve-repository apply mode: the same wrapper addressed by
#    (site, attribute) through a WrapperRepository tree must extract the
#    same bytes again (CLI and daemon share this code path).
mkdir -p "$WORK/repo/site_0001"
cp "$WORK/wrapper.txt" "$WORK/repo/site_0001/name.wrapper"
"$BIN_DIR/../tools/ntw_extract" --pages "$SITE" --wrapper-dir "$WORK/repo" \
    --site site_0001 --attribute name --quiet > "$WORK/served.tsv"
cmp "$WORK/learned.tsv" "$WORK/served.tsv"

# A missing (site, attribute) key must fail with a clear error.
if "$BIN_DIR/../tools/ntw_extract" --pages "$SITE" \
    --wrapper-dir "$WORK/repo" --site site_0001 --attribute price \
    --quiet > /dev/null 2> "$WORK/missing.log"; then
  echo "cli_test: missing attribute should have failed" >&2
  exit 1
fi
grep -q "no wrapper for site" "$WORK/missing.log"

echo "cli_test OK"
