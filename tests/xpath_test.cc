#include <string>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace ntw::xpath {
namespace {

using ::ntw::testing::MustParse;

Expr MustParseXPath(const std::string& s) {
  Result<Expr> expr = ParseXPath(s);
  EXPECT_TRUE(expr.ok()) << s << ": " << expr.status().ToString();
  return std::move(expr).value();
}

std::vector<std::string> EvalTexts(const std::string& xpath,
                                   const html::Document& doc) {
  std::vector<std::string> out;
  for (const html::Node* node : Evaluate(MustParseXPath(xpath), doc)) {
    out.push_back(node->is_text() ? node->text() : node->tag());
  }
  return out;
}

// ----------------------------------------------------------------- Parser.

TEST(XPathParserTest, PaperExample) {
  Expr expr = MustParseXPath(
      "//div[@class='content']/table[1]/tr/td[2]/text()");
  ASSERT_EQ(expr.steps.size(), 5u);
  EXPECT_EQ(expr.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(expr.steps[0].tag, "div");
  ASSERT_EQ(expr.steps[0].attr_filters.size(), 1u);
  EXPECT_EQ(expr.steps[0].attr_filters[0].first, "class");
  EXPECT_EQ(expr.steps[0].attr_filters[0].second, "content");
  EXPECT_EQ(expr.steps[1].axis, Axis::kChild);
  EXPECT_EQ(expr.steps[1].child_number, 1);
  EXPECT_EQ(expr.steps[3].tag, "td");
  EXPECT_EQ(expr.steps[3].child_number, 2);
  EXPECT_EQ(expr.steps[4].test, NodeTest::kText);
}

TEST(XPathParserTest, RoundTripToString) {
  const std::string canonical =
      "//div[@class='content']/table[1]/tr/td[2]/text()";
  EXPECT_EQ(MustParseXPath(canonical).ToString(), canonical);
}

TEST(XPathParserTest, Wildcard) {
  Expr expr = MustParseXPath("//*/*[3]/text()");
  EXPECT_EQ(expr.steps[0].test, NodeTest::kAnyElement);
  EXPECT_EQ(expr.steps[1].child_number, 3);
}

TEST(XPathParserTest, RelativeShorthandMeansDescendant) {
  Expr expr = MustParseXPath("td/u");
  EXPECT_EQ(expr.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(expr.steps[1].axis, Axis::kChild);
}

TEST(XPathParserTest, DoubleQuotedAttrValue) {
  Expr expr = MustParseXPath("//div[@id=\"a b\"]");
  EXPECT_EQ(expr.steps[0].attr_filters[0].second, "a b");
}

TEST(XPathParserTest, MultipleAttrFiltersSorted) {
  Expr expr = MustParseXPath("//div[@z='1'][@a='2']");
  ASSERT_EQ(expr.steps[0].attr_filters.size(), 2u);
  EXPECT_EQ(expr.steps[0].attr_filters[0].first, "a");
  EXPECT_EQ(expr.steps[0].attr_filters[1].first, "z");
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("//div[").ok());
  EXPECT_FALSE(ParseXPath("//div[@a=x]").ok());   // Unquoted value.
  EXPECT_FALSE(ParseXPath("//div[0]").ok());      // Child numbers are >= 1.
  EXPECT_FALSE(ParseXPath("//div[1][2]").ok());   // Duplicate child number.
  EXPECT_FALSE(ParseXPath("//div/").ok());        // Trailing slash.
  EXPECT_FALSE(ParseXPath("//div[@a='x]").ok());  // Unterminated value.
}

// -------------------------------------------------------------- Evaluator.

constexpr char kListing[] =
    "<html><body>"
    "<div class='content'>"
    "<table><tr><td>n1</td><td>a1</td></tr>"
    "<tr><td>n2</td><td>a2</td></tr></table>"
    "<table><tr><td>x1</td><td>y1</td></tr></table>"
    "</div>"
    "<div class='footer'><table><tr><td>f1</td></tr></table></div>"
    "</body></html>";

TEST(XPathEvalTest, DescendantAndChild) {
  html::Document doc = MustParse(kListing);
  EXPECT_EQ(EvalTexts("//td/text()", doc),
            (std::vector<std::string>{"n1", "a1", "n2", "a2", "x1", "y1",
                                      "f1"}));
}

TEST(XPathEvalTest, AttributeFilter) {
  html::Document doc = MustParse(kListing);
  EXPECT_EQ(
      EvalTexts("//div[@class='content']/table[1]/tr/td[1]/text()", doc),
      (std::vector<std::string>{"n1", "n2"}));
}

TEST(XPathEvalTest, ChildNumberOnTag) {
  html::Document doc = MustParse(kListing);
  EXPECT_EQ(EvalTexts("//div[@class='content']/table[2]//td/text()", doc),
            (std::vector<std::string>{"x1", "y1"}));
}

TEST(XPathEvalTest, SecondColumn) {
  html::Document doc = MustParse(kListing);
  EXPECT_EQ(EvalTexts("//table/tr/td[2]/text()", doc),
            (std::vector<std::string>{"a1", "a2", "y1"}));
}

TEST(XPathEvalTest, WildcardStep) {
  html::Document doc = MustParse(kListing);
  EXPECT_EQ(EvalTexts("//body/*[@class='footer']//text()", doc),
            (std::vector<std::string>{"f1"}));
}

TEST(XPathEvalTest, NoMatchesReturnsEmpty) {
  html::Document doc = MustParse(kListing);
  EXPECT_TRUE(Evaluate(MustParseXPath("//span/text()"), doc).empty());
  EXPECT_TRUE(
      Evaluate(MustParseXPath("//div[@class='nope']"), doc).empty());
}

TEST(XPathEvalTest, ResultsAreDocumentOrderedNoDuplicates) {
  // '//' from multiple contexts can reach the same node; ensure dedup.
  html::Document doc = MustParse("<a><b><c>x</c></b></a>");
  std::vector<const html::Node*> nodes =
      Evaluate(MustParseXPath("//*//text()"), doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0]->text(), "x");
}

TEST(XPathEvalTest, TextChildNumberUsesSiblingPosition) {
  // <td>A<br>B<br>C</td>: text nodes at sibling positions 1, 3, 5.
  html::Document doc = MustParse("<td>A<br>B<br>C</td>");
  EXPECT_EQ(EvalTexts("//td/text()[3]", doc),
            (std::vector<std::string>{"B"}));
  EXPECT_EQ(EvalTexts("//td/text()[1]", doc),
            (std::vector<std::string>{"A"}));
}

TEST(XPathEvalTest, ElementResults) {
  html::Document doc = MustParse(kListing);
  std::vector<const html::Node*> tables =
      Evaluate(MustParseXPath("//table"), doc);
  EXPECT_EQ(tables.size(), 3u);
}

TEST(XPathEvalTest, DeepDescendantFromMidTree) {
  html::Document doc = MustParse(
      "<div id='a'><section><p><span>deep</span></p></section></div>");
  EXPECT_EQ(EvalTexts("//div[@id='a']//span/text()", doc),
            (std::vector<std::string>{"deep"}));
}

TEST(XPathEvalTest, StepMatchesAttrAndNumber) {
  html::Document doc =
      MustParse("<tr><td class='x'>1</td><td class='x'>2</td></tr>");
  EXPECT_EQ(EvalTexts("//td[2][@class='x']/text()", doc),
            (std::vector<std::string>{"2"}));
  EXPECT_TRUE(EvalTexts("//td[3][@class='x']/text()", doc).empty());
}

}  // namespace
}  // namespace ntw::xpath
