// Tests for the multi-reactor (sharded) server: cross-shard byte
// identity, the SO_REUSEPORT fallback accept relay, shard-0-only reload
// and tick delivery, and the hot-reload-under-load soak test that pins
// the epoch-reclamation contract (no torn responses, no 5xx, retired
// snapshots actually freed). DESIGN.md §11.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"

namespace ntw::serve {
namespace {

using std::chrono::milliseconds;

int64_t RepoCounter(const std::string& name) {
  return obs::Registry::Global().GetCounter(name)->value();
}

// ---------------------------------------------------------------------
// Raw-socket client (keep-alive, Content-Length framing).
// ---------------------------------------------------------------------

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_EQ(rc, 0) << "connect: " << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Send(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// One full response (headers + Content-Length body); "" on error.
  std::string ReadResponse() {
    while (true) {
      size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        size_t body_start = header_end + 4;
        size_t total = body_start + ContentLengthOf(header_end);
        if (buffer_.size() >= total) {
          std::string response = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return response;
        }
      }
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  size_t ContentLengthOf(size_t header_end) const {
    std::string lowered = buffer_.substr(0, header_end);
    for (char& c : lowered) c = static_cast<char>(::tolower(c));
    size_t pos = lowered.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<size_t>(
        std::strtoul(lowered.c_str() + pos + 15, nullptr, 10));
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string ExtractRequest(const std::string& site, const std::string& attr,
                           const std::string& html) {
  return "POST /extract?site=" + site + "&attribute=" + attr +
         " HTTP/1.1\r\nHost: test\r\nContent-Length: " +
         std::to_string(html.size()) + "\r\n\r\n" + html;
}

// ---------------------------------------------------------------------
// Harness: repository on disk + sharded server with per-shard services.
// ---------------------------------------------------------------------

class ShardedServeTest : public ::testing::Test {
 protected:
  ShardedServeTest()
      : root_(::testing::TempDir() + "ntw_sharded_serve_" +
              std::to_string(::getpid())),
        repository_(root_) {
    std::filesystem::remove_all(root_);
    EXPECT_TRUE(MakeDirs(root_ + "/example.com").ok());
    PublishWrapper("XPATH\t//li/text()\n");
    EXPECT_TRUE(repository_.Load().ok());
  }

  ~ShardedServeTest() override { std::filesystem::remove_all(root_); }

  /// Atomically replaces the wrapper file (write-temp-then-rename, the
  /// publish discipline the repository documents) so a concurrent Load()
  /// never reads a half-written record.
  void PublishWrapper(const std::string& record) {
    std::string tmp = root_ + "/example.com/.name.wrapper.tmp";
    ASSERT_TRUE(WriteFile(tmp, record).ok());
    std::error_code ec;
    std::filesystem::rename(tmp, root_ + "/example.com/name.wrapper", ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  struct RunningServer {
    std::vector<std::unique_ptr<ExtractService>> services;
    std::unique_ptr<HttpServer> server;
    std::thread thread;

    ~RunningServer() { Stop(); }
    void Stop() {
      if (thread.joinable()) {
        server->RequestShutdown();
        thread.join();
      }
    }
  };

  /// Starts an inline (no worker pool) sharded server over the fixture
  /// repository, one ExtractService per shard.
  std::unique_ptr<RunningServer> Start(
      int shards, bool force_relay = false,
      std::function<void(HttpServer&)> configure = nullptr) {
    auto running = std::make_unique<RunningServer>();
    RunningServer* r = running.get();
    ServerOptions options;
    options.port = 0;
    options.shards = shards;
    options.force_accept_relay = force_relay;
    options.pool = nullptr;
    r->server = std::make_unique<HttpServer>(
        options, HttpServer::HandlerFactory([this, r](int shard) {
          ExtractService::Options service_options;
          service_options.shard = shard;
          r->services.push_back(std::make_unique<ExtractService>(
              &repository_, nullptr, service_options));
          ExtractService* service = r->services.back().get();
          return [service](const HttpRequest& request) {
            return service->Handle(request);
          };
        }));
    Status bound = r->server->Bind();
    EXPECT_TRUE(bound.ok()) << bound.ToString();
    if (configure) configure(*r->server);
    r->thread = std::thread([r] { r->server->Run(); });
    return running;
  }

  std::string root_;
  WrapperRepository repository_;
};

// ---------------------------------------------------------------------
// Byte identity across shard counts.
// ---------------------------------------------------------------------

TEST_F(ShardedServeTest, ResponsesAreByteIdenticalAcrossShardCounts) {
  const std::vector<std::string> pages = {
      "<html><ul><li>alpha</li><li>beta</li></ul></html>",
      "<html><ul><li>gamma</li></ul></html>",
      "<html><p>no list items</p></html>",
  };
  std::vector<std::vector<std::string>> responses_by_config;
  for (int shards : {1, 2, 4}) {
    auto running = Start(shards);
    Client client(running->server->port());
    std::vector<std::string> responses;
    for (const std::string& page : pages) {
      ASSERT_TRUE(client.Send(ExtractRequest("example.com", "name", page)));
      std::string response = client.ReadResponse();
      ASSERT_FALSE(response.empty());
      EXPECT_EQ(response.compare(0, 12, "HTTP/1.1 200"), 0) << response;
      responses.push_back(std::move(response));
    }
    responses_by_config.push_back(std::move(responses));
  }
  // Every shard count produces the exact same wire bytes.
  for (size_t config = 1; config < responses_by_config.size(); ++config) {
    EXPECT_EQ(responses_by_config[config], responses_by_config[0]);
  }
}

// ---------------------------------------------------------------------
// Fallback accept relay.
// ---------------------------------------------------------------------

TEST_F(ShardedServeTest, AcceptRelayServesConcurrentConnections) {
  auto running = Start(/*shards=*/4, /*force_relay=*/true);
  EXPECT_TRUE(running->server->using_accept_relay());

  // More connections than shards so the round-robin wraps; each issues
  // several keep-alive requests.
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::atomic<int> ok_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  const std::string page = "<html><ul><li>relay</li></ul></html>";
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(running->server->port());
      for (int i = 0; i < kRequestsEach; ++i) {
        if (!client.Send(ExtractRequest("example.com", "name", page))) return;
        std::string response = client.ReadResponse();
        if (response.compare(0, 12, "HTTP/1.1 200") == 0) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_responses.load(), kClients * kRequestsEach);
}

TEST_F(ShardedServeTest, SingleShardNeverUsesRelay) {
  auto running = Start(/*shards=*/1);
  EXPECT_FALSE(running->server->using_accept_relay());
}

// ---------------------------------------------------------------------
// Reload delivery: exactly once, on shard 0.
// ---------------------------------------------------------------------

TEST_F(ShardedServeTest, ReloadHookRunsExactlyOncePerRequestAcrossShards) {
  std::atomic<int> reloads{0};
  auto running =
      Start(/*shards=*/4, /*force_relay=*/false, [&](HttpServer& server) {
        server.SetReloadHook([&reloads] {
          reloads.fetch_add(1, std::memory_order_relaxed);
        });
      });
  for (int round = 1; round <= 3; ++round) {
    running->server->RequestReload();
    auto deadline = std::chrono::steady_clock::now() + milliseconds(2000);
    while (reloads.load(std::memory_order_relaxed) < round &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EXPECT_EQ(reloads.load(std::memory_order_relaxed), round);
  }
  // No shard spuriously re-runs the hook afterwards.
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(reloads.load(std::memory_order_relaxed), 3);
}

TEST_F(ShardedServeTest, TickHookRunsOnOneShardOnly) {
  std::atomic<int> ticks{0};
  ServerOptions options;
  // Start() hardcodes defaults; configure tick cadence via a dedicated
  // server here.
  std::vector<std::unique_ptr<ExtractService>> services;
  options.port = 0;
  options.shards = 4;
  options.pool = nullptr;
  options.tick_interval_ms = 20;
  HttpServer server(options, HttpServer::HandlerFactory([&](int shard) {
                      ExtractService::Options service_options;
                      service_options.shard = shard;
                      services.push_back(std::make_unique<ExtractService>(
                          &repository_, nullptr, service_options));
                      ExtractService* service = services.back().get();
                      return [service](const HttpRequest& request) {
                        return service->Handle(request);
                      };
                    }));
  ASSERT_TRUE(server.Bind().ok());
  server.SetTickHook(
      [&ticks] { ticks.fetch_add(1, std::memory_order_relaxed); });
  std::thread thread([&server] { server.Run(); });
  std::this_thread::sleep_for(milliseconds(400));
  server.RequestShutdown();
  thread.join();
  // One shard ticking at 20ms over 400ms lands well under 30 ticks; four
  // shards all ticking would land near 80. The bound separates the two
  // regimes with slack for scheduler jitter in either direction.
  EXPECT_GE(ticks.load(), 2);
  EXPECT_LE(ticks.load(), 30);
}

// ---------------------------------------------------------------------
// Soak: hot reload under sustained multi-shard load.
// ---------------------------------------------------------------------

// Continuous keep-alive traffic across 4 shards while the wrapper
// directory is republished and reloaded repeatedly. Asserts:
//   - zero non-200 responses (in particular zero 5xx),
//   - zero torn responses: every response pairs the wrapper record with
//     that wrapper's values — a response mixing generations would pair
//     record A with values B,
//   - every retired snapshot is actually freed once readers quiesce
//     (counter-based; the TSan CI job gives this test race-detection
//     teeth).
TEST_F(ShardedServeTest, HotReloadUnderLoadServesConsistentResponses) {
  constexpr char kPage[] =
      "<html><ul><li>alpha</li><li>beta</li></ul><b>bold</b></html>";
  // Variant A extracts the list items, variant B the bold text. A torn
  // response would pair A's record with B's values or vice versa.
  constexpr char kRecordA[] = "XPATH\t//li/text()\n";
  constexpr char kRecordB[] = "XPATH\t//b/text()\n";
  constexpr char kMarkerA[] = "//li/text()";
  constexpr char kMarkerB[] = "//b/text()";
  constexpr char kValuesA[] = "\"values\":[\"alpha\",\"beta\"]";
  constexpr char kValuesB[] = "\"values\":[\"bold\"]";

  int64_t retired_before = RepoCounter("ntw.repo.snapshots_retired");
  int64_t freed_before = RepoCounter("ntw.repo.snapshots_freed");

  std::atomic<int> reloads{0};
  auto running =
      Start(/*shards=*/4, /*force_relay=*/false, [&](HttpServer& server) {
        server.SetReloadHook([this, &reloads] {
          Status status = repository_.Load();
          EXPECT_TRUE(status.ok()) << status.ToString();
          reloads.fetch_add(1, std::memory_order_relaxed);
        });
      });

  std::atomic<bool> stop{false};
  std::atomic<int64_t> responses_ok{0};
  std::atomic<int64_t> responses_bad{0};
  std::atomic<int64_t> responses_torn{0};
  const std::string request = ExtractRequest("example.com", "name", kPage);

  constexpr int kTrafficThreads = 4;
  std::vector<std::thread> traffic;
  traffic.reserve(kTrafficThreads);
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&] {
      Client client(running->server->port());
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Send(request)) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::string response = client.ReadResponse();
        if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        bool has_a = response.find(kMarkerA) != std::string::npos;
        bool has_b = response.find(kMarkerB) != std::string::npos;
        bool values_a = response.find(kValuesA) != std::string::npos;
        bool values_b = response.find(kValuesB) != std::string::npos;
        bool coherent = (has_a && !has_b && values_a && !values_b) ||
                        (has_b && !has_a && values_b && !values_a);
        if (!coherent) {
          responses_torn.fetch_add(1, std::memory_order_relaxed);
        } else {
          responses_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Republish + reload, alternating variants; wait for each reload to be
  // consumed so every cycle really swaps a snapshot under live traffic.
  constexpr int kCycles = 25;
  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    PublishWrapper(cycle % 2 == 0 ? kRecordA : kRecordB);
    running->server->RequestReload();
    auto deadline = std::chrono::steady_clock::now() + milliseconds(2000);
    while (reloads.load(std::memory_order_relaxed) < cycle &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    ASSERT_GE(reloads.load(std::memory_order_relaxed), cycle)
        << "reload " << cycle << " never ran";
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : traffic) thread.join();
  running->Stop();

  EXPECT_EQ(responses_bad.load(), 0);
  EXPECT_EQ(responses_torn.load(), 0);
  EXPECT_GT(responses_ok.load(), 0);

  // Every reload retired the previous snapshot; with the server drained
  // no reader pin remains, so one reclaim pass frees everything retired.
  repository_.ReclaimRetired();
  int64_t retired = RepoCounter("ntw.repo.snapshots_retired") - retired_before;
  int64_t freed = RepoCounter("ntw.repo.snapshots_freed") - freed_before;
  EXPECT_EQ(retired, kCycles);
  EXPECT_EQ(freed, retired);
}

}  // namespace
}  // namespace ntw::serve
