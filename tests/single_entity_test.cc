#include "core/single_entity.h"

#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

// Album pages: one title per page (in <h2>), with the title repeated in
// reviews and sometimes matching a track — the Appendix B.2 setting.
PageSet AlbumPages() {
  auto page = [](const std::string& title, const std::string& track1,
                 const std::string& review_mention) {
    return "<html><body><div class='hd'><h2>" + title +
           "</h2><p>by Artist</p></div>"
           "<ul class='tracks'><li>" +
           track1 +
           "</li><li>Silent Road</li><li>Golden Rain</li></ul>"
           "<div class='reviews'><p>Great record. <b>" +
           review_mention + "</b> is a classic.</p></div></body></html>";
  };
  PageSet pages;
  // Page 0: title track! The title appears twice (h2 and track list).
  pages.AddPage(MustParse(page("Abbey Road", "Abbey Road", "Abbey Road")));
  pages.AddPage(MustParse(page("Mi Plan", "Sweet Night", "Mi Plan")));
  pages.AddPage(
      MustParse(page("Bach for Breakfast", "Morning Air", "Silent Road")));
  return pages;
}

// The noisy album annotator: exact matches of known titles anywhere.
NodeSet AlbumLabels(const PageSet& pages) {
  NodeSet labels;
  for (const char* title :
       {"Abbey Road", "Mi Plan", "Bach for Breakfast"}) {
    for (const NodeRef& ref : FindText(pages, title)) labels.Insert(ref);
  }
  return labels;
}

TEST(SingleEntityTest, AnnotationsAreNoisy) {
  PageSet pages = AlbumPages();
  NodeSet labels = AlbumLabels(pages);
  // h2 titles (3) + title track (1) + review mentions (2) = 6.
  EXPECT_EQ(labels.size(), 6u);
}

TEST(SingleEntityTest, LearnsTheTitleWrapper) {
  PageSet pages = AlbumPages();
  XPathInductor inductor;
  Result<SingleEntityOutcome> outcome =
      LearnSingleEntity(inductor, pages, AlbumLabels(pages));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The winner extracts exactly one node per page, and it is the title.
  ASSERT_EQ(outcome->best.extraction.size(), 3u);
  for (const NodeRef& ref : outcome->best.extraction) {
    const html::Node* node = pages.Resolve(ref);
    EXPECT_EQ(node->parent()->tag(), "h2") << node->text();
  }
  EXPECT_EQ(outcome->covered_labels, 3u);
}

TEST(SingleEntityTest, OverGeneralizedWrappersDiscarded) {
  PageSet pages = AlbumPages();
  XPathInductor inductor;
  Result<SingleEntityOutcome> outcome =
      LearnSingleEntity(inductor, pages, AlbumLabels(pages));
  ASSERT_TRUE(outcome.ok());
  for (const Candidate& candidate : outcome->tied) {
    int last_page = -1;
    for (const NodeRef& ref : candidate.extraction) {
      EXPECT_NE(ref.page, last_page) << "multiple nodes on one page";
      last_page = ref.page;
    }
  }
}

TEST(SingleEntityTest, WorksWithBothEnumerationAlgorithms) {
  PageSet pages = AlbumPages();
  XPathInductor inductor;
  NodeSet labels = AlbumLabels(pages);
  Result<SingleEntityOutcome> top_down =
      LearnSingleEntity(inductor, pages, labels, EnumAlgorithm::kTopDown);
  Result<SingleEntityOutcome> bottom_up =
      LearnSingleEntity(inductor, pages, labels, EnumAlgorithm::kBottomUp);
  ASSERT_TRUE(top_down.ok());
  ASSERT_TRUE(bottom_up.ok());
  EXPECT_EQ(top_down->best.extraction, bottom_up->best.extraction);
  EXPECT_EQ(top_down->covered_labels, bottom_up->covered_labels);
}

TEST(SingleEntityTest, MultipleCorrectWrappersTie) {
  // Title in <h2> AND in a details tab: two consistent wrappers tie at
  // full coverage — the paper saw exactly this.
  auto page = [](const std::string& title) {
    return "<html><body><h2>" + title + "</h2><div class='details'>" +
           "<span class='val'>" + title + "</span></div>" +
           "<ul><li>track one</li><li>track two</li></ul></body></html>";
  };
  PageSet pages;
  pages.AddPage(MustParse(page("Abbey Road")));
  pages.AddPage(MustParse(page("Mi Plan")));
  NodeSet labels;
  for (const char* title : {"Abbey Road", "Mi Plan"}) {
    for (const NodeRef& ref : FindText(pages, title)) labels.Insert(ref);
  }
  XPathInductor inductor;
  Result<SingleEntityOutcome> outcome =
      LearnSingleEntity(inductor, pages, labels);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->tied.size(), 2u);
  for (const Candidate& candidate : outcome->tied) {
    EXPECT_EQ(candidate.extraction.size(), 2u);
  }
}

TEST(SingleEntityTest, FailsWithoutLabels) {
  PageSet pages = AlbumPages();
  XPathInductor inductor;
  EXPECT_FALSE(LearnSingleEntity(inductor, pages, NodeSet()).ok());
}

TEST(SingleEntityTest, ListLikeLabelsFallBackToPositionWrappers) {
  // Two labeled nodes on the same page: the wrapper trained on both
  // extracts both and is discarded; only the position-specific singleton
  // wrappers (li[1], li[2]) survive, each covering one label.
  PageSet pages;
  pages.AddPage(
      MustParse("<ul><li>Same Name</li><li>Same Name</li></ul>"));
  NodeSet labels(FindText(pages, "Same Name"));
  ASSERT_EQ(labels.size(), 2u);
  XPathInductor inductor;
  Result<SingleEntityOutcome> outcome =
      LearnSingleEntity(inductor, pages, labels);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->covered_labels, 1u);
  EXPECT_GE(outcome->tied.size(), 2u);
  EXPECT_EQ(outcome->best.extraction.size(), 1u);
}

}  // namespace
}  // namespace ntw::core
