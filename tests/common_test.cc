#include <set>
#include <unordered_set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace ntw {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::ParseError("bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.message(), "bad token");
  EXPECT_EQ(status.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kParseError,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  NTW_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result.

Result<int> ParseNonNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParseNonNegative(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParseNonNegative(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> ChainTwice(int x) {
  NTW_ASSIGN_OR_RETURN(int doubled, ParseNonNegative(x));
  NTW_ASSIGN_OR_RETURN(int quadrupled, ParseNonNegative(doubled));
  return quadrupled;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = ChainTwice(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20);
  EXPECT_FALSE(ChainTwice(-1).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, InRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 500; ++i) {
    size_t pick = rng.NextWeighted(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- Strings.

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToUpper("AbC-12"), "ABC-12");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a \n\t b  c "), "a b c");
  EXPECT_EQ(CollapseWhitespace("abc"), "abc");
  EXPECT_EQ(CollapseWhitespace("   "), "");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWords) {
  EXPECT_EQ(SplitWords("  one two\tthree "),
            (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_TRUE(SplitWords("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Office DEPOT store", "office depot"));
  EXPECT_FALSE(ContainsIgnoreCase("Office", "Office Depot"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, ContainsWordRequiresBoundaries) {
  EXPECT_TRUE(ContainsWordIgnoreCase("Visit BestBuy today", "bestbuy"));
  EXPECT_TRUE(ContainsWordIgnoreCase("BestBuy", "bestbuy"));
  EXPECT_FALSE(ContainsWordIgnoreCase("BestBuyify", "bestbuy"));
  EXPECT_FALSE(ContainsWordIgnoreCase("xBestBuy", "bestbuy"));
  EXPECT_TRUE(ContainsWordIgnoreCase("(BestBuy)", "bestbuy"));
  EXPECT_FALSE(ContainsWordIgnoreCase("any", ""));
}

TEST(StringsTest, ContainsWordMultiword) {
  EXPECT_TRUE(
      ContainsWordIgnoreCase("An Office Depot store", "office depot"));
  EXPECT_FALSE(
      ContainsWordIgnoreCase("An OfficeX Depot store", "office depot"));
}

TEST(StringsTest, HtmlEscape) {
  EXPECT_EQ(HtmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace ntw
