#include "text/char_view.h"

#include "gtest/gtest.h"
#include "html/parser.h"
#include "test_util.h"

namespace ntw::text {
namespace {

using ::ntw::testing::MustParse;

TEST(CharViewTest, StreamContainsMarkupAndText) {
  html::Document doc = MustParse("<td><u>NAME</u><br>ADDR</td>");
  CharView view(doc);
  EXPECT_EQ(view.stream(), "<td><u>NAME</u><br>ADDR</td>");
}

TEST(CharViewTest, AttributesInStream) {
  html::Document doc = MustParse("<a href='x'>t</a>");
  CharView view(doc);
  EXPECT_EQ(view.stream(), "<a href=\"x\">t</a>");
}

TEST(CharViewTest, SpansPointAtText) {
  html::Document doc = MustParse("<td><u>NAME</u><br>ADDR</td>");
  CharView view(doc);
  ASSERT_EQ(view.spans().size(), 2u);
  const TextSpan& name = view.spans()[0];
  EXPECT_EQ(view.stream().substr(name.begin, name.end - name.begin), "NAME");
  const TextSpan& addr = view.spans()[1];
  EXPECT_EQ(view.stream().substr(addr.begin, addr.end - addr.begin), "ADDR");
}

TEST(CharViewTest, SpanForNode) {
  html::Document doc = MustParse("<td><u>NAME</u><br>ADDR</td>");
  CharView view(doc);
  const html::Node* name_node = doc.text_nodes()[0];
  const TextSpan* span = view.SpanForNode(name_node->preorder_index());
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->node, name_node);
  // An element node has no span.
  EXPECT_EQ(view.SpanForNode(doc.root()->child(0)->preorder_index()),
            nullptr);
  EXPECT_EQ(view.SpanForNode(-1), nullptr);
  EXPECT_EQ(view.SpanForNode(9999), nullptr);
}

TEST(CharViewTest, BeforeAfterContexts) {
  html::Document doc = MustParse("<td><u>NAME</u><br>ADDR</td>");
  CharView view(doc);
  const TextSpan& name = view.spans()[0];
  EXPECT_EQ(view.Before(name, 3), "<u>");
  EXPECT_EQ(view.Before(name, 7), "<td><u>");
  EXPECT_EQ(view.Before(name, 100), "<td><u>");  // Clipped at page start.
  EXPECT_EQ(view.After(name, 4), "</u>");
  EXPECT_EQ(view.After(name, 100), "</u><br>ADDR</td>");
}

TEST(CharViewTest, LrDelimitersOfFigureOne) {
  core::PageSet pages = testing::FigureOnePages();
  CharView view(pages.page(0));
  // The name nodes all sit between "<u>" and "</u>".
  EXPECT_EQ(view.Before(view.spans()[0], 3), "<u>");
  EXPECT_EQ(view.After(view.spans()[0], 4), "</u>");
}

TEST(CommonAffixTest, Suffix) {
  EXPECT_EQ(LongestCommonSuffix({"abcde", "xycde", "zcde"}), "cde");
  EXPECT_EQ(LongestCommonSuffix({"abc", "abc"}), "abc");
  EXPECT_EQ(LongestCommonSuffix({"abc", "xyz"}), "");
  EXPECT_EQ(LongestCommonSuffix({"abc"}), "abc");
  EXPECT_EQ(LongestCommonSuffix({}), "");
  EXPECT_EQ(LongestCommonSuffix({"abc", ""}), "");
}

TEST(CommonAffixTest, Prefix) {
  EXPECT_EQ(LongestCommonPrefix({"abcde", "abxyz", "abq"}), "ab");
  EXPECT_EQ(LongestCommonPrefix({"same", "same"}), "same");
  EXPECT_EQ(LongestCommonPrefix({"a", "b"}), "");
  EXPECT_EQ(LongestCommonPrefix({}), "");
  EXPECT_EQ(LongestCommonPrefix({"", "abc"}), "");
}

TEST(CommonAffixTest, SuffixShrinksMonotonically) {
  // Adding a string can only shorten the common suffix — the property
  // behind LR monotonicity.
  std::vector<std::string_view> strings = {"xx</u>", "yy</u>"};
  std::string two = LongestCommonSuffix(strings);
  strings.push_back("zz>");
  std::string three = LongestCommonSuffix(strings);
  EXPECT_TRUE(two.size() >= three.size());
  EXPECT_TRUE(two.ends_with(three));
}

}  // namespace
}  // namespace ntw::text
