#include "core/xpath_inductor.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "xpath/parser.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

class XPathInductorTest : public ::testing::Test {
 protected:
  XPathInductorTest() : pages_(FigureOnePages()) {}

  NodeRef Node(const std::string& text) {
    std::vector<NodeRef> found = FindText(pages_, text);
    EXPECT_EQ(found.size(), 1u) << text;
    return found[0];
  }

  PageSet pages_;
  XPathInductor inductor_;
};

TEST_F(XPathInductorTest, EmptyLabelsExtractNothing) {
  EXPECT_TRUE(inductor_.Induce(pages_, NodeSet()).extraction.empty());
}

TEST_F(XPathInductorTest, TwoNamesAcrossRowsLearnNameColumn) {
  // Labels in different row positions: the tr child number is dropped and
  // the rule generalizes to every record's name.
  NodeSet labels(
      {Node("WOODLAND FURNITURE"), Node("KIDDIE WORLD CENTER")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_EQ(induction.extraction.size(), 5u);
  std::string rule = induction.wrapper->ToString();
  EXPECT_NE(rule.find("/u"), std::string::npos) << rule;
  EXPECT_NE(rule.find("@class='dealerlinks'"), std::string::npos) << rule;
  EXPECT_NE(rule.find("/tr/"), std::string::npos) << rule;  // No tr[k].
}

TEST_F(XPathInductorTest, SingletonKeepsChildNumbers) {
  NodeSet labels({Node("PORTER FURNITURE")});
  Induction induction = inductor_.Induce(pages_, labels);
  std::string rule = induction.wrapper->ToString();
  EXPECT_NE(rule.find("tr[1]"), std::string::npos) << rule;
  // Extracts the first-row name on each structurally identical page.
  EXPECT_EQ(induction.extraction.size(), 2u);
  EXPECT_TRUE(induction.extraction.Contains(Node("PORTER FURNITURE")));
  EXPECT_TRUE(induction.extraction.Contains(Node("KIDDIE WORLD CENTER")));
}

TEST_F(XPathInductorTest, MixedDepthLabelsOverGeneralize) {
  // A name (inside <u>) and an address (directly inside <td>): no tag is
  // common at any position and the nodes' child numbers differ, so the
  // learned rule degenerates to //text() — every text node. (Bare `*`
  // steps are stripped: they are not features of the representation.)
  NodeSet labels({Node("PORTER FURNITURE"), Node("123 MAIN ST.")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_EQ(induction.wrapper->ToString(), "//text()");
  EXPECT_EQ(induction.extraction.size(), pages_.TextNodeCount());
}

TEST_F(XPathInductorTest, FidelityHolds) {
  NodeSet labels({Node("PORTER FURNITURE"), Node("123 MAIN ST."),
                  Node("LULLABY LANE")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_TRUE(labels.IsSubsetOf(induction.extraction));
}

TEST_F(XPathInductorTest, LearnedExprEvaluatesToExtraction) {
  NodeSet labels(
      {Node("WOODLAND FURNITURE"), Node("KIDDIE WORLD CENTER")});
  xpath::Expr expr = inductor_.LearnExpr(pages_, labels);
  XPathWrapper wrapper(expr);
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_EQ(wrapper.Extract(pages_), induction.extraction);
}

TEST_F(XPathInductorTest, AttributeFiltersLearned) {
  PageSet page;
  page.AddPage(MustParse(
      "<div class='hits'><span class='name'>A</span>"
      "<span class='name'>B</span><span class='other'>C</span></div>"));
  NodeSet labels(FindText(page, "A"));
  for (const NodeRef& ref : FindText(page, "B")) labels.Insert(ref);
  Induction induction = inductor_.Induce(page, labels);
  std::string rule = induction.wrapper->ToString();
  EXPECT_NE(rule.find("@class='name'"), std::string::npos) << rule;
  EXPECT_EQ(induction.extraction.size(), 2u);  // C is excluded.
}

TEST_F(XPathInductorTest, TextChildNumberDistinguishesSiblings) {
  // Two text nodes under one parent at fixed positions: labeling the
  // second across records must not extract the first.
  PageSet page;
  page.AddPage(MustParse(
      "<ul><li><b>t1</b>d1</li><li><b>t2</b>d2</li><li><b>t3</b>d3</li>"
      "</ul>"));
  NodeSet labels(FindText(page, "d1"));
  for (const NodeRef& ref : FindText(page, "d2")) labels.Insert(ref);
  Induction induction = inductor_.Induce(page, labels);
  EXPECT_EQ(induction.extraction.size(), 3u);
  for (const NodeRef& ref : induction.extraction) {
    EXPECT_EQ(page.Resolve(ref)->text().substr(0, 1), "d");
  }
}

TEST_F(XPathInductorTest, SubdivisionByAncestorTag) {
  NodeSet labels({Node("PORTER FURNITURE"), Node("123 MAIN ST."),
                  Node("KIDDIE WORLD CENTER")});
  std::vector<AttrHandle> attrs = inductor_.Attributes(pages_, labels);
  ASSERT_FALSE(attrs.empty());
  bool separated = false;
  for (AttrHandle attr : attrs) {
    for (const NodeSet& group : inductor_.Subdivide(pages_, labels, attr)) {
      EXPECT_TRUE(group.IsSubsetOf(labels));
      if (group.size() == 2 &&
          group.Contains(Node("PORTER FURNITURE")) &&
          group.Contains(Node("KIDDIE WORLD CENTER"))) {
        separated = true;  // Split by position-1 tag u vs td.
      }
    }
  }
  EXPECT_TRUE(separated);
}

TEST_F(XPathInductorTest, DeepLabelAndShallowLabel) {
  PageSet page;
  page.AddPage(MustParse("<div><p><b><i>deep</i></b></p>shallow</div>"));
  NodeSet labels(FindText(page, "deep"));
  for (const NodeRef& ref : FindText(page, "shallow")) labels.Insert(ref);
  Induction induction = inductor_.Induce(page, labels);
  // min depth is 1 (shallow under div): single '*'-ish step; both match.
  EXPECT_TRUE(labels.IsSubsetOf(induction.extraction));
}

TEST_F(XPathInductorTest, RuleIsParseableByOwnParser) {
  NodeSet labels(
      {Node("WOODLAND FURNITURE"), Node("KIDDIE WORLD CENTER")});
  Induction induction = inductor_.Induce(pages_, labels);
  Result<xpath::Expr> reparsed =
      xpath::ParseXPath(induction.wrapper->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  XPathWrapper wrapper(std::move(reparsed).value());
  EXPECT_EQ(wrapper.Extract(pages_), induction.extraction);
}

}  // namespace
}  // namespace ntw::core
