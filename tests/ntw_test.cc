// End-to-end tests of the noise-tolerant learning driver on controlled
// page sets: the Sec. 1 scenario (one bad label over-generalizes NAIVE,
// NTW recovers) across inductors and enumeration algorithms.

#include "core/ntw.h"

#include "core/lr_inductor.h"
#include "core/metrics.h"
#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;

class NtwTest : public ::testing::Test {
 protected:
  NtwTest() : pages_(FigureOnePages()) {
    for (const char* name :
         {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER",
          "KIDDIE WORLD CENTER", "LULLABY LANE"}) {
      for (const NodeRef& ref : FindText(pages_, name)) truth_.Insert(ref);
    }
    labels_ = NodeSet(FindText(pages_, "HELLER HOME CENTER"));
    for (const NodeRef& ref : FindText(pages_, "KIDDIE WORLD CENTER")) {
      labels_.Insert(ref);
    }
    // The bad label (an address line).
    for (const NodeRef& ref : FindText(pages_, "532 SAN MATEO AVE.")) {
      labels_.Insert(ref);
    }

    ListFeatures truth_features =
        ComputeListFeatures(SegmentRecords(pages_, truth_));
    Result<PublicationModel> publication =
        PublicationModel::Fit({truth_features, truth_features});
    EXPECT_TRUE(publication.ok());
    ranker_ = std::make_unique<Ranker>(AnnotationModel(0.95, 0.4),
                                       std::move(publication).value());
  }

  PageSet pages_;
  NodeSet truth_;
  NodeSet labels_;
  std::unique_ptr<Ranker> ranker_;
};

TEST_F(NtwTest, XPathRecoversFromBadLabel) {
  XPathInductor inductor;
  Result<NtwOutcome> outcome =
      LearnNoiseTolerant(inductor, pages_, labels_, *ranker_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->best.extraction, truth_);
  EXPECT_GT(outcome->space_size, 1u);
}

TEST_F(NtwTest, LrRecoversFromBadLabel) {
  LrInductor inductor;
  Result<NtwOutcome> outcome =
      LearnNoiseTolerant(inductor, pages_, labels_, *ranker_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->best.extraction, truth_);
}

TEST_F(NtwTest, NaiveOverGeneralizes) {
  XPathInductor inductor;
  Induction naive = LearnNaive(inductor, pages_, labels_);
  Prf prf = Evaluate(naive.extraction, truth_);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);     // Still covers the names...
  EXPECT_LT(prf.precision, 0.5);         // ...but with many false nodes.
}

TEST_F(NtwTest, AllEnumerationAlgorithmsAgreeOnWinner) {
  XPathInductor inductor;
  NodeSet winner;
  for (EnumAlgorithm algo : {EnumAlgorithm::kBottomUp,
                             EnumAlgorithm::kTopDown, EnumAlgorithm::kNaive}) {
    NtwOptions options;
    options.algorithm = algo;
    Result<NtwOutcome> outcome =
        LearnNoiseTolerant(inductor, pages_, labels_, *ranker_, options);
    ASSERT_TRUE(outcome.ok()) << EnumAlgorithmName(algo);
    if (winner.empty()) {
      winner = outcome->best.extraction;
    } else {
      EXPECT_EQ(outcome->best.extraction, winner)
          << EnumAlgorithmName(algo);
    }
  }
  EXPECT_EQ(winner, truth_);
}

TEST_F(NtwTest, CleanLabelsAlsoWork) {
  // Noise tolerance must not hurt the clean case.
  XPathInductor inductor;
  // Labels must span record positions or every enumerated wrapper stays
  // pinned to one row (tr[2]); row 2 + row 1 generalizes to the column.
  NodeSet clean(FindText(pages_, "WOODLAND FURNITURE"));
  for (const NodeRef& ref : FindText(pages_, "KIDDIE WORLD CENTER")) {
    clean.Insert(ref);
  }
  Result<NtwOutcome> outcome =
      LearnNoiseTolerant(inductor, pages_, clean, *ranker_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->best.extraction, truth_);
}

TEST_F(NtwTest, EmptyLabelsFail) {
  XPathInductor inductor;
  EXPECT_FALSE(LearnNoiseTolerant(inductor, pages_, NodeSet(), *ranker_).ok());
}

TEST_F(NtwTest, OutcomeCarriesInstrumentation) {
  XPathInductor inductor;
  Result<NtwOutcome> outcome =
      LearnNoiseTolerant(inductor, pages_, labels_, *ranker_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->inductor_calls, 0);
  EXPECT_GE(outcome->best_score.total,
            outcome->best_score.log_annotation +
                outcome->best_score.log_list - 1e-9);
  EXPECT_FALSE(outcome->best.wrapper->ToString().empty());
}

TEST_F(NtwTest, MajorityNoiseStillBreaksIt) {
  // Sanity: the framework is noise-tolerant, not noise-proof. With labels
  // that are mostly wrong and structurally consistent, the wrong list can
  // win. (This mirrors Table 1's low-precision/low-recall corner.)
  XPathInductor inductor;
  NodeSet bad_labels;
  for (const char* text :
       {"201 HWY. 30 WEST", "123 MAIN ST.", "514 4TH STREET",
        "1899 W. SAN CARLOS ST."}) {
    for (const NodeRef& ref : FindText(pages_, text)) bad_labels.Insert(ref);
  }
  Result<NtwOutcome> outcome =
      LearnNoiseTolerant(inductor, pages_, bad_labels, *ranker_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->best.extraction, truth_);
}

}  // namespace
}  // namespace ntw::core
