#include "core/enumerate.h"

#include <map>
#include <set>

#include "common/rng.h"
#include "core/lr_inductor.h"
#include "core/table_inductor.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::ExampleCell;
using ::ntw::testing::ExampleTablePage;

std::multiset<uint64_t> Fingerprints(const WrapperSpace& space) {
  std::multiset<uint64_t> prints;
  for (const Candidate& candidate : space.candidates) {
    prints.insert(candidate.extraction.Fingerprint());
  }
  return prints;
}

// ------------------------------- Example 2: the paper's worked example.

class Example2Test : public ::testing::Test {
 protected:
  Example2Test() : pages_(ExampleTablePage()) {
    // L = {n1, n2, n4, a4, z5}.
    labels_ = NodeSet({ExampleCell(pages_, 1, 1), ExampleCell(pages_, 2, 1),
                       ExampleCell(pages_, 4, 1), ExampleCell(pages_, 4, 2),
                       ExampleCell(pages_, 5, 3)});
  }

  PageSet pages_;
  NodeSet labels_;
  TableInductor inductor_;
};

TEST_F(Example2Test, BottomUpFindsTheEightWrappers) {
  WrapperSpace space = EnumerateBottomUp(inductor_, pages_, labels_);
  // {n1}, {n2}, {n4}, {a4}, {z5}, C1, R4, T (Equation 2).
  EXPECT_EQ(space.size(), 8u);

  std::map<size_t, int> by_size;
  for (const Candidate& candidate : space.candidates) {
    ++by_size[candidate.extraction.size()];
  }
  EXPECT_EQ(by_size[1], 5);   // Five singletons.
  EXPECT_EQ(by_size[5], 1);   // The first column (5 rows).
  EXPECT_EQ(by_size[4], 1);   // Row 4 (4 columns).
  EXPECT_EQ(by_size[20], 1);  // The entire table.
}

TEST_F(Example2Test, TopDownFindsTheSameSpace) {
  WrapperSpace bottom_up = EnumerateBottomUp(inductor_, pages_, labels_);
  WrapperSpace top_down = EnumerateTopDown(inductor_, pages_, labels_);
  EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(top_down));
}

TEST_F(Example2Test, NaiveFindsTheSameSpace) {
  Result<WrapperSpace> naive =
      EnumerateNaive(inductor_, pages_, labels_, 20);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->inductor_calls, 31);  // 2^5 − 1 subsets.
  WrapperSpace bottom_up = EnumerateBottomUp(inductor_, pages_, labels_);
  EXPECT_EQ(Fingerprints(*naive), Fingerprints(bottom_up));
}

TEST_F(Example2Test, BottomUpCallBoundHolds) {
  WrapperSpace space = EnumerateBottomUp(inductor_, pages_, labels_);
  // Theorem 2: at most k·|L| calls.
  EXPECT_LE(space.inductor_calls,
            static_cast<int64_t>(space.size() * labels_.size()));
}

TEST_F(Example2Test, TopDownCallsEqualSpaceSizePlusDuplicates) {
  WrapperSpace space = EnumerateTopDown(inductor_, pages_, labels_);
  // Theorem 3: exactly k calls (one per closed set).
  EXPECT_EQ(space.inductor_calls, static_cast<int64_t>(space.size()));
}

TEST_F(Example2Test, TrainedOnRecorded) {
  WrapperSpace space = EnumerateBottomUp(inductor_, pages_, labels_);
  for (const Candidate& candidate : space.candidates) {
    EXPECT_FALSE(candidate.trained_on.empty());
    EXPECT_TRUE(candidate.trained_on.IsSubsetOf(labels_));
  }
}

// Fully-labeled n×m table: the wrapper space is nm + n + m + 1 (Sec. 3
// states n² + 2n + 1 for an n×n table).
TEST(EnumerateTest, FullyLabeledTableSpaceSize) {
  PageSet pages = ExampleTablePage();  // 5×4.
  NodeSet labels = TableInductor::CellTextNodes(pages);
  ASSERT_EQ(labels.size(), 20u);
  TableInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages, labels);
  EXPECT_EQ(space.size(), 20u + 5u + 4u + 1u);
  WrapperSpace bottom_up = EnumerateBottomUp(inductor, pages, labels);
  EXPECT_EQ(Fingerprints(space), Fingerprints(bottom_up));
}

// ------------------------------- Cross-algorithm agreement (property).

struct AgreementCase {
  std::string name;
  std::shared_ptr<const FeatureBasedInductor> inductor;
};

class AgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(AgreementTest, AllThreeAlgorithmsAgreeOnRandomLabels) {
  PageSet pages = testing::FigureOnePages();
  NodeSet candidates = pages.AllTextNodes();
  const FeatureBasedInductor& inductor = *GetParam().inductor;
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<NodeRef> refs;
    size_t want = 2 + rng.NextBounded(6);
    for (size_t i = 0; i < want; ++i) {
      refs.push_back(candidates[rng.NextBounded(candidates.size())]);
    }
    NodeSet labels(std::move(refs));
    WrapperSpace bottom_up = EnumerateBottomUp(inductor, pages, labels);
    WrapperSpace top_down = EnumerateTopDown(inductor, pages, labels);
    Result<WrapperSpace> naive = EnumerateNaive(inductor, pages, labels, 10);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(top_down))
        << GetParam().name << " labels=" << labels.ToString();
    EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(*naive))
        << GetParam().name << " labels=" << labels.ToString();
    // Theorem bounds.
    EXPECT_LE(bottom_up.inductor_calls,
              static_cast<int64_t>(bottom_up.size() * labels.size()));
    EXPECT_LE(top_down.inductor_calls,
              static_cast<int64_t>(naive->inductor_calls));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inductors, AgreementTest,
    ::testing::Values(
        AgreementCase{"XPATH", std::make_shared<XPathInductor>()},
        AgreementCase{"LR", std::make_shared<LrInductor>()}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

// ------------------------------- Edge cases and plumbing.

// Regression: labels of different depths whose only shared feature is the
// position-0 child number. The learned xpath must NOT encode the deeper
// label's depth via bare `*` steps — "depth >= k" is not a feature, and
// keeping it made BottomUp's closure sets diverge from TopDown's
// subdivision lattice (found on generated dealer sites).
TEST(EnumerateTest, MixedDepthLabelsKeepAlgorithmsInAgreement) {
  PageSet pages;
  pages.AddPage(testing::MustParse(
      "<html><body>"
      "<div class='deep'><table><tr><td><a><b>DEEP ONE</b></a></td></tr>"
      "<tr><td><a><b>DEEP TWO</b></a></td></tr></table></div>"
      "<p>SHALLOW ONE</p><p>SHALLOW TWO</p>"
      "<span>other</span></body></html>"));
  NodeSet labels;
  for (const char* text :
       {"DEEP ONE", "DEEP TWO", "SHALLOW ONE", "SHALLOW TWO"}) {
    for (const NodeRef& ref : testing::FindText(pages, text)) {
      labels.Insert(ref);
    }
  }
  ASSERT_EQ(labels.size(), 4u);
  XPathInductor inductor;
  WrapperSpace bottom_up = EnumerateBottomUp(inductor, pages, labels);
  WrapperSpace top_down = EnumerateTopDown(inductor, pages, labels);
  Result<WrapperSpace> naive = EnumerateNaive(inductor, pages, labels, 6);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(top_down));
  EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(*naive));
  // And the mixed wrapper trained on a deep + a shallow label matches
  // every text node sharing the child number, regardless of depth.
  NodeSet mixed({testing::FindText(pages, "DEEP ONE")[0],
                 testing::FindText(pages, "SHALLOW ONE")[0]});
  Induction induction = inductor.Induce(pages, mixed);
  EXPECT_TRUE(
      induction.extraction.Contains(testing::FindText(pages, "other")[0]));
}

TEST(EnumerateTest, AgreementOnGeneratedDealerSites) {
  // The generated corpora are the harshest agreement workload (regression
  // cover for feature-semantics bugs that toy pages miss).
  datasets::DealersConfig config;
  config.num_sites = 6;
  config.pages_per_site = 4;
  datasets::Dataset dealers = datasets::MakeDealers(config);
  XPathInductor xpath_inductor;
  LrInductor lr_inductor;
  for (const datasets::SiteData& data : dealers.sites) {
    const NodeSet& labels = data.annotations.at("name");
    if (labels.empty()) continue;
    for (const FeatureBasedInductor* inductor :
         {static_cast<const FeatureBasedInductor*>(&xpath_inductor),
          static_cast<const FeatureBasedInductor*>(&lr_inductor)}) {
      WrapperSpace bottom_up =
          EnumerateBottomUp(*inductor, data.site.pages, labels);
      WrapperSpace top_down =
          EnumerateTopDown(*inductor, data.site.pages, labels);
      EXPECT_EQ(Fingerprints(bottom_up), Fingerprints(top_down))
          << data.site.name << " with " << inductor->Name();
    }
  }
}

TEST(EnumerateTest, NaiveRejectsTooManyLabels) {
  PageSet pages = testing::FigureOnePages();
  NodeSet labels = pages.AllTextNodes();
  XPathInductor inductor;
  EXPECT_FALSE(EnumerateNaive(inductor, pages, labels, 10).ok());
}

TEST(EnumerateTest, EmptyLabelsGiveEmptySpace) {
  PageSet pages = testing::FigureOnePages();
  XPathInductor inductor;
  EXPECT_EQ(EnumerateBottomUp(inductor, pages, NodeSet()).size(), 0u);
  EXPECT_EQ(EnumerateTopDown(inductor, pages, NodeSet()).size(), 0u);
}

TEST(EnumerateTest, SingleLabel) {
  PageSet pages = testing::FigureOnePages();
  NodeSet labels(testing::FindText(pages, "PORTER FURNITURE"));
  XPathInductor inductor;
  WrapperSpace space = EnumerateBottomUp(inductor, pages, labels);
  EXPECT_EQ(space.size(), 1u);
  EXPECT_TRUE(labels.IsSubsetOf(space.candidates[0].extraction));
}

TEST(EnumerateTest, DispatcherRoutes) {
  PageSet pages = testing::FigureOnePages();
  NodeSet labels(testing::FindText(pages, "PORTER FURNITURE"));
  XPathInductor inductor;
  for (EnumAlgorithm algo : {EnumAlgorithm::kBottomUp,
                             EnumAlgorithm::kTopDown, EnumAlgorithm::kNaive}) {
    Result<WrapperSpace> space = Enumerate(algo, inductor, pages, labels);
    ASSERT_TRUE(space.ok()) << EnumAlgorithmName(algo);
    EXPECT_EQ(space->size(), 1u);
  }
}

TEST(EnumerateTest, CountingInductorCounts) {
  PageSet pages = testing::FigureOnePages();
  NodeSet labels(testing::FindText(pages, "PORTER FURNITURE"));
  for (const NodeRef& ref : testing::FindText(pages, "LULLABY LANE")) {
    labels.Insert(ref);
  }
  XPathInductor base;
  CountingInductor counting(&base);
  WrapperSpace space = EnumerateBottomUp(counting, pages, labels);
  // With memoization the inductor only sees the cache misses; the logical
  // call count the theorems bound is hits + misses.
  EXPECT_EQ(counting.calls(), space.cache_misses);
  EXPECT_EQ(space.cache_hits + space.cache_misses, space.inductor_calls);
  counting.ResetCalls();
  EXPECT_EQ(counting.calls(), 0);
}

TEST(EnumerateTest, BottomUpMemoizationNeverInducesASubsetTwice) {
  // Example 2's label set makes BottomUp revisit expansions: several
  // closed frontier sets expand to the same |s|+1 subset. The cache must
  // turn every revisit into a hit, so the distinct-Induce count (what the
  // inductor actually ran) is strictly below the uncached call count.
  PageSet pages = testing::ExampleTablePage();
  NodeSet labels({testing::ExampleCell(pages, 1, 1),
                  testing::ExampleCell(pages, 2, 1),
                  testing::ExampleCell(pages, 4, 1),
                  testing::ExampleCell(pages, 4, 2),
                  testing::ExampleCell(pages, 5, 3)});
  TableInductor base;
  CountingInductor counting(&base);
  WrapperSpace space = EnumerateBottomUp(counting, pages, labels);
  EXPECT_EQ(counting.calls(), space.cache_misses);
  EXPECT_LE(space.cache_misses, space.inductor_calls);
  EXPECT_GT(space.cache_hits, 0) << "expected overlapping frontier "
                                    "expansions on the Example 2 corpus";
  EXPECT_EQ(space.cache_hits + space.cache_misses, space.inductor_calls);
}

TEST(EnumerateTest, NaiveAndTopDownReportAllMisses) {
  // Naive enumerates each subset once and TopDown's Z is
  // fingerprint-distinct, so neither can hit the memo; their accounting
  // still splits logical calls into hits + misses.
  PageSet pages = testing::FigureOnePages();
  NodeSet labels(testing::FindText(pages, "PORTER FURNITURE"));
  for (const NodeRef& ref : testing::FindText(pages, "LULLABY LANE")) {
    labels.Insert(ref);
  }
  XPathInductor inductor;
  Result<WrapperSpace> naive = EnumerateNaive(inductor, pages, labels, 10);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->cache_hits, 0);
  EXPECT_EQ(naive->cache_misses, naive->inductor_calls);
  WrapperSpace top_down = EnumerateTopDown(inductor, pages, labels);
  EXPECT_EQ(top_down.cache_hits, 0);
  EXPECT_EQ(top_down.cache_misses, top_down.inductor_calls);
}

TEST(EnumerateTest, AlgorithmNames) {
  EXPECT_STREQ(EnumAlgorithmName(EnumAlgorithm::kBottomUp), "BottomUp");
  EXPECT_STREQ(EnumAlgorithmName(EnumAlgorithm::kTopDown), "TopDown");
  EXPECT_STREQ(EnumAlgorithmName(EnumAlgorithm::kNaive), "Naive");
}

}  // namespace
}  // namespace ntw::core
