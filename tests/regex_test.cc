#include "regex/regex.h"

#include <string>

#include "gtest/gtest.h"

namespace ntw::regex {
namespace {

Regex MustCompile(const std::string& pattern) {
  Result<Regex> re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << pattern << ": " << re.status().ToString();
  return std::move(re).value();
}

TEST(RegexTest, LiteralFullMatch) {
  Regex re = MustCompile("abc");
  EXPECT_TRUE(re.FullMatch("abc"));
  EXPECT_FALSE(re.FullMatch("abcd"));
  EXPECT_FALSE(re.FullMatch("ab"));
  EXPECT_FALSE(re.FullMatch(""));
}

TEST(RegexTest, PartialMatch) {
  Regex re = MustCompile("bc");
  EXPECT_TRUE(re.PartialMatch("abcd"));
  EXPECT_FALSE(re.PartialMatch("b c"));
}

TEST(RegexTest, Dot) {
  Regex re = MustCompile("a.c");
  EXPECT_TRUE(re.FullMatch("abc"));
  EXPECT_TRUE(re.FullMatch("a-c"));
  EXPECT_FALSE(re.FullMatch("a\nc"));  // Dot excludes newline.
  EXPECT_FALSE(re.FullMatch("ac"));
}

TEST(RegexTest, StarGreedy) {
  Regex re = MustCompile("ab*c");
  EXPECT_TRUE(re.FullMatch("ac"));
  EXPECT_TRUE(re.FullMatch("abbbbc"));
  EXPECT_FALSE(re.FullMatch("adc"));
}

TEST(RegexTest, Plus) {
  Regex re = MustCompile("ab+c");
  EXPECT_FALSE(re.FullMatch("ac"));
  EXPECT_TRUE(re.FullMatch("abc"));
  EXPECT_TRUE(re.FullMatch("abbc"));
}

TEST(RegexTest, Question) {
  Regex re = MustCompile("colou?r");
  EXPECT_TRUE(re.FullMatch("color"));
  EXPECT_TRUE(re.FullMatch("colour"));
  EXPECT_FALSE(re.FullMatch("colouur"));
}

TEST(RegexTest, CountedRepeat) {
  Regex re = MustCompile("a{3}");
  EXPECT_TRUE(re.FullMatch("aaa"));
  EXPECT_FALSE(re.FullMatch("aa"));
  EXPECT_FALSE(re.FullMatch("aaaa"));
}

TEST(RegexTest, CountedRange) {
  Regex re = MustCompile("a{2,3}");
  EXPECT_FALSE(re.FullMatch("a"));
  EXPECT_TRUE(re.FullMatch("aa"));
  EXPECT_TRUE(re.FullMatch("aaa"));
  EXPECT_FALSE(re.FullMatch("aaaa"));
}

TEST(RegexTest, CountedOpenRange) {
  Regex re = MustCompile("a{2,}");
  EXPECT_FALSE(re.FullMatch("a"));
  EXPECT_TRUE(re.FullMatch("aaaaaa"));
}

TEST(RegexTest, BraceLiteralWhenNotQuantifier) {
  Regex re = MustCompile("a{x}");
  EXPECT_TRUE(re.FullMatch("a{x}"));
}

TEST(RegexTest, CharClass) {
  Regex re = MustCompile("[abc]+");
  EXPECT_TRUE(re.FullMatch("cab"));
  EXPECT_FALSE(re.FullMatch("cad"));
}

TEST(RegexTest, CharClassRange) {
  Regex re = MustCompile("[a-f0-3]+");
  EXPECT_TRUE(re.FullMatch("fade012"));
  EXPECT_FALSE(re.FullMatch("g"));
  EXPECT_FALSE(re.FullMatch("4"));
}

TEST(RegexTest, NegatedClass) {
  Regex re = MustCompile("[^0-9]+");
  EXPECT_TRUE(re.FullMatch("abc!"));
  EXPECT_FALSE(re.FullMatch("ab1"));
}

TEST(RegexTest, ClassWithLeadingBracket) {
  Regex re = MustCompile("[]a]+");
  EXPECT_TRUE(re.FullMatch("]a]"));
}

TEST(RegexTest, DigitShorthand) {
  Regex re = MustCompile(R"(\d{5})");
  EXPECT_TRUE(re.FullMatch("38652"));
  EXPECT_FALSE(re.FullMatch("3865"));
  EXPECT_FALSE(re.FullMatch("3865a"));
}

TEST(RegexTest, WordAndSpaceShorthand) {
  EXPECT_TRUE(MustCompile(R"(\w+)").FullMatch("ab_9"));
  EXPECT_FALSE(MustCompile(R"(\w+)").FullMatch("a b"));
  EXPECT_TRUE(MustCompile(R"(\s+)").FullMatch(" \t\n"));
  EXPECT_TRUE(MustCompile(R"(\S+)").FullMatch("abc"));
  EXPECT_FALSE(MustCompile(R"(\D)").FullMatch("5"));
}

TEST(RegexTest, EscapedMetachars) {
  Regex re = MustCompile(R"(\$\d+\.\d{2})");
  EXPECT_TRUE(re.FullMatch("$129.99"));
  EXPECT_FALSE(re.FullMatch("x129.99"));
}

TEST(RegexTest, Alternation) {
  Regex re = MustCompile("cat|dog|bird");
  EXPECT_TRUE(re.FullMatch("cat"));
  EXPECT_TRUE(re.FullMatch("dog"));
  EXPECT_TRUE(re.FullMatch("bird"));
  EXPECT_FALSE(re.FullMatch("catdog"));
}

TEST(RegexTest, GroupedAlternation) {
  Regex re = MustCompile("a(b|c)d");
  EXPECT_TRUE(re.FullMatch("abd"));
  EXPECT_TRUE(re.FullMatch("acd"));
  EXPECT_FALSE(re.FullMatch("ad"));
}

TEST(RegexTest, GroupRepeat) {
  Regex re = MustCompile("(ab)+");
  EXPECT_TRUE(re.FullMatch("ab"));
  EXPECT_TRUE(re.FullMatch("ababab"));
  EXPECT_FALSE(re.FullMatch("aba"));
}

TEST(RegexTest, NestedGroups) {
  Regex re = MustCompile("((a|b)c)+d");
  EXPECT_TRUE(re.FullMatch("acbcd"));
  EXPECT_FALSE(re.FullMatch("abd"));
}

TEST(RegexTest, Anchors) {
  EXPECT_TRUE(MustCompile("^abc$").FullMatch("abc"));
  EXPECT_TRUE(MustCompile("^a").PartialMatch("abc"));
  EXPECT_FALSE(MustCompile("^b").PartialMatch("abc"));
  EXPECT_TRUE(MustCompile("c$").PartialMatch("abc"));
  EXPECT_FALSE(MustCompile("b$").PartialMatch("abc"));
}

TEST(RegexTest, WordBoundary) {
  Regex re = MustCompile(R"(\b\d{5}\b)");
  EXPECT_TRUE(re.PartialMatch("zip 38652 ok"));
  EXPECT_TRUE(re.PartialMatch("38652"));
  EXPECT_TRUE(re.PartialMatch("MS 38652"));
  EXPECT_FALSE(re.PartialMatch("386521"));
  EXPECT_FALSE(re.PartialMatch("a38652"));
  EXPECT_TRUE(re.PartialMatch("(38652)"));
}

TEST(RegexTest, FindAllNonOverlapping) {
  Regex re = MustCompile(R"(\d+)");
  std::vector<Regex::Span> spans = re.FindAll("a12b345c6");
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].begin, 1u);
  EXPECT_EQ(spans[0].end, 3u);
  EXPECT_EQ(spans[1].begin, 4u);
  EXPECT_EQ(spans[1].end, 7u);
  EXPECT_EQ(spans[2].begin, 8u);
  EXPECT_EQ(spans[2].end, 9u);
}

TEST(RegexTest, FindAllEmptyOnNoMatch) {
  EXPECT_TRUE(MustCompile("xyz").FindAll("abc").empty());
}

TEST(RegexTest, GreedyBacktracks) {
  // Greedy a* must give back one 'a' so the literal 'a' can match.
  Regex re = MustCompile("a*a");
  EXPECT_TRUE(re.FullMatch("aaaa"));
  EXPECT_TRUE(re.FullMatch("a"));
  EXPECT_FALSE(re.FullMatch(""));
}

TEST(RegexTest, AlternationInsideRepeatBacktracks) {
  Regex re = MustCompile("(ab|a)*b");
  EXPECT_TRUE(re.FullMatch("ab"));     // (a) then b.
  EXPECT_TRUE(re.FullMatch("abab"));   // (ab)(a) then b.
  EXPECT_TRUE(re.FullMatch("b"));
}

TEST(RegexTest, ZipcodePattern) {
  Regex re = MustCompile(R"(\b\d{5}\b)");
  EXPECT_TRUE(re.PartialMatch("NEW ALBANY, MS 38652"));
  EXPECT_TRUE(re.PartialMatch("10245 MAIN ST."));  // 5-digit street number.
  EXPECT_FALSE(re.PartialMatch("662-534-3672"));   // Phone groups are 3/3/4.
  EXPECT_FALSE(re.PartialMatch("P.O. BOX 152"));
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(Regex::Compile("a(b").ok());
  EXPECT_FALSE(Regex::Compile("a)b").ok());
  EXPECT_FALSE(Regex::Compile("[abc").ok());
  EXPECT_FALSE(Regex::Compile("*a").ok());
  EXPECT_FALSE(Regex::Compile("a\\").ok());
  EXPECT_FALSE(Regex::Compile("a{3,2}").ok());
  EXPECT_FALSE(Regex::Compile("^*").ok());
  EXPECT_FALSE(Regex::Compile("[b-a]").ok());
}

TEST(RegexTest, EmptyPatternMatchesEmpty) {
  Regex re = MustCompile("");
  EXPECT_TRUE(re.FullMatch(""));
  EXPECT_FALSE(re.FullMatch("a"));
  EXPECT_TRUE(re.PartialMatch("abc"));  // Matches the empty string anywhere.
}

TEST(RegexTest, CaseSensitive) {
  EXPECT_FALSE(MustCompile("abc").FullMatch("ABC"));
}

}  // namespace
}  // namespace ntw::regex
