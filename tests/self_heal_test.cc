// Fault-injection harness for the self-healing pipeline (DESIGN.md §13):
// a live sharded server extracts from a generated site whose template is
// mutated mid-soak. The detector must notice the drift, retain pages,
// re-induce in the background worker, and hot-publish a repaired wrapper
// — with zero 5xx responses, zero torn responses, post-recovery
// extractions byte-identical to a fresh induction on the mutated
// template, and the repair surviving a process restart. A second soak
// races worker publishes against SIGHUP-style reloads (the TSan CI job
// gives it race-detection teeth) and pins the epoch-reclamation contract.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "gtest/gtest.h"
#include "html/parser.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/reinduce.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"
#include "sitegen/mutate.h"
#include "test_util.h"

namespace ntw::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

int64_t Counter(const std::string& name) {
  return obs::Registry::Global().GetCounter(name)->value();
}

// ---------------------------------------------------------------------
// Raw-socket client (keep-alive, Content-Length framing).
// ---------------------------------------------------------------------

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_EQ(rc, 0) << "connect: " << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Send(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  /// One full response (headers + Content-Length body); "" on error.
  std::string ReadResponse() {
    while (true) {
      size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        size_t body_start = header_end + 4;
        size_t total = body_start + ContentLengthOf(header_end);
        if (buffer_.size() >= total) {
          std::string response = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return response;
        }
      }
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  size_t ContentLengthOf(size_t header_end) const {
    std::string lowered = buffer_.substr(0, header_end);
    for (char& c : lowered) c = static_cast<char>(::tolower(c));
    size_t pos = lowered.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<size_t>(
        std::strtoul(lowered.c_str() + pos + 15, nullptr, 10));
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string ExtractRequest(const std::string& html) {
  return "POST /extract?site=example.com&attribute=name HTTP/1.1\r\n"
         "Host: test\r\nContent-Length: " +
         std::to_string(html.size()) + "\r\n\r\n" + html;
}

constexpr char kDriftzRequest[] =
    "GET /driftz HTTP/1.1\r\nHost: test\r\n\r\n";

// ---------------------------------------------------------------------
// The generated site and its fault injection.
// ---------------------------------------------------------------------

const std::vector<std::string> kPool = {"Acme Motors", "Bay Auto",
                                        "Cape Cars",   "Delta Vans",
                                        "Echo Wheels", "Fox Trucks"};

/// One listing page: a varying title (no learnable delimiter can span
/// it) and one <div class="rec"> record per name, the name in <b>.
std::string ListingPage(int page, const std::vector<std::string>& names) {
  std::string html =
      "<html><head><title>Listing page " + std::to_string(page) +
      "</title></head><body><h1>Dealers</h1><div class=\"list\">";
  for (size_t i = 0; i < names.size(); ++i) {
    html += "<div class=\"rec\"><b>" + names[i] + "</b><span>Suite " +
            std::to_string(100 + i) + "</span></div>";
  }
  html += "</div><p class=\"footer\">End of results</p></body></html>";
  return html;
}

std::vector<std::string> OriginalBodies() {
  return {ListingPage(0, {kPool[0], kPool[1], kPool[2]}),
          ListingPage(1, {kPool[1], kPool[3], kPool[4]}),
          ListingPage(2, {kPool[2], kPool[4], kPool[5]})};
}

/// The drift dictionary the warmup accumulates: every name, first-seen
/// (page) order, deduplicated.
std::vector<std::string> WarmupDictionary() {
  std::vector<std::string> names;
  for (const std::string& body : OriginalBodies()) {
    for (const std::string& name : kPool) {
      if (body.find("<b>" + name + "</b>") != std::string::npos &&
          std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  return names;
}

core::PageSet ParsePages(const std::vector<std::string>& bodies) {
  core::PageSet pages;
  for (const std::string& body : bodies) {
    pages.AddPage(ntw::testing::MustParse(body));
  }
  return pages;
}

/// Learns the healthy LR incumbent over the original bodies.
std::string LearnIncumbentRecord() {
  std::vector<std::string> bodies = OriginalBodies();
  core::PageSet pages = ParsePages(bodies);
  std::vector<core::NodeRef> refs;
  for (const std::string& name : kPool) {
    for (const core::NodeRef& ref : ntw::testing::FindText(pages, name)) {
      refs.push_back(ref);
    }
  }
  core::NodeSet labels(std::move(refs));
  core::Induction induction = core::LrInductor().Induce(pages, labels);
  EXPECT_EQ(induction.extraction.size(), 9u);
  Result<std::string> record = core::SerializeWrapper(*induction.wrapper);
  EXPECT_TRUE(record.ok()) << record.status().ToString();
  return *record;
}

/// The `"wrapper":"..."` member exactly as the serving path escapes it.
std::string WrapperMember(const std::string& record) {
  obs::JsonWriter json;
  json.BeginObject();
  json.KV("wrapper", record);
  json.EndObject();
  std::string document = json.Take();
  return document.substr(1, document.size() - 2);
}

/// `"values":[...]` for a list of extracted texts.
std::string ValuesMember(const std::vector<std::string>& values) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  for (const std::string& value : values) json.String(value);
  json.EndArray();
  json.EndObject();
  std::string document = json.Take();
  return document.substr(1, document.size() - 2);
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

class SelfHealTest : public ::testing::Test {
 protected:
  SelfHealTest()
      : root_(::testing::TempDir() + "ntw_self_heal_" +
              std::to_string(::getpid())),
        repository_(root_) {
    std::filesystem::remove_all(root_);
    EXPECT_TRUE(MakeDirs(root_ + "/example.com").ok());
    incumbent_record_ = LearnIncumbentRecord();
    WriteWrapperFile(incumbent_record_ + "\n");
  }

  ~SelfHealTest() override { std::filesystem::remove_all(root_); }

  void WriteWrapperFile(const std::string& contents) {
    std::string tmp = root_ + "/example.com/.name.wrapper.tmp";
    ASSERT_TRUE(WriteFile(tmp, contents).ok());
    std::error_code ec;
    std::filesystem::rename(tmp, root_ + "/example.com/name.wrapper", ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  struct RunningServer {
    std::vector<std::unique_ptr<ExtractService>> services;
    std::unique_ptr<HttpServer> server;
    std::thread thread;

    ~RunningServer() { Stop(); }
    void Stop() {
      if (thread.joinable()) {
        server->RequestShutdown();
        thread.join();
      }
    }
  };

  std::unique_ptr<RunningServer> Start(
      int shards, ReinduceWorker* worker,
      std::function<void(HttpServer&)> configure = nullptr) {
    auto running = std::make_unique<RunningServer>();
    RunningServer* r = running.get();
    ServerOptions options;
    options.port = 0;
    options.shards = shards;
    options.pool = nullptr;
    r->server = std::make_unique<HttpServer>(
        options, HttpServer::HandlerFactory([this, r, worker](int shard) {
          ExtractService::Options service_options;
          service_options.shard = shard;
          service_options.self_heal = worker != nullptr;
          r->services.push_back(std::make_unique<ExtractService>(
              &repository_, nullptr, service_options, worker));
          ExtractService* service = r->services.back().get();
          return [service](const HttpRequest& request) {
            return service->Handle(request);
          };
        }));
    Status bound = r->server->Bind();
    EXPECT_TRUE(bound.ok()) << bound.ToString();
    if (configure) configure(*r->server);
    r->thread = std::thread([r] { r->server->Run(); });
    return running;
  }

  /// Computes the exact repair the worker must produce for a ring of
  /// `copies` identical mutated bodies — the byte-identity reference.
  ReinduceWorker::Repair ExpectedRepair(const std::string& mutated_body,
                                        int copies) {
    ReinduceTask task;
    task.site = "example.com";
    task.attribute = "name";
    task.incumbent_record = incumbent_record_;
    task.pages.assign(static_cast<size_t>(copies), mutated_body);
    task.dictionary = WarmupDictionary();
    Result<ReinduceWorker::Repair> repair =
        ReinduceWorker::Reinduce(task, ReinduceOptions());
    EXPECT_TRUE(repair.ok()) << repair.status().ToString();
    EXPECT_TRUE(repair->beats_incumbent);
    return std::move(*repair);
  }

  std::string root_;
  WrapperRepository repository_;
  std::string incumbent_record_;
};

// ---------------------------------------------------------------------
// Fault injection: mutate the live site mid-soak, recover online.
// ---------------------------------------------------------------------

TEST_F(SelfHealTest, RecoversFromTemplateMutationUnderLoad) {
  DriftConfig drift;
  drift.warmup_pages = 6;
  drift.evaluate_every = 4;
  drift.empty_streak_limit = 3;
  drift.hysteresis = 1;
  drift.cooldown_pages = 64;
  drift.retain_pages = 3;
  repository_.SetDriftConfig(drift);
  ASSERT_TRUE(repository_.Load().ok());

  ReinduceWorker worker(&repository_);
  worker.Start();
  auto running = Start(/*shards=*/4, &worker);

  int64_t published_before = Counter("ntw.serve.reinduce_published");
  int64_t events_before = Counter("ntw.serve.drift_events");

  // Phase A — healthy traffic: 6 warmup pages (filter + dictionary over
  // the full name pool, then the repeat-rate probe), then a full healthy
  // evaluation window that must not fire.
  const std::vector<std::string> originals = OriginalBodies();
  {
    Client client(running->server->port());
    for (int round = 0; round < 4; ++round) {
      for (const std::string& body : originals) {
        ASSERT_TRUE(client.Send(ExtractRequest(body)));
        std::string response = client.ReadResponse();
        ASSERT_EQ(response.compare(0, 12, "HTTP/1.1 200"), 0) << response;
      }
    }
    ASSERT_TRUE(client.Send(kDriftzRequest));
    std::string driftz = client.ReadResponse();
    EXPECT_NE(driftz.find("\"phase\":\"steady\""), std::string::npos)
        << driftz;
  }
  EXPECT_EQ(Counter("ntw.serve.drift_events") - events_before, 0);

  // Phase B — the site redesigns: every request now serves the mutated
  // template (<b> → <strong>), which the LR incumbent extracts nothing
  // from. The reference repair is computed with the exact inputs the
  // drift ring will hand the worker: retain_pages copies of the one
  // canonical mutated body.
  const std::string mutated_body = sitegen::MutatePage(
      originals[0], sitegen::Mutation{sitegen::MutationKind::kDelimiterTextChange});
  ReinduceWorker::Repair expected =
      ExpectedRepair(mutated_body, drift.retain_pages);
  const std::vector<std::string> expected_values = {kPool[0], kPool[1],
                                                    kPool[2]};
  const std::string incumbent_member = WrapperMember(incumbent_record_);
  const std::string repaired_member = WrapperMember(expected.record);
  const std::string empty_values = ValuesMember({});
  const std::string repaired_values = ValuesMember(expected_values);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> responses_ok{0};
  std::atomic<int64_t> responses_bad{0};
  std::atomic<int64_t> responses_torn{0};
  const std::string request = ExtractRequest(mutated_body);

  constexpr int kTrafficThreads = 4;
  std::vector<std::thread> traffic;
  traffic.reserve(kTrafficThreads);
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&] {
      Client client(running->server->port());
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Send(request)) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::string response = client.ReadResponse();
        if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Exactly two coherent generations exist: the drifted incumbent
        // (extracts nothing from the mutated template) and the repaired
        // wrapper (recovers the names). Anything else is a torn response.
        bool incumbent_gen =
            response.find(incumbent_member) != std::string::npos &&
            response.find(empty_values) != std::string::npos;
        bool repaired_gen =
            response.find(repaired_member) != std::string::npos &&
            response.find(repaired_values) != std::string::npos;
        if (incumbent_gen == repaired_gen) {
          responses_torn.fetch_add(1, std::memory_order_relaxed);
        } else {
          responses_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The pipeline end to end: detect → retain → re-induce → publish.
  auto deadline = steady_clock::now() + std::chrono::seconds(60);
  while (Counter("ntw.serve.reinduce_published") - published_before < 1 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  ASSERT_EQ(Counter("ntw.serve.reinduce_published") - published_before, 1)
      << "no repair published within the deadline";
  // Let post-recovery traffic flow through the repaired wrapper.
  std::this_thread::sleep_for(milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : traffic) thread.join();

  EXPECT_EQ(responses_bad.load(), 0);
  EXPECT_EQ(responses_torn.load(), 0);
  EXPECT_GT(responses_ok.load(), 0);
  EXPECT_GE(Counter("ntw.serve.drift_events") - events_before, 1);

  // Post-recovery: the served wrapper and values are byte-identical to
  // the fresh induction on the mutated template.
  {
    Client client(running->server->port());
    ASSERT_TRUE(client.Send(ExtractRequest(mutated_body)));
    std::string response = client.ReadResponse();
    ASSERT_EQ(response.compare(0, 12, "HTTP/1.1 200"), 0) << response;
    EXPECT_NE(response.find(repaired_member), std::string::npos) << response;
    EXPECT_NE(response.find(repaired_values), std::string::npos) << response;
  }

  // The repaired detector re-baselined on the healthy mutated site; no
  // further repairs were attempted.
  EXPECT_EQ(Counter("ntw.serve.reinduce_published") - published_before, 1);

  running->Stop();
  worker.Stop();

  // Restart survival: a cold repository reproduces the repair from disk.
  Result<std::string> disk = ReadFile(root_ + "/example.com/name.wrapper");
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(*disk, expected.record + "\n");
  WrapperRepository restarted(root_);
  ASSERT_TRUE(restarted.Load().ok());
  const WrapperRepository::Entry* entry =
      restarted.snapshot()->Find("example.com", "name");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->record, expected.record);
}

// ---------------------------------------------------------------------
// Publish-vs-reload races under TSan: worker hot-publishes while
// SIGHUP-style reloads rewrite and re-read the same wrapper file.
// ---------------------------------------------------------------------

TEST_F(SelfHealTest, PublishRacingReloadStaysCoherent) {
  DriftConfig drift;
  drift.warmup_pages = 6;
  drift.evaluate_every = 2;
  drift.empty_streak_limit = 2;
  drift.hysteresis = 1;
  drift.cooldown_pages = 16;
  drift.retain_pages = 2;
  repository_.SetDriftConfig(drift);
  ASSERT_TRUE(repository_.Load().ok());

  int64_t retired_before = Counter("ntw.repo.snapshots_retired");
  int64_t freed_before = Counter("ntw.repo.snapshots_freed");
  int64_t published_before = Counter("ntw.serve.reinduce_published");

  ReinduceWorker worker(&repository_);
  worker.Start();
  std::atomic<int> reloads{0};
  auto running =
      Start(/*shards=*/4, &worker, [this, &reloads](HttpServer& server) {
        server.SetReloadHook([this, &reloads] {
          Status status = repository_.Load();
          EXPECT_TRUE(status.ok()) << status.ToString();
          reloads.fetch_add(1, std::memory_order_relaxed);
        });
      });

  // Healthy warmup so the incumbent's detector is armed with the full
  // dictionary — the one drift event this soak produces is deterministic.
  const std::vector<std::string> originals = OriginalBodies();
  {
    Client client(running->server->port());
    for (int round = 0; round < 2; ++round) {
      for (const std::string& body : originals) {
        ASSERT_TRUE(client.Send(ExtractRequest(body)));
        ASSERT_EQ(client.ReadResponse().compare(0, 12, "HTTP/1.1 200"), 0);
      }
    }
  }

  const std::string mutated_body = sitegen::MutatePage(
      originals[0], sitegen::Mutation{sitegen::MutationKind::kDelimiterTextChange});
  ReinduceWorker::Repair expected =
      ExpectedRepair(mutated_body, drift.retain_pages);
  const std::string incumbent_member = WrapperMember(incumbent_record_);
  const std::string repaired_member = WrapperMember(expected.record);
  const std::string empty_values = ValuesMember({});
  const std::string repaired_values =
      ValuesMember({kPool[0], kPool[1], kPool[2]});

  std::atomic<bool> stop{false};
  std::atomic<int64_t> responses_bad{0};
  std::atomic<int64_t> responses_torn{0};
  std::atomic<int64_t> responses_ok{0};
  const std::string request = ExtractRequest(mutated_body);

  std::vector<std::thread> traffic;
  for (int t = 0; t < 4; ++t) {
    traffic.emplace_back([&] {
      Client client(running->server->port());
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Send(request)) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::string response = client.ReadResponse();
        if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
          responses_bad.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        bool incumbent_gen =
            response.find(incumbent_member) != std::string::npos &&
            response.find(empty_values) != std::string::npos;
        bool repaired_gen =
            response.find(repaired_member) != std::string::npos &&
            response.find(repaired_values) != std::string::npos;
        if (incumbent_gen == repaired_gen) {
          responses_torn.fetch_add(1, std::memory_order_relaxed);
        } else {
          responses_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Chaos loop: rewrite the incumbent record on disk and reload — the
  // operator "rolling back" the wrapper — racing the worker's publish of
  // the repair. Both reload and publish go through the same snapshot
  // swap + epoch retirement, so last writer wins and nothing tears.
  constexpr int kCycles = 12;
  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    WriteWrapperFile(incumbent_record_ + "\n");
    running->server->RequestReload();
    auto deadline = steady_clock::now() + milliseconds(2000);
    while (reloads.load(std::memory_order_relaxed) < cycle &&
           steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    ASSERT_GE(reloads.load(std::memory_order_relaxed), cycle)
        << "reload " << cycle << " never ran";
    std::this_thread::sleep_for(milliseconds(10));
  }
  worker.WaitIdle();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : traffic) thread.join();
  running->Stop();
  worker.Stop();

  EXPECT_EQ(responses_bad.load(), 0);
  EXPECT_EQ(responses_torn.load(), 0);
  EXPECT_GT(responses_ok.load(), 0);
  // The armed detector fired exactly once (its replacement baselines on
  // whatever the post-race wrapper extracts and cannot re-arm mid-soak).
  EXPECT_LE(Counter("ntw.serve.reinduce_published") - published_before, 1);

  // Deterministic last-writer-wins: after the dust settles, memory and
  // disk agree — one final reload maps whatever record won the race.
  ASSERT_TRUE(repository_.Load().ok());
  Result<std::string> disk = ReadFile(root_ + "/example.com/name.wrapper");
  ASSERT_TRUE(disk.ok());
  const WrapperRepository::Entry* entry =
      repository_.snapshot()->Find("example.com", "name");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(*disk, entry->record + "\n");
  EXPECT_TRUE(*disk == incumbent_record_ + "\n" ||
              *disk == expected.record + "\n")
      << *disk;

  // Every retired snapshot was freed once readers quiesced.
  repository_.ReclaimRetired();
  EXPECT_EQ(Counter("ntw.repo.snapshots_retired") - retired_before,
            Counter("ntw.repo.snapshots_freed") - freed_before);
}

}  // namespace
}  // namespace ntw::serve
