#include <set>
#include <unordered_set>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "sitegen/chrome.h"
#include "sitegen/list_template.h"
#include "sitegen/mutate.h"
#include "sitegen/page_builder.h"
#include "sitegen/site.h"
#include "sitegen/vocab.h"

namespace ntw::sitegen {
namespace {

// ------------------------------------------------------------------ Vocab.

TEST(VocabTest, BusinessUniverseUniqueAndContainmentFree) {
  std::vector<std::string> names = BusinessNameUniverse(300, 99);
  ASSERT_EQ(names.size(), 300u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 300u);
  // No name contains another as a word sequence (the annotator-noise
  // control the dealer dataset depends on).
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < names.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(ContainsWordIgnoreCase(names[j], names[i]))
          << "'" << names[i] << "' inside '" << names[j] << "'";
    }
  }
}

TEST(VocabTest, UniverseDeterministicBySeed) {
  EXPECT_EQ(BusinessNameUniverse(50, 7), BusinessNameUniverse(50, 7));
  EXPECT_NE(BusinessNameUniverse(50, 7), BusinessNameUniverse(50, 8));
}

TEST(VocabTest, GeneratorsProduceNonEmpty) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(BusinessName(&rng).empty());
    EXPECT_FALSE(StreetAddress(&rng).empty());
    EXPECT_FALSE(PhoneNumber(&rng).empty());
    EXPECT_FALSE(AlbumTitle(&rng).empty());
    EXPECT_FALSE(TrackTitle(&rng).empty());
    EXPECT_FALSE(ArtistName(&rng).empty());
    EXPECT_FALSE(ManufacturerBrand(&rng).empty());
  }
}

TEST(VocabTest, CityStateZipShape) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    CityStateZip csz = RandomCityStateZip(&rng);
    EXPECT_EQ(csz.state.size(), 2u);
    EXPECT_EQ(csz.zip.size(), 5u);
    for (char c : csz.zip) EXPECT_TRUE(IsAsciiDigit(c));
    EXPECT_NE(csz.ToString().find(", "), std::string::npos);
  }
}

TEST(VocabTest, TrackDurationShape) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string d = TrackDuration(&rng);
    size_t colon = d.find(':');
    ASSERT_NE(colon, std::string::npos);
    EXPECT_EQ(d.size() - colon - 1, 2u);  // Two-digit seconds.
  }
}

TEST(VocabTest, SeedAlbumsMatchFigureNine) {
  const std::vector<SeedAlbum>& albums = SeedAlbums();
  ASSERT_EQ(albums.size(), 11u);
  EXPECT_EQ(albums[1].title, "Abbey Road");
  EXPECT_EQ(albums[1].artist, "Beatles");
  EXPECT_EQ(albums[5].title, "Strangers In the Night");
  for (const SeedAlbum& album : albums) {
    EXPECT_GE(album.tracks.size(), 8u);
    EXPECT_LE(album.tracks.size(), 14u);
  }
  // The planted title tracks (annotation noise sources).
  EXPECT_EQ(albums[2].tracks[0], albums[2].title);
  EXPECT_EQ(albums[9].tracks[0], albums[9].title);
}

TEST(VocabTest, PhoneCatalogueSized) {
  std::vector<std::string> catalogue = PhoneModelCatalogue(93, 5);
  EXPECT_EQ(catalogue.size(), 93u * 5u);
  std::set<std::string> unique(catalogue.begin(), catalogue.end());
  EXPECT_EQ(unique.size(), catalogue.size());
  // Every entry carries one of the five brands.
  for (const std::string& model : catalogue) {
    bool branded = false;
    for (const std::string& brand : PhoneBrands()) {
      if (model.find(brand) == 0) branded = true;
    }
    EXPECT_TRUE(branded) << model;
  }
}

// ----------------------------------------------------------- PageBuilder.

TEST(PageBuilderTest, TargetsResolveToPreorderIndices) {
  PageBuilder builder;
  html::Node* div = builder.El(builder.root(), "div", {{"class", "x"}});
  builder.Text(div, "before");
  html::Node* target = builder.TargetText(div, "THE NAME", "name");
  builder.Text(div, "after");
  PageBuilder::Built built = builder.Finish();
  ASSERT_EQ(built.targets["name"].size(), 1u);
  const html::Node* node = built.doc.node(built.targets["name"][0]);
  EXPECT_EQ(node, target);
  EXPECT_EQ(node->text(), "THE NAME");
}

TEST(SiteAccumulatorTest, RebasesAcrossPages) {
  SiteAccumulator accumulator("test-site");
  for (int p = 0; p < 2; ++p) {
    PageBuilder builder;
    html::Node* body = builder.El(builder.root(), "body");
    builder.TargetText(body, "target" + std::to_string(p), "name");
    accumulator.Add(builder.Finish());
  }
  GeneratedSite site = accumulator.Take();
  EXPECT_EQ(site.name, "test-site");
  EXPECT_EQ(site.pages.size(), 2u);
  ASSERT_EQ(site.truth["name"].size(), 2u);
  EXPECT_EQ(site.truth["name"][0].page, 0);
  EXPECT_EQ(site.truth["name"][1].page, 1);
}

// ---------------------------------------------------------- ListTemplate.

class ListTemplateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ListTemplateTest, RendersAllRecordsAndTargets) {
  Rng rng(GetParam());
  ListTemplate list_template = ListTemplate::Random(&rng, 3);

  std::vector<ListRecord> records;
  for (int i = 0; i < 4; ++i) {
    ListRecord record;
    record.fields = {"NAME" + std::to_string(i), "addr" + std::to_string(i),
                     "extra" + std::to_string(i)};
    record.field_types = {"name", "", ""};
    record.present = {true, true, true};
    records.push_back(record);
  }

  PageBuilder builder;
  html::Node* body = builder.El(builder.root(), "body");
  list_template.Render(&builder, body, records);
  PageBuilder::Built built = builder.Finish();

  ASSERT_EQ(built.targets["name"].size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(built.doc.node(built.targets["name"][i])->text(),
              "NAME" + std::to_string(i));
  }
  // All field texts present somewhere in the page.
  std::string content = built.doc.root()->TextContent();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(content.find("addr" + std::to_string(i)), std::string::npos);
  }
}

TEST_P(ListTemplateTest, SerializeParseRoundTripPreservesTargets) {
  // The generated DOM must survive serialize → reparse with identical
  // pre-order indices (the pipeline guarantee that lets benches work on
  // reparsed HTML).
  Rng rng(GetParam() * 31 + 1);
  ListTemplate list_template = ListTemplate::Random(&rng, 4);
  std::vector<ListRecord> records;
  for (int i = 0; i < 3; ++i) {
    ListRecord record;
    record.fields = {"N" + std::to_string(i), "A" + std::to_string(i),
                     "C" + std::to_string(i), "P" + std::to_string(i)};
    record.field_types = {"name", "", "zip", ""};
    record.present = {true, true, true, i % 2 == 0};
    records.push_back(record);
  }
  PageBuilder builder;
  html::Node* body = builder.El(builder.root(), "body");
  list_template.Render(&builder, body, records);
  PageBuilder::Built built = builder.Finish();

  std::string serialized = html::Serialize(built.doc.root());
  Result<html::Document> reparsed = html::Parse(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->node_count(), built.doc.node_count());
  for (int index : built.targets["name"]) {
    EXPECT_EQ(reparsed->node(index)->text(), built.doc.node(index)->text());
  }
}

TEST_P(ListTemplateTest, SameTemplateSameStructureAcrossPages) {
  Rng rng(GetParam() * 7 + 3);
  ListTemplate list_template = ListTemplate::Random(&rng, 2);
  auto render = [&](const std::string& suffix) {
    PageBuilder builder;
    html::Node* body = builder.El(builder.root(), "body");
    std::vector<ListRecord> records;
    for (int i = 0; i < 2; ++i) {
      ListRecord record;
      record.fields = {"N" + suffix + std::to_string(i),
                       "A" + suffix + std::to_string(i)};
      record.field_types = {"name", ""};
      record.present = {true, true};
      records.push_back(record);
    }
    list_template.Render(&builder, body, records);
    return builder.Finish();
  };
  PageBuilder::Built a = render("x");
  PageBuilder::Built b = render("y");
  EXPECT_EQ(html::StructuralSignature(a.doc.root()),
            html::StructuralSignature(b.doc.root()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListTemplateTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------- Chrome.

TEST(ChromeTest, RendersHeaderSidebarFooter) {
  Rng rng(5);
  ChromeTemplate chrome = ChromeTemplate::Random(&rng, "Acme Locator");
  chrome.has_sidebar = true;

  PageBuilder builder;
  html::Node* body = BeginPage(&builder, "Acme");
  html::Node* content =
      RenderChromeTop(&builder, chrome, {"BrandOne", "BrandTwo"});
  builder.Text(builder.El(content, "h2"), "Listing");
  RenderChromeBottom(&builder, body, chrome, &rng, {"promo line"});
  PageBuilder::Built built = builder.Finish();

  std::string text = built.doc.root()->TextContent();
  EXPECT_NE(text.find("Acme Locator"), std::string::npos);
  EXPECT_NE(text.find("BrandOne"), std::string::npos);
  EXPECT_NE(text.find("promo line"), std::string::npos);
  EXPECT_NE(text.find("(c) 2010"), std::string::npos);
  EXPECT_NE(text.find("Listing"), std::string::npos);
}

TEST(ChromeTest, RandomChromeVaries) {
  Rng rng(6);
  std::set<std::string> header_classes;
  for (int i = 0; i < 12; ++i) {
    header_classes.insert(ChromeTemplate::Random(&rng, "t").header_class);
  }
  EXPECT_GT(header_classes.size(), 3u);
}

// ------------------------------------------------------- Fault injection.

constexpr char kMutantPage[] =
    "<html><head><title>Listing page 7</title></head>"
    "<body><h1>Dealers</h1>"
    "<div class=\"list\">"
    "<div class=\"rec\"><b>Acme Motors</b><br><span>12 Elm</span></div>"
    "<div class=\"rec\"><b>Bay Auto</b><br><span>9 Oak</span></div>"
    "</div>"
    "<a href=\"/next\" class=\"nav\">next</a>"
    "</body></html>";

TEST(MutateTest, ClassRenameSuffixesEveryClassValue) {
  Mutation mutation{MutationKind::kClassRename};
  std::string mutated = MutatePage(kMutantPage, mutation);
  EXPECT_NE(mutated.find("class=\"list-v2\""), std::string::npos);
  EXPECT_NE(mutated.find("class=\"rec-v2\""), std::string::npos);
  EXPECT_NE(mutated.find("class=\"nav-v2\""), std::string::npos);
  EXPECT_EQ(mutated.find("class=\"rec\""), std::string::npos);
  // Text content is untouched.
  EXPECT_NE(mutated.find("<b>Acme Motors</b>"), std::string::npos);
}

TEST(MutateTest, WrapperDivInsertionAddsOneShellAroundBodyContent) {
  Mutation mutation{MutationKind::kWrapperDivInsertion};
  std::string mutated = MutatePage(kMutantPage, mutation);
  EXPECT_NE(mutated.find("<body><div class=\"shell\"><h1>"),
            std::string::npos)
      << mutated;
  EXPECT_NE(mutated.find("</a></div></body>"), std::string::npos) << mutated;
}

TEST(MutateTest, DelimiterTextChangeRenamesExactTagOnly) {
  Mutation mutation{MutationKind::kDelimiterTextChange};
  std::string mutated = MutatePage(kMutantPage, mutation);
  EXPECT_NE(mutated.find("<strong>Acme Motors</strong>"), std::string::npos)
      << mutated;
  EXPECT_EQ(mutated.find("<b>"), std::string::npos);
  // <br> shares the prefix but is not at a tag boundary — untouched.
  EXPECT_NE(mutated.find("<br>"), std::string::npos);
}

TEST(MutateTest, AttributeReorderKeepsDomShape) {
  constexpr char kMultiAttr[] =
      "<html><body>"
      "<div id=\"main\" class=\"list\" data-x=\"1\">"
      "<a href=\"/d\" class=\"go\">Acme Motors</a></div>"
      "</body></html>";
  Mutation mutation{MutationKind::kAttributeReorder};
  std::string mutated = MutatePage(kMultiAttr, mutation);
  EXPECT_NE(mutated, kMultiAttr);
  EXPECT_NE(mutated.find("<div data-x=\"1\" class=\"list\" id=\"main\">"),
            std::string::npos)
      << mutated;
  EXPECT_NE(mutated.find("<a class=\"go\" href=\"/d\">"), std::string::npos);
  // Byte-level churn only: parsing and reserializing both shows the same
  // text content in the same structure.
  EXPECT_NE(mutated.find("Acme Motors"), std::string::npos);
}

TEST(MutateTest, WhitespaceChurnPadsTextWithoutNewNodes) {
  Mutation mutation{MutationKind::kWhitespaceChurn};
  mutation.seed = 2;
  std::string mutated = MutatePage(kMutantPage, mutation);
  EXPECT_NE(mutated, kMutantPage);
  // Padding lands inside the first long text run (the varying title), so
  // the tag structure is byte-identical outside it.
  EXPECT_NE(mutated.find("Listing    page 7"), std::string::npos) << mutated;
  EXPECT_EQ(mutated.size(), sizeof(kMutantPage) - 1 + 3);
}

TEST(MutateTest, MutationsComposeLeftToRight) {
  std::string mutated =
      MutatePage(kMutantPage, {Mutation{MutationKind::kClassRename},
                               Mutation{MutationKind::kDelimiterTextChange}});
  EXPECT_NE(mutated.find("class=\"rec-v2\""), std::string::npos);
  EXPECT_NE(mutated.find("<strong>Bay Auto</strong>"), std::string::npos);
}

}  // namespace
}  // namespace ntw::sitegen
