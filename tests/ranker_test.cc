#include "core/ranker.h"

#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;

class RankerTest : public ::testing::Test {
 protected:
  RankerTest() : pages_(FigureOnePages()) {
    for (const char* name :
         {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER",
          "KIDDIE WORLD CENTER", "LULLABY LANE"}) {
      for (const NodeRef& ref : FindText(pages_, name)) truth_.Insert(ref);
    }
    // Noisy labels: two clean names + an address.
    labels_ = NodeSet(FindText(pages_, "WOODLAND FURNITURE"));
    for (const NodeRef& ref : FindText(pages_, "KIDDIE WORLD CENTER")) {
      labels_.Insert(ref);
    }
    for (const NodeRef& ref : FindText(pages_, "532 SAN MATEO AVE.")) {
      labels_.Insert(ref);
    }
  }

  PublicationModel FitPrior() {
    ListFeatures truth_features =
        ComputeListFeatures(SegmentRecords(pages_, truth_));
    Result<PublicationModel> model =
        PublicationModel::Fit({truth_features, truth_features});
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  }

  PageSet pages_;
  NodeSet truth_;
  NodeSet labels_;
};

TEST_F(RankerTest, FullVariantRecoversTruth) {
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  Ranker ranker(AnnotationModel(0.95, 0.4), FitPrior(), RankerVariant::kFull);
  std::vector<ScoredCandidate> ranked = ranker.Rank(space, pages_, labels_);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(space.candidates[ranked[0].candidate_index].extraction, truth_);
}

TEST_F(RankerTest, RankIsSortedDescending) {
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  Ranker ranker(AnnotationModel(0.95, 0.4), FitPrior());
  std::vector<ScoredCandidate> ranked = ranker.Rank(space, pages_, labels_);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].total, ranked[i].total);
  }
}

TEST_F(RankerTest, VariantsDecomposeScore) {
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  PublicationModel prior = FitPrior();
  AnnotationModel annotation(0.95, 0.4);

  Ranker full(annotation, prior, RankerVariant::kFull);
  Ranker ann_only(annotation, prior, RankerVariant::kAnnotationOnly);
  Ranker list_only(annotation, prior, RankerVariant::kListOnly);

  auto full_ranked = full.Rank(space, pages_, labels_);
  for (const ScoredCandidate& sc : full_ranked) {
    EXPECT_NEAR(sc.total, sc.log_annotation + sc.log_list, 1e-9);
  }
  for (const ScoredCandidate& sc : ann_only.Rank(space, pages_, labels_)) {
    EXPECT_DOUBLE_EQ(sc.total, sc.log_annotation);
  }
  for (const ScoredCandidate& sc : list_only.Rank(space, pages_, labels_)) {
    EXPECT_DOUBLE_EQ(sc.total, sc.log_list);
  }
}

TEST_F(RankerTest, BestReturnsTopIndex) {
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  Ranker ranker(AnnotationModel(0.95, 0.4), FitPrior());
  Result<size_t> best = ranker.Best(space, pages_, labels_);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, ranker.Rank(space, pages_, labels_)[0].candidate_index);
}

TEST_F(RankerTest, BestFailsOnEmptySpace) {
  Ranker ranker(AnnotationModel(0.95, 0.4), FitPrior());
  EXPECT_FALSE(ranker.Best(WrapperSpace(), pages_, labels_).ok());
}

TEST_F(RankerTest, ListOnlyVariantIgnoresLabels) {
  // NTW-X scores do not depend on which labels were given.
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  Ranker list_only(AnnotationModel(0.95, 0.4), FitPrior(),
                   RankerVariant::kListOnly);
  auto with_labels = list_only.Rank(space, pages_, labels_);
  auto with_other = list_only.Rank(space, pages_, NodeSet());
  ASSERT_EQ(with_labels.size(), with_other.size());
  for (size_t i = 0; i < with_labels.size(); ++i) {
    EXPECT_EQ(with_labels[i].candidate_index, with_other[i].candidate_index);
    EXPECT_DOUBLE_EQ(with_labels[i].total, with_other[i].total);
  }
}

TEST_F(RankerTest, RankingIsDeterministic) {
  XPathInductor inductor;
  WrapperSpace space = EnumerateTopDown(inductor, pages_, labels_);
  Ranker ranker(AnnotationModel(0.95, 0.4), FitPrior());
  auto first = ranker.Rank(space, pages_, labels_);
  auto second = ranker.Rank(space, pages_, labels_);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].candidate_index, second[i].candidate_index);
    EXPECT_DOUBLE_EQ(first[i].total, second[i].total);
  }
}

TEST(RankerVariantTest, Names) {
  EXPECT_STREQ(RankerVariantName(RankerVariant::kFull), "NTW");
  EXPECT_STREQ(RankerVariantName(RankerVariant::kAnnotationOnly), "NTW-L");
  EXPECT_STREQ(RankerVariantName(RankerVariant::kListOnly), "NTW-X");
}

}  // namespace
}  // namespace ntw::core
