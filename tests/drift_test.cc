// Unit tests for the self-healing building blocks (DESIGN.md §13): the
// DriftState detector lifecycle and every one of its signals, the
// bounded collection ring, the deterministic ReinduceWorker::Reinduce
// pipeline (dictionary re-annotation → NTW re-learning → incumbent
// comparison), WrapperRepository::PublishWrapper persistence + hot swap,
// and the /driftz endpoint. The end-to-end fault-injection soak lives in
// tests/self_heal_test.cc; the detector FP/TP corpus in
// tests/wellbehaved_test.cc.

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/file_util.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "html/parser.h"
#include "obs/metrics.h"
#include "serve/drift.h"
#include "serve/reinduce.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"
#include "sitegen/mutate.h"
#include "test_util.h"

namespace ntw::serve {
namespace {

// ---------------------------------------------------------------------
// DriftState: detector lifecycle and signals.
// ---------------------------------------------------------------------

/// Small-scale thresholds so every phase is reachable in a few pages.
DriftConfig TestConfig() {
  DriftConfig config;
  config.warmup_pages = 8;
  config.evaluate_every = 4;
  config.empty_streak_limit = 4;
  config.hysteresis = 1;
  config.cooldown_pages = 8;
  config.retain_pages = 2;
  config.min_window_values = 4;
  return config;
}

DriftState::Action Feed(DriftState& state,
                        const std::vector<std::string>& values,
                        const std::string& body = "<html></html>") {
  std::vector<std::string_view> views(values.begin(), values.end());
  return state.Observe(0, views.data(), views.size(), body);
}

std::string StateJson(const DriftState& state) {
  obs::JsonWriter json;
  state.WriteJson(json);
  return json.Take();
}

/// Feeds enough healthy pages to freeze the baseline. All warmup values
/// land in the filter half and then repeat in the probe half, so the
/// baseline known ratio is 1 and the likelihood signal arms.
void Warmup(DriftState& state, const std::vector<std::string>& values) {
  for (int i = 0; i < TestConfig().warmup_pages; ++i) Feed(state, values);
  ASSERT_EQ(state.phase(), DriftState::Phase::kSteady);
}

const std::vector<std::string> kNames = {"alpha auto", "bravo cars",
                                         "carol vans"};

TEST(DriftStateTest, WarmupFreezesBaselineAndArms) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  EXPECT_EQ(state.phase(), DriftState::Phase::kWarmup);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(Feed(state, kNames), DriftState::Action::kNone);
    EXPECT_EQ(state.phase(), DriftState::Phase::kWarmup);
  }
  Feed(state, kNames);
  EXPECT_EQ(state.phase(), DriftState::Phase::kSteady);
  std::string json = StateJson(state);
  EXPECT_NE(json.find("\"phase\":\"steady\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"armed_empty\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"armed_likelihood\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dictionary_size\":3"), std::string::npos) << json;
}

TEST(DriftStateTest, EmptyStreakTriggersCollectionAndQueues) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  Warmup(state, kNames);
  // Four consecutive empty extractions: the evaluation at the window
  // boundary sees streak >= limit and triggers collection.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(Feed(state, {}), DriftState::Action::kNone);
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_EQ(state.drift_events(), 1);
  EXPECT_NE(StateJson(state).find("\"last_signal\":\"empty_streak\""),
            std::string::npos);
  // retain_pages = 2: the second retained body completes the sample.
  EXPECT_EQ(Feed(state, {}, "<html>page one</html>"),
            DriftState::Action::kNone);
  EXPECT_EQ(Feed(state, {}, "<html>page two</html>"),
            DriftState::Action::kReinduce);
  EXPECT_EQ(state.phase(), DriftState::Phase::kQueued);
  DriftState::Sample sample = state.TakeSample();
  ASSERT_EQ(sample.pages.size(), 2u);
  EXPECT_EQ(sample.pages[0], "<html>page one</html>");
  EXPECT_EQ(sample.pages[1], "<html>page two</html>");
  // The dictionary is the warmup vocabulary, insertion-ordered.
  EXPECT_EQ(sample.dictionary, kNames);
}

TEST(DriftStateTest, LikelihoodCollapseFiresOnUnknownValues) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  Warmup(state, kNames);
  // Same shape and count, but values the baseline filter has never seen —
  // the annotation-likelihood proxy collapses.
  for (int i = 0; i < 4 && state.phase() == DriftState::Phase::kSteady;
       ++i) {
    Feed(state, {"novel-" + std::to_string(i) + "-x",
                 "novel-" + std::to_string(i) + "-y",
                 "novel-" + std::to_string(i) + "-z"});
  }
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_NE(
      StateJson(state).find("\"last_signal\":\"likelihood_collapse\""),
      std::string::npos);
}

TEST(DriftStateTest, SchemaCollapseFiresOnValueCountDrop) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  // Baseline: five values per page.
  std::vector<std::string> five = {"v-aa", "v-bb", "v-cc", "v-dd", "v-ee"};
  Warmup(state, five);
  // Known values (no likelihood collapse) but one per page: 1 < 5 * 0.25.
  for (int i = 0; i < 8 && state.phase() == DriftState::Phase::kSteady;
       ++i) {
    Feed(state, {"v-aa"});
  }
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_NE(StateJson(state).find("\"last_signal\":\"schema_collapse\""),
            std::string::npos);
}

TEST(DriftStateTest, SchemaExplosionFiresOnValueCountBlowup) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  std::vector<std::string> two = {"v-aa", "v-bb"};
  Warmup(state, two);
  // Known values, nine per page: 9 > 2 * 4.
  std::vector<std::string> nine;
  for (int i = 0; i < 9; ++i) nine.push_back(i % 2 == 0 ? "v-aa" : "v-bb");
  for (int i = 0; i < 4 && state.phase() == DriftState::Phase::kSteady;
       ++i) {
    Feed(state, nine);
  }
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_NE(StateJson(state).find("\"last_signal\":\"schema_explosion\""),
            std::string::npos);
}

TEST(DriftStateTest, AlignmentShiftFiresOnValueLengthShift) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  std::vector<std::string> shorts = {"aaaa", "bbbb"};
  Warmup(state, shorts);
  // Half the window is known (no likelihood collapse), the count is
  // unchanged (no schema signal), but the mean value length jumps from 4
  // to 22 — more than length_shift (1.0) times the baseline mean.
  const std::string long_value(40, 'q');
  for (int i = 0; i < 4 && state.phase() == DriftState::Phase::kSteady;
       ++i) {
    Feed(state, {"aaaa", long_value});
  }
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_NE(StateJson(state).find("\"last_signal\":\"alignment_shift\""),
            std::string::npos);
}

TEST(DriftStateTest, BenignChurnStaysSilent) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  std::vector<std::string> names = {"north motors", "south motors",
                                    "east  motors"};
  Warmup(state, names);
  // Record-count churn within the schema band, occasional isolated empty
  // pages, all values known: forty pages with zero drift events.
  const std::vector<std::vector<std::string>> benign = {
      {names[0], names[1]},
      {names[0], names[1], names[2]},
      {names[2]},
      {},
      {names[1], names[2]},
  };
  for (int i = 0; i < 40; ++i) Feed(state, benign[i % benign.size()]);
  EXPECT_EQ(state.phase(), DriftState::Phase::kSteady);
  EXPECT_EQ(state.drift_events(), 0);
  EXPECT_GT(state.evaluations(), 0);
}

TEST(DriftStateTest, HysteresisSuppressesIsolatedWindows) {
  DriftConfig config = TestConfig();
  config.hysteresis = 2;
  DriftState state("example.com", "name", "LR\tl\tr", config);
  Warmup(state, kNames);
  auto drifted_window = [&](int round) {
    for (int i = 0; i < 4; ++i) {
      Feed(state, {"w" + std::to_string(round) + "-" + std::to_string(i),
                   "w" + std::to_string(round) + "-b",
                   "w" + std::to_string(round) + "-c"});
    }
  };
  auto healthy_window = [&] {
    for (int i = 0; i < 4; ++i) Feed(state, kNames);
  };
  // Drifted windows separated by healthy ones never accumulate.
  drifted_window(0);
  healthy_window();
  drifted_window(1);
  healthy_window();
  EXPECT_EQ(state.phase(), DriftState::Phase::kSteady);
  EXPECT_EQ(state.drift_events(), 0);
  // Two consecutive drifted windows clear the hysteresis bar.
  drifted_window(2);
  drifted_window(3);
  EXPECT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_EQ(state.drift_events(), 1);
}

TEST(DriftStateTest, CooldownIgnoresPagesThenReArms) {
  DriftState state("example.com", "name", "LR\tl\tr", TestConfig());
  Warmup(state, kNames);
  for (int i = 0; i < 4; ++i) Feed(state, {});
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  // A rejected repair re-arms via cooldown: the next cooldown_pages
  // observations (even drifted ones) are ignored.
  state.EnterCooldown();
  ASSERT_EQ(state.phase(), DriftState::Phase::kCooldown);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(Feed(state, {}), DriftState::Action::kNone);
  }
  EXPECT_EQ(state.phase(), DriftState::Phase::kSteady);
  // Detection works again after the cooldown window.
  for (int i = 0; i < 4; ++i) Feed(state, {});
  EXPECT_EQ(state.phase(), DriftState::Phase::kCollecting);
  EXPECT_EQ(state.drift_events(), 2);
}

TEST(DriftStateTest, ByteCapQueuesWithPartialRing) {
  DriftConfig config = TestConfig();
  config.retain_pages = 4;
  config.retain_bytes = 10;
  DriftState state("example.com", "name", "LR\tl\tr", config);
  Warmup(state, kNames);
  for (int i = 0; i < 4; ++i) Feed(state, {});
  ASSERT_EQ(state.phase(), DriftState::Phase::kCollecting);
  // One oversized body: retained (the ring always keeps at least one
  // page), and the byte cap then queues immediately instead of waiting
  // for retain_pages bodies that could never fit.
  EXPECT_EQ(Feed(state, {}, std::string(32, 'p')),
            DriftState::Action::kReinduce);
  EXPECT_EQ(state.phase(), DriftState::Phase::kQueued);
  EXPECT_EQ(state.TakeSample().pages.size(), 1u);
}

// ---------------------------------------------------------------------
// Re-induction pipeline.
// ---------------------------------------------------------------------

/// One listing page in the fixed fault-injection template: a varying
/// title (so no healthy delimiter can span it) and one <div class="rec">
/// record per name, the name in <b>.
std::string ListingPage(int page, const std::vector<std::string>& names) {
  std::string html =
      "<html><head><title>Listing page " + std::to_string(page) +
      "</title></head><body><h1>Dealers</h1><div class=\"list\">";
  for (size_t i = 0; i < names.size(); ++i) {
    html += "<div class=\"rec\"><b>" + names[i] + "</b><span>Suite " +
            std::to_string(100 + i) + "</span></div>";
  }
  html += "</div><p class=\"footer\">End of results</p></body></html>";
  return html;
}

core::PageSet ParsePages(const std::vector<std::string>& bodies) {
  core::PageSet pages;
  for (const std::string& body : bodies) {
    pages.AddPage(ntw::testing::MustParse(body));
  }
  return pages;
}

core::NodeSet FindAll(const core::PageSet& pages,
                      const std::vector<std::string>& texts) {
  std::vector<core::NodeRef> refs;
  for (const std::string& text : texts) {
    for (const core::NodeRef& ref : ntw::testing::FindText(pages, text)) {
      refs.push_back(ref);
    }
  }
  return core::NodeSet(std::move(refs));
}

std::vector<std::string> ExtractedTexts(const core::PageSet& pages,
                                        const core::NodeSet& extraction) {
  std::vector<std::string> texts;
  for (size_t i = 0; i < extraction.size(); ++i) {
    texts.push_back(ntw::testing::TextOf(pages, extraction[i]));
  }
  return texts;
}

const std::vector<std::string> kPool = {"Acme Motors", "Bay Auto",
                                        "Cape Cars",   "Delta Vans",
                                        "Echo Wheels", "Fox Trucks"};

std::vector<std::string> OriginalBodies() {
  return {ListingPage(0, {kPool[0], kPool[1], kPool[2]}),
          ListingPage(1, {kPool[1], kPool[3], kPool[4]}),
          ListingPage(2, {kPool[2], kPool[4], kPool[5]})};
}

std::vector<std::string> AllNames(const std::vector<std::string>& bodies) {
  // Names in page order — the order the incumbent extracted them while
  // healthy, which is the order the drift dictionary preserves.
  std::vector<std::string> names;
  for (const std::string& body : bodies) {
    for (const std::string& name : kPool) {
      if (body.find("<b>" + name + "</b>") != std::string::npos &&
          std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  return names;
}

/// Learns the healthy incumbent of `kind` ("LR" or "XPATH") on the
/// original bodies and returns its serialized record.
std::string LearnIncumbent(const std::string& kind) {
  std::vector<std::string> bodies = OriginalBodies();
  core::PageSet pages = ParsePages(bodies);
  core::NodeSet labels = FindAll(pages, kPool);
  core::Induction induction;
  if (kind == "LR") {
    induction = core::LrInductor().Induce(pages, labels);
  } else {
    induction = core::XPathInductor().Induce(pages, labels);
  }
  EXPECT_EQ(induction.extraction, labels) << kind;
  Result<std::string> record = core::SerializeWrapper(*induction.wrapper);
  EXPECT_TRUE(record.ok()) << record.status().ToString();
  return *record;
}

ReinduceTask MutatedTask(const std::string& kind,
                         const std::vector<sitegen::Mutation>& mutations) {
  ReinduceTask task;
  task.site = "example.com";
  task.attribute = "name";
  task.incumbent_record = LearnIncumbent(kind);
  for (const std::string& body : OriginalBodies()) {
    task.pages.push_back(sitegen::MutatePage(body, mutations));
  }
  task.dictionary = AllNames(OriginalBodies());
  return task;
}

TEST(ReinduceTest, LrRepairBeatsDelimiterChangedIncumbent) {
  ReinduceTask task =
      MutatedTask("LR", {{sitegen::MutationKind::kDelimiterTextChange}});
  // Sanity: the incumbent extracts nothing on the mutated template.
  core::PageSet mutated = ParsePages(task.pages);
  Result<core::WrapperPtr> incumbent =
      core::DeserializeWrapper(task.incumbent_record);
  ASSERT_TRUE(incumbent.ok());
  EXPECT_TRUE((*incumbent)->Extract(mutated).empty());

  Result<ReinduceWorker::Repair> repair =
      ReinduceWorker::Reinduce(task, ReinduceOptions());
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->beats_incumbent);
  EXPECT_GT(repair->score, repair->incumbent_score);
  EXPECT_GE(repair->labels, 6u);
  EXPECT_NE(repair->record, task.incumbent_record);
  EXPECT_EQ(repair->record.compare(0, 3, "LR\t"), 0) << repair->record;
  // The repaired wrapper recovers every name on the mutated template.
  std::vector<std::string> texts =
      ExtractedTexts(mutated, repair->wrapper->Extract(mutated));
  core::NodeSet expected = FindAll(mutated, kPool);
  EXPECT_EQ(repair->wrapper->Extract(mutated), expected);
  EXPECT_EQ(texts.size(), 9u);
}

TEST(ReinduceTest, XpathRepairSurvivesClassRenameAndShellDiv) {
  ReinduceTask task = MutatedTask(
      "XPATH", {{sitegen::MutationKind::kClassRename},
                {sitegen::MutationKind::kWrapperDivInsertion}});
  core::PageSet mutated = ParsePages(task.pages);
  Result<core::WrapperPtr> incumbent =
      core::DeserializeWrapper(task.incumbent_record);
  ASSERT_TRUE(incumbent.ok());
  EXPECT_TRUE((*incumbent)->Extract(mutated).empty());

  Result<ReinduceWorker::Repair> repair =
      ReinduceWorker::Reinduce(task, ReinduceOptions());
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->beats_incumbent);
  EXPECT_EQ(repair->record.compare(0, 6, "XPATH\t"), 0) << repair->record;
  EXPECT_EQ(repair->wrapper->Extract(mutated), FindAll(mutated, kPool));
}

TEST(ReinduceTest, RejectsUnsupportedKindAndBarrenDictionary) {
  ReinduceTask task;
  task.site = "example.com";
  task.attribute = "name";
  task.incumbent_record = "TABLE\tcol\t1";
  task.pages = OriginalBodies();
  task.dictionary = AllNames(OriginalBodies());
  Result<ReinduceWorker::Repair> repair =
      ReinduceWorker::Reinduce(task, ReinduceOptions());
  EXPECT_EQ(repair.status().code(), StatusCode::kInvalidArgument);

  task.incumbent_record = LearnIncumbent("LR");
  task.dictionary = {"zzz-not-on-any-page"};
  repair = ReinduceWorker::Reinduce(task, ReinduceOptions());
  EXPECT_EQ(repair.status().code(), StatusCode::kFailedPrecondition);

  task.dictionary.clear();
  repair = ReinduceWorker::Reinduce(task, ReinduceOptions());
  EXPECT_EQ(repair.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// PublishWrapper: persist + hot swap + restart survival.
// ---------------------------------------------------------------------

class PublishTest : public ::testing::Test {
 protected:
  PublishTest()
      : root_(::testing::TempDir() + "ntw_drift_publish_" +
              std::to_string(::getpid())),
        repository_(root_) {
    std::filesystem::remove_all(root_);
    EXPECT_TRUE(MakeDirs(root_ + "/example.com").ok());
    EXPECT_TRUE(WriteFile(root_ + "/example.com/name.wrapper",
                          "XPATH\t//li/text()\n")
                    .ok());
  }
  ~PublishTest() override { std::filesystem::remove_all(root_); }

  std::string root_;
  WrapperRepository repository_;
};

TEST_F(PublishTest, PublishWrapperPersistsSwapsAndRebaselines) {
  repository_.SetDriftConfig(TestConfig());
  ASSERT_TRUE(repository_.Load().ok());
  auto before = repository_.snapshot();
  const WrapperRepository::Entry* entry =
      before->Find("example.com", "name");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->drift, nullptr);
  std::shared_ptr<DriftState> old_state = entry->drift;

  Result<core::WrapperPtr> repaired =
      core::DeserializeWrapper("XPATH\t//b/text()");
  ASSERT_TRUE(repaired.ok());
  ASSERT_TRUE(
      repository_.PublishWrapper("example.com", "name", *repaired).ok());

  auto after = repository_.snapshot();
  EXPECT_EQ(after->version, before->version + 1);
  entry = after->Find("example.com", "name");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->record, "XPATH\t//b/text()");
  EXPECT_NE(entry->compiled, nullptr);
  // The constant response members were rebuilt for the new version.
  EXPECT_NE(entry->response_prefix.find(
                "\"repository_version\":" +
                std::to_string(after->version)),
            std::string::npos);
  // A fresh detector re-baselines the repaired wrapper.
  ASSERT_NE(entry->drift, nullptr);
  EXPECT_NE(entry->drift, old_state);
  EXPECT_EQ(entry->drift->phase(), DriftState::Phase::kWarmup);
  EXPECT_EQ(entry->drift->record(), "XPATH\t//b/text()");

  // Persisted atomically: the on-disk record is the published one, no
  // temp file remains, and a cold restart reproduces the repair.
  Result<std::string> disk = ReadFile(root_ + "/example.com/name.wrapper");
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(*disk, "XPATH\t//b/text()\n");
  EXPECT_FALSE(std::filesystem::exists(
      root_ + "/example.com/.name.wrapper.tmp"));
  EXPECT_FALSE(repository_.PollForChanges());

  WrapperRepository restarted(root_);
  ASSERT_TRUE(restarted.Load().ok());
  const WrapperRepository::Entry* restarted_entry =
      restarted.snapshot()->Find("example.com", "name");
  ASSERT_NE(restarted_entry, nullptr);
  EXPECT_EQ(restarted_entry->record, "XPATH\t//b/text()");
}

TEST_F(PublishTest, PublishWrapperRejectsNull) {
  ASSERT_TRUE(repository_.Load().ok());
  EXPECT_EQ(repository_.PublishWrapper("example.com", "name", nullptr)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PublishTest, ReloadKeepsDetectorForUnchangedWrapper) {
  repository_.SetDriftConfig(TestConfig());
  ASSERT_TRUE(repository_.Load().ok());
  std::shared_ptr<DriftState> state =
      repository_.snapshot()->Find("example.com", "name")->drift;
  ASSERT_NE(state, nullptr);
  // A routine reload with an unchanged record must not restart warmup.
  ASSERT_TRUE(repository_.Load().ok());
  EXPECT_EQ(repository_.snapshot()->Find("example.com", "name")->drift,
            state);
  // A changed record re-baselines.
  ASSERT_TRUE(WriteFile(root_ + "/example.com/name.wrapper",
                        "XPATH\t//u/text()\n")
                  .ok());
  ASSERT_TRUE(repository_.Load().ok());
  EXPECT_NE(repository_.snapshot()->Find("example.com", "name")->drift,
            state);
}

// ---------------------------------------------------------------------
// Worker end-to-end (no HTTP): drain → re-induce → publish.
// ---------------------------------------------------------------------

TEST_F(PublishTest, WorkerPublishesWinningRepair) {
  repository_.SetDriftConfig(TestConfig());
  // Install the healthy LR incumbent as the serving wrapper.
  std::string incumbent = LearnIncumbent("LR");
  ASSERT_TRUE(WriteFile(root_ + "/example.com/name.wrapper",
                        incumbent + "\n")
                  .ok());
  ASSERT_TRUE(repository_.Load().ok());

  int64_t published_before = obs::Registry::Global()
                                 .GetCounter("ntw.serve.reinduce_published")
                                 ->value();
  ReinduceWorker worker(&repository_);
  worker.Start();
  ReinduceTask task =
      MutatedTask("LR", {{sitegen::MutationKind::kDelimiterTextChange}});
  Result<ReinduceWorker::Repair> expected =
      ReinduceWorker::Reinduce(task, ReinduceOptions());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(worker.Enqueue(std::move(task)));
  worker.WaitIdle();
  worker.Stop();

  EXPECT_EQ(obs::Registry::Global()
                    .GetCounter("ntw.serve.reinduce_published")
                    ->value() -
                published_before,
            1);
  const WrapperRepository::Entry* entry =
      repository_.snapshot()->Find("example.com", "name");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->record, expected->record);
  Result<std::string> disk = ReadFile(root_ + "/example.com/name.wrapper");
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(*disk, expected->record + "\n");
}

TEST_F(PublishTest, WorkerCoolsDownRejectedRepairs) {
  repository_.SetDriftConfig(TestConfig());
  ASSERT_TRUE(repository_.Load().ok());
  ReinduceWorker worker(&repository_);
  worker.Start();
  // An unparsable task fails re-induction; its detector must re-arm.
  ReinduceTask task;
  task.site = "example.com";
  task.attribute = "name";
  task.incumbent_record = "TABLE\tunsupported";
  task.pages = {"<html></html>"};
  task.dictionary = {"anything"};
  task.state = std::make_shared<DriftState>("example.com", "name",
                                            task.incumbent_record,
                                            TestConfig());
  std::shared_ptr<DriftState> state = task.state;
  ASSERT_TRUE(worker.Enqueue(std::move(task)));
  worker.WaitIdle();
  worker.Stop();
  EXPECT_EQ(state->phase(), DriftState::Phase::kCooldown);
}

TEST(ReinduceWorkerTest, EnqueueRejectsWhenStoppedOrFull) {
  WrapperRepository repository("/nonexistent-drift-root");
  ReinduceOptions options;
  options.max_queue = 1;
  ReinduceWorker worker(&repository, options);
  ReinduceTask task;
  // Not started yet: rejected.
  EXPECT_FALSE(worker.Enqueue(task));
  worker.Stop();
  EXPECT_FALSE(worker.Enqueue(task));
}

// ---------------------------------------------------------------------
// /driftz endpoint.
// ---------------------------------------------------------------------

TEST_F(PublishTest, DriftzReportsDetectorStates) {
  repository_.SetDriftConfig(TestConfig());
  ASSERT_TRUE(repository_.Load().ok());
  ExtractService service(&repository_, nullptr);
  HttpRequest request;
  request.method = "GET";
  request.path = "/driftz";
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"schema\":\"ntw-serve-drift\""),
            std::string::npos)
      << response.body;
  // No reinducer was attached, so self-healing reports disabled.
  EXPECT_NE(response.body.find("\"self_heal\":false"), std::string::npos);
  EXPECT_NE(response.body.find("\"site\":\"example.com\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"phase\":\"warmup\""), std::string::npos);

  request.method = "POST";
  EXPECT_EQ(service.Handle(request).status, 405);
}

TEST_F(PublishTest, DriftzEmptyWithoutDriftConfig) {
  // Drift disabled (the default): entries carry no detector and /driftz
  // reports an empty state list rather than failing.
  ASSERT_TRUE(repository_.Load().ok());
  ExtractService service(&repository_, nullptr);
  HttpRequest request;
  request.method = "GET";
  request.path = "/driftz";
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"states\":[]"), std::string::npos)
      << response.body;
}

}  // namespace
}  // namespace ntw::serve
