// Observability layer: histogram bucketing edge cases, concurrent
// instrument updates under the thread pool, span nesting — and the
// determinism contract of DESIGN.md §7: turning metrics/tracing on must
// not change extraction output bytes at any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/ntw.h"
#include "core/publication_model.h"
#include "core/ranker.h"
#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace ntw::obs {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;

// ---------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketIndexEdgeCases) {
  // Bucket 0 is the ≤0 bucket.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MIN), 0u);
  // Bucket i covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The top of the range cannot overflow past the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 62), 63u);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), 63u);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), INT64_MIN);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4);
  EXPECT_EQ(Histogram::BucketLowerBound(63), int64_t{1} << 62);
  // Every bucket's lower bound maps back into that bucket, and the value
  // just below it into the previous one.
  for (size_t i = 1; i < Histogram::kBucketCount; ++i) {
    int64_t lower = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lower - 1), i - 1) << "bucket " << i;
  }
}

TEST(HistogramTest, RecordAggregatesAndResets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);  // Empty histogram reports 0.
  EXPECT_EQ(h.max(), 0);

  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(INT64_MAX);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), INT64_MAX);
  EXPECT_EQ(h.bucket(0), 1);                           // The 0 sample.
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 2);   // Both 5s.
  EXPECT_EQ(h.bucket(63), 1);                          // INT64_MAX.

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(h.bucket(i), 0) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(RegistryTest, StablePointersAcrossLookupsAndResets) {
  Registry registry;
  Counter* c = registry.GetCounter("test.counter");
  Gauge* g = registry.GetGauge("test.counter");  // Separate kind namespace.
  Histogram* h = registry.GetHistogram("test.hist");
  EXPECT_NE(static_cast<void*>(c), static_cast<void*>(g));
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  EXPECT_EQ(registry.GetGauge("test.counter"), g);
  EXPECT_EQ(registry.GetHistogram("test.hist"), h);

  c->Add(7);
  g->Set(-3);
  h->Record(42);
  registry.ResetValues();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0);
  c->Add(1);  // Cached pointers keep working after a reset.
  EXPECT_EQ(registry.GetCounter("test.counter")->value(), 1);
}

TEST(RegistryTest, ToJsonSchema) {
  Registry registry;
  registry.GetCounter("b.count")->Add(2);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("width")->Set(8);
  registry.GetHistogram("lat")->Record(3);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"schema\":\"ntw-metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(json.find("\"shard_count\":1"), std::string::npos);
  // Counters are sorted by name.
  EXPECT_LT(json.find("\"a.count\":1"), json.find("\"b.count\":2"));
  EXPECT_NE(json.find("\"width\":8"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

TEST(RegistryTest, ShardedInstrumentsMergeIntoPlainSections) {
  Registry registry;
  registry.SetShardCount(3);
  ShardedCounter* counter = registry.GetShardedCounter("m.requests");
  counter->Add(0, 5);
  counter->Add(1, 7);
  counter->Add(2, 1);
  EXPECT_EQ(counter->value(), 13);
  EXPECT_EQ(counter->shard_value(1), 7);
  ShardedHistogram* hist = registry.GetShardedHistogram("m.lat");
  hist->Record(0, 4);
  hist->Record(1, 16);
  hist->Record(2, 2);
  HistogramView merged = hist->Merged();
  EXPECT_EQ(merged.count, 3);
  EXPECT_EQ(merged.sum, 22);
  EXPECT_EQ(merged.min, 2);
  EXPECT_EQ(merged.max, 16);
  // A plain counter sorts in among the sharded ones (one merged map).
  registry.GetCounter("m.plain")->Add(9);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"shard_count\":3"), std::string::npos);
  // Merged totals under the plain names, sorted with plain instruments.
  EXPECT_NE(json.find("\"m.requests\":13"), std::string::npos);
  EXPECT_LT(json.find("\"m.plain\":9"), json.find("\"m.requests\":13"));
  // The shard dimension: per-shard arrays trimmed to the shard count.
  EXPECT_NE(json.find("\"m.requests\":[5,7,1]"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":"), std::string::npos);
  EXPECT_NE(json.find("{\"count\":1,\"sum\":16}"), std::string::npos);

  registry.ResetValues();
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(hist->Merged().count, 0);
}

// ---------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------

TEST(ObsConcurrencyTest, CountersAndHistogramsAreExactUnderThreadPool) {
  Registry registry;
  Counter* counter = registry.GetCounter("concurrent.counter");
  Histogram* hist = registry.GetHistogram("concurrent.hist");
  constexpr size_t kN = 20000;

  ThreadPool pool(8);
  pool.ParallelFor(kN, [&](size_t i) {
    counter->Add(1);
    hist->Record(static_cast<int64_t>(i % 100));  // 0..99.
  });

  EXPECT_EQ(counter->value(), static_cast<int64_t>(kN));
  EXPECT_EQ(hist->count(), static_cast<int64_t>(kN));
  // Sum of i%100 over 20000 indices: 200 full cycles of 0+..+99 = 4950.
  EXPECT_EQ(hist->sum(), 200 * 4950);
  EXPECT_EQ(hist->min(), 0);
  EXPECT_EQ(hist->max(), 99);
  int64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    bucket_total += hist->bucket(i);
  }
  EXPECT_EQ(bucket_total, static_cast<int64_t>(kN));
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, SpanNestingDepthAndOrder) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
      { Span leaf("test.leaf"); }
    }
    { Span sibling("test.sibling"); }
  }
  tracer.Disable();
  EXPECT_EQ(tracer.SpanCount(), 4u);

  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"schema\":\"ntw-trace\""), std::string::npos);
  // Insertion order within a thread; nesting is encoded in depth.
  EXPECT_LT(json.find("test.outer"), json.find("test.inner"));
  EXPECT_LT(json.find("test.inner"), json.find("test.leaf"));
  EXPECT_LT(json.find("test.leaf"), json.find("test.sibling"));
  EXPECT_NE(json.find("\"name\":\"test.outer\",\"thread\":0,\"depth\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\",\"thread\":0,\"depth\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.leaf\",\"thread\":0,\"depth\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.sibling\",\"thread\":0,\"depth\":1"),
            std::string::npos);
  tracer.Reset();
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  ASSERT_FALSE(tracer.enabled());
  { Span span("test.ignored"); }
  EXPECT_EQ(tracer.SpanCount(), 0u);
}

TEST(TracerTest, SpansFromPoolThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  ThreadPool pool(4);
  pool.ParallelFor(64, [&](size_t) { Span span("test.pool_work"); });
  tracer.Disable();
  // Every iteration recorded exactly one span, whichever thread ran it
  // (the pool adds its own pool.parallel_for / pool.drain spans on top).
  EXPECT_GE(tracer.SpanCount(), 64u);
  std::string json = tracer.ToJson();
  size_t work_spans = 0;
  for (size_t pos = json.find("test.pool_work"); pos != std::string::npos;
       pos = json.find("test.pool_work", pos + 1)) {
    ++work_spans;
  }
  EXPECT_EQ(work_spans, 64u);
  tracer.Reset();
}

// ---------------------------------------------------------------------
// Determinism: instrumentation on vs off must not change output bytes
// ---------------------------------------------------------------------

/// The exact byte stream ntw_extract would print for this outcome.
std::string ExtractionBytes(const core::PageSet& pages,
                            const core::NtwOutcome& outcome) {
  std::string out = outcome.best.wrapper->ToString();
  out += '\n';
  for (const core::NodeRef& ref : outcome.best.extraction) {
    const html::Node* node = pages.Resolve(ref);
    if (node == nullptr) continue;
    out += std::to_string(ref.page);
    out += '\t';
    out += node->text();
    out += '\n';
  }
  return out;
}

TEST(ObsDeterminismTest, InstrumentationOnVsOffIsByteIdentical) {
  core::PageSet pages = FigureOnePages();
  core::NodeSet labels(FindText(pages, "WOODLAND FURNITURE"));
  for (const core::NodeRef& ref : FindText(pages, "KIDDIE WORLD CENTER")) {
    labels.Insert(ref);
  }
  for (const core::NodeRef& ref : FindText(pages, "532 SAN MATEO AVE.")) {
    labels.Insert(ref);
  }
  ASSERT_FALSE(labels.empty());

  // The ntw_extract learn-mode setup: generic publication prior.
  std::vector<core::ListFeatures> prior;
  for (double delta : {-1.0, 0.0, 0.0, 1.0}) {
    core::ListFeatures f;
    f.schema_size = 3.0 + delta;
    f.alignment = 2.0;
    prior.push_back(f);
  }
  Result<core::PublicationModel> publication =
      core::PublicationModel::Fit(prior);
  ASSERT_TRUE(publication.ok());
  core::Ranker ranker(core::AnnotationModel(0.95, 0.3),
                      std::move(publication).value());
  core::XPathInductor inductor;

  auto learn_bytes = [&]() {
    Result<core::NtwOutcome> outcome =
        core::LearnNoiseTolerant(inductor, pages, labels, ranker);
    EXPECT_TRUE(outcome.ok());
    return outcome.ok() ? ExtractionBytes(pages, *outcome) : std::string();
  };

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);

    // Instrumentation off: tracer disabled (metrics counters are always
    // live — they have no off switch by design).
    Tracer::Global().Reset();
    ASSERT_FALSE(Tracer::Global().enabled());
    std::string off_bytes = learn_bytes();
    ASSERT_FALSE(off_bytes.empty());

    // Instrumentation on: tracing enabled and metrics freshly zeroed, as
    // --trace/--metrics-json would arrange.
    Registry::Global().ResetValues();
    Tracer::Global().Enable();
    std::string on_bytes = learn_bytes();
    Tracer::Global().Disable();

    EXPECT_EQ(on_bytes, off_bytes)
        << "instrumentation changed extraction output at " << threads
        << " threads";
    EXPECT_GT(Tracer::Global().SpanCount(), 0u);
    EXPECT_GT(Registry::Global().GetCounter("ntw.induce.calls")->value(), 0);
  }
  Tracer::Global().Reset();
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace ntw::obs
