// Robustness property tests for the HTML pipeline: the parser must accept
// arbitrary byte soup without crashing, produce stable (idempotent)
// serialize→parse fixpoints, and preserve generated-site structure — the
// invariant the corpus I/O format depends on.

#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "test_util.h"

namespace ntw::html {
namespace {

// Random tag soup: a mix of (possibly unbalanced) tags, attributes, text,
// entities, comments and stray metacharacters.
std::string RandomSoup(Rng* rng, size_t pieces) {
  static const char* kTags[] = {"div", "td",   "tr", "table", "u",
                                "b",   "li",   "ul", "span",  "br",
                                "p",   "html", "a",  "script"};
  static const char* kText[] = {"PORTER", "38652", "a < b", "x & y",
                                "&amp;",  "&#65;", "<",     "plain text",
                                "\"q\"",  "'s'"};
  std::string out;
  for (size_t i = 0; i < pieces; ++i) {
    switch (rng->NextBounded(7)) {
      case 0:
        out += "<" + std::string(kTags[rng->NextBounded(14)]) + ">";
        break;
      case 1:
        out += "</" + std::string(kTags[rng->NextBounded(14)]) + ">";
        break;
      case 2:
        out += "<" + std::string(kTags[rng->NextBounded(14)]) +
               " class='c" + std::to_string(rng->NextBounded(5)) + "' data=" +
               std::to_string(rng->NextBounded(100)) + ">";
        break;
      case 3:
        out += kText[rng->NextBounded(10)];
        break;
      case 4:
        out += "<!-- comment " + std::to_string(rng->NextBounded(10)) +
               " -->";
        break;
      case 5:
        out += "<";  // Stray metacharacter.
        break;
      default:
        out.push_back(static_cast<char>(rng->NextBounded(94) + 32));
    }
  }
  return out;
}

TEST(HtmlFuzzTest, ParserNeverChokesOnTagSoup) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomSoup(&rng, 1 + rng.NextBounded(60));
    Result<Document> doc = Parse(soup);
    ASSERT_TRUE(doc.ok()) << soup;
    // The document is well-formed: every node resolvable, text nodes
    // indexed consistently.
    EXPECT_GE(doc->node_count(), 1u);
    for (const Node* text : doc->text_nodes()) {
      EXPECT_TRUE(text->is_text());
      EXPECT_EQ(doc->node(text->preorder_index()), text);
    }
  }
}

TEST(HtmlFuzzTest, ParserNeverChokesOnRandomBytes) {
  Rng rng(2025);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes;
    for (size_t i = 0; i < rng.NextBounded(300); ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Result<Document> doc = Parse(bytes);
    ASSERT_TRUE(doc.ok());
  }
}

TEST(HtmlFuzzTest, SerializeParseReachesFixpoint) {
  // Tag soup need not round-trip in one step (the tree builder inserts
  // implied end tags), but serialize∘parse must reach a fixpoint by the
  // second iteration: parse(serialize(parse(x))) serializes identically.
  Rng rng(2026);
  for (int trial = 0; trial < 150; ++trial) {
    std::string soup = RandomSoup(&rng, 1 + rng.NextBounded(50));
    Document first = std::move(Parse(soup)).value();
    std::string once = Serialize(first.root());
    Document second = std::move(Parse(once)).value();
    std::string twice = Serialize(second.root());
    EXPECT_EQ(once, twice) << soup;
  }
}

TEST(HtmlFuzzTest, SecondParseIsStructurallyStable) {
  // The first reparse may merge text nodes that were originally split by
  // dropped comments; from the second parse on, structure is canonical.
  Rng rng(2027);
  for (int trial = 0; trial < 100; ++trial) {
    std::string soup = RandomSoup(&rng, 1 + rng.NextBounded(40));
    Document first = std::move(Parse(soup)).value();
    Document second = std::move(Parse(Serialize(first.root()))).value();
    Document third = std::move(Parse(Serialize(second.root()))).value();
    EXPECT_EQ(second.node_count(), third.node_count()) << soup;
    EXPECT_EQ(StructuralSignature(second.root()),
              StructuralSignature(third.root()))
        << soup;
  }
}

TEST(HtmlFuzzTest, GeneratedPagesRoundTripExactly) {
  // Generated pages (no comments, no stray metacharacters) round-trip in
  // one step with identical node counts — the corpus-I/O invariant.
  core::PageSet pages = testing::FigureOnePages();
  for (size_t p = 0; p < pages.size(); ++p) {
    std::string serialized = Serialize(pages.page(p).root());
    Document reparsed = std::move(Parse(serialized)).value();
    EXPECT_EQ(reparsed.node_count(), pages.page(p).node_count());
    EXPECT_EQ(StructuralSignature(reparsed.root()),
              StructuralSignature(pages.page(p).root()));
  }
}

TEST(HtmlFuzzTest, DeeplyNestedInputSurvives) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "<div>";
  deep += "x";
  // No closing tags at all.
  Result<Document> doc = Parse(deep);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text_nodes().size(), 1u);
  EXPECT_EQ(doc->node_count(), 2002u);  // Root + 2000 divs + text.
}

TEST(HtmlFuzzTest, ManySiblingsSurvive) {
  std::string wide = "<ul>";
  for (int i = 0; i < 5000; ++i) {
    wide += "<li>item" + std::to_string(i) + "</li>";
  }
  wide += "</ul>";
  Result<Document> doc = Parse(wide);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text_nodes().size(), 5000u);
  const Node* ul = doc->root()->child(0);
  EXPECT_EQ(ul->child(4999)->same_tag_child_number(), 5000);
}

}  // namespace
}  // namespace ntw::html
