// Property tests for Definition 1: every inductor shipped with the
// library must be *well-behaved* — fidelity, closure, monotonicity — on
// arbitrary label subsets. The enumeration algorithms' correctness
// (Theorems 1-3) depends on exactly these properties, so they are tested
// exhaustively over randomized label draws on several page sets.

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/table_inductor.h"
#include "core/wrapper.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

struct InductorCase {
  std::string name;
  std::shared_ptr<const WrapperInductor> inductor;
  // Candidate labels the inductor can meaningfully learn from.
  NodeSet (*candidates)(const PageSet&);
  // Which page set to use: 0 = Example-1 table, 1 = Figure-1 dealers.
  int page_set;
};

NodeSet AllText(const PageSet& pages) { return pages.AllTextNodes(); }
NodeSet CellText(const PageSet& pages) {
  return TableInductor::CellTextNodes(pages);
}

std::vector<InductorCase> MakeCases() {
  return {
      {"TABLE-on-table", std::make_shared<TableInductor>(), &CellText, 0},
      {"LR-on-table", std::make_shared<LrInductor>(), &AllText, 0},
      {"XPATH-on-table", std::make_shared<XPathInductor>(), &AllText, 0},
      {"LR-on-dealers", std::make_shared<LrInductor>(), &AllText, 1},
      {"XPATH-on-dealers", std::make_shared<XPathInductor>(), &AllText, 1},
  };
}

class WellBehavedTest : public ::testing::TestWithParam<InductorCase> {
 protected:
  WellBehavedTest() {
    pages_ = GetParam().page_set == 0 ? testing::ExampleTablePage()
                                      : testing::FigureOnePages();
    candidates_ = GetParam().candidates(pages_);
  }

  NodeSet RandomSubset(Rng* rng, size_t max_size) {
    std::vector<NodeRef> refs;
    size_t want = 1 + rng->NextBounded(max_size);
    for (size_t i = 0; i < want; ++i) {
      refs.push_back(candidates_[rng->NextBounded(candidates_.size())]);
    }
    return NodeSet(std::move(refs));
  }

  PageSet pages_;
  NodeSet candidates_;
};

// FIDELITY: L ⊆ φ(L).
TEST_P(WellBehavedTest, Fidelity) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    NodeSet labels = RandomSubset(&rng, 6);
    Induction induction = inductor.Induce(pages_, labels);
    EXPECT_TRUE(labels.IsSubsetOf(induction.extraction))
        << GetParam().name << " labels=" << labels.ToString()
        << " extraction=" << induction.extraction.ToString();
  }
}

// CLOSURE: ℓ ∈ φ(L) ⇒ φ(L ∪ {ℓ}) = φ(L).
TEST_P(WellBehavedTest, Closure) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    NodeSet labels = RandomSubset(&rng, 4);
    Induction induction = inductor.Induce(pages_, labels);
    // Add each extracted candidate node back; the wrapper must not change.
    for (const NodeRef& extracted : induction.extraction) {
      if (!candidates_.Contains(extracted)) continue;
      NodeSet extended = labels;
      extended.Insert(extracted);
      Induction again = inductor.Induce(pages_, extended);
      EXPECT_EQ(again.extraction, induction.extraction)
          << GetParam().name << " labels=" << labels.ToString()
          << " +" << extracted.page << "," << extracted.node;
    }
  }
}

// Full closure: φ(L ∪ φ(L)) = φ(L).
TEST_P(WellBehavedTest, ClosureUnderFullOutput) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(303);
  for (int trial = 0; trial < 25; ++trial) {
    NodeSet labels = RandomSubset(&rng, 4);
    Induction induction = inductor.Induce(pages_, labels);
    NodeSet closure = induction.extraction.Intersect(candidates_);
    Induction again = inductor.Induce(pages_, labels.Union(closure));
    EXPECT_EQ(again.extraction, induction.extraction) << GetParam().name;
  }
}

// MONOTONICITY: L1 ⊆ L2 ⇒ φ(L1) ⊆ φ(L2).
TEST_P(WellBehavedTest, Monotonicity) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    NodeSet l2 = RandomSubset(&rng, 6);
    // Random subset of l2.
    std::vector<NodeRef> sub;
    for (const NodeRef& ref : l2) {
      if (rng.NextBernoulli(0.6)) sub.push_back(ref);
    }
    if (sub.empty()) sub.push_back(l2[0]);
    NodeSet l1(std::move(sub));
    Induction i1 = inductor.Induce(pages_, l1);
    Induction i2 = inductor.Induce(pages_, l2);
    EXPECT_TRUE(i1.extraction.IsSubsetOf(i2.extraction))
        << GetParam().name << " L1=" << l1.ToString()
        << " L2=" << l2.ToString();
  }
}

// φ(∅) extracts nothing.
TEST_P(WellBehavedTest, EmptyLabels) {
  Induction induction = GetParam().inductor->Induce(pages_, NodeSet());
  EXPECT_TRUE(induction.extraction.empty()) << GetParam().name;
}

// Determinism: equal inputs give equal outputs.
TEST_P(WellBehavedTest, Deterministic) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    NodeSet labels = RandomSubset(&rng, 5);
    EXPECT_EQ(inductor.Induce(pages_, labels).extraction,
              inductor.Induce(pages_, labels).extraction);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInductors, WellBehavedTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<InductorCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Randomized generator suite: Definition 1 over ≥200 seeded random cases
// per inductor, on script-generated dealer sites plus the hand-written
// page sets. One "case" is one random (page set, label subset) draw on
// which all three properties are checked.
// ---------------------------------------------------------------------

/// Where an inductor's random labels are drawn from. TABLE only reads
/// table cells; HLRT's well-behavedness contract covers labels inside the
/// template-bracketed listing region (the truth list — see
/// hlrt_inductor.h), not arbitrary page chrome.
enum class LabelPool { kAllText, kCellText, kTruth };

struct RandomSuiteCase {
  std::string name;
  std::shared_ptr<const WrapperInductor> inductor;
  LabelPool pool;
  /// Whether φ(L ∪ {ℓ}) = φ(L) is checked for single extracted nodes ℓ.
  /// The feature-based inductors satisfy it pointwise. HLRT does not:
  /// its head/tail delimiters are recomputed over the set of pages that
  /// carry labels, so one added label can change h/t and with them the
  /// extraction — only the full closure φ(L ∪ φ(L)) = φ(L) holds
  /// empirically. That coupling is exactly why HLRT is restricted to
  /// blackbox BottomUp enumeration (see hlrt_inductor.h).
  bool pointwise_closure;
};

class RandomizedWellBehavedTest
    : public ::testing::TestWithParam<RandomSuiteCase> {
 protected:
  struct Context {
    const PageSet* pages;
    NodeSet pool;
  };

  RandomizedWellBehavedTest() {
    datasets::DealersConfig config;
    config.num_sites = 8;
    config.pages_per_site = 3;
    dataset_ = datasets::MakeDealers(config);
    table_pages_ = testing::ExampleTablePage();
    dealer_pages_ = testing::FigureOnePages();

    LabelPool pool = GetParam().pool;
    if (pool != LabelPool::kTruth) {
      contexts_.push_back({&table_pages_, PoolOf(table_pages_)});
      contexts_.push_back({&dealer_pages_, PoolOf(dealer_pages_)});
    }
    for (const datasets::SiteData& data : dataset_.sites) {
      NodeSet candidates = pool == LabelPool::kTruth
                               ? data.site.truth.at("name")
                               : PoolOf(data.site.pages);
      if (candidates.size() < 2) continue;
      contexts_.push_back({&data.site.pages, std::move(candidates)});
    }
  }

  NodeSet PoolOf(const PageSet& pages) const {
    return GetParam().pool == LabelPool::kCellText
               ? TableInductor::CellTextNodes(pages)
               : pages.AllTextNodes();
  }

  static NodeSet RandomSubset(const NodeSet& pool, Rng* rng,
                              size_t max_size) {
    std::vector<NodeRef> refs;
    size_t want = 1 + rng->NextBounded(max_size);
    for (size_t i = 0; i < want; ++i) {
      refs.push_back(pool[rng->NextBounded(pool.size())]);
    }
    return NodeSet(std::move(refs));
  }

  datasets::Dataset dataset_;
  PageSet table_pages_;
  PageSet dealer_pages_;
  std::vector<Context> contexts_;
};

TEST_P(RandomizedWellBehavedTest, DefinitionOneOver200RandomCases) {
  ASSERT_FALSE(contexts_.empty()) << GetParam().name;
  const WrapperInductor& inductor = *GetParam().inductor;
  Rng rng(7919);
  constexpr int kCases = 200;
  for (int trial = 0; trial < kCases; ++trial) {
    const Context& context = contexts_[trial % contexts_.size()];
    const PageSet& pages = *context.pages;
    NodeSet l2 = RandomSubset(context.pool, &rng, 6);
    Induction i2 = inductor.Induce(pages, l2);

    // FIDELITY: L ⊆ φ(L).
    EXPECT_TRUE(l2.IsSubsetOf(i2.extraction))
        << GetParam().name << " case " << trial
        << " labels=" << l2.ToString();

    // MONOTONICITY: a random L1 ⊆ L2 must extract a subset.
    std::vector<NodeRef> sub;
    for (const NodeRef& ref : l2) {
      if (rng.NextBernoulli(0.6)) sub.push_back(ref);
    }
    if (sub.empty()) sub.push_back(l2[0]);
    NodeSet l1(std::move(sub));
    Induction i1 = inductor.Induce(pages, l1);
    EXPECT_TRUE(i1.extraction.IsSubsetOf(i2.extraction))
        << GetParam().name << " case " << trial << " L1=" << l1.ToString()
        << " L2=" << l2.ToString();

    // CLOSURE: feeding back extracted pool nodes must not change the
    // wrapper. Spot-check two per case (bounds the cost), plus the full
    // closure φ(L ∪ (φ(L) ∩ pool)) = φ(L).
    if (GetParam().pointwise_closure) {
      int checked = 0;
      for (const NodeRef& extracted : i2.extraction) {
        if (!context.pool.Contains(extracted) || l2.Contains(extracted)) {
          continue;
        }
        NodeSet extended = l2;
        extended.Insert(extracted);
        EXPECT_EQ(inductor.Induce(pages, extended).extraction, i2.extraction)
            << GetParam().name << " case " << trial << " +" << extracted.page
            << "," << extracted.node;
        if (++checked == 2) break;
      }
    }
    NodeSet closure = i2.extraction.Intersect(context.pool);
    EXPECT_EQ(inductor.Induce(pages, l2.Union(closure)).extraction,
              i2.extraction)
        << GetParam().name << " case " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInductors, RandomizedWellBehavedTest,
    ::testing::Values(
        RandomSuiteCase{"TABLE", std::make_shared<TableInductor>(),
                        LabelPool::kCellText, true},
        RandomSuiteCase{"LR", std::make_shared<LrInductor>(),
                        LabelPool::kAllText, true},
        RandomSuiteCase{"HLRT", std::make_shared<HlrtInductor>(),
                        LabelPool::kTruth, false},
        RandomSuiteCase{"XPATH", std::make_shared<XPathInductor>(),
                        LabelPool::kAllText, true}),
    [](const ::testing::TestParamInfo<RandomSuiteCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ntw::core
