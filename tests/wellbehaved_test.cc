// Property tests for Definition 1: every inductor shipped with the
// library must be *well-behaved* — fidelity, closure, monotonicity — on
// arbitrary label subsets. The enumeration algorithms' correctness
// (Theorems 1-3) depends on exactly these properties, so they are tested
// exhaustively over randomized label draws on several page sets.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/table_inductor.h"
#include "core/wrapper.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "serve/drift.h"
#include "sitegen/mutate.h"
#include "test_util.h"

namespace ntw::core {
namespace {

struct InductorCase {
  std::string name;
  std::shared_ptr<const WrapperInductor> inductor;
  // Candidate labels the inductor can meaningfully learn from.
  NodeSet (*candidates)(const PageSet&);
  // Which page set to use: 0 = Example-1 table, 1 = Figure-1 dealers.
  int page_set;
};

NodeSet AllText(const PageSet& pages) { return pages.AllTextNodes(); }
NodeSet CellText(const PageSet& pages) {
  return TableInductor::CellTextNodes(pages);
}

std::vector<InductorCase> MakeCases() {
  return {
      {"TABLE-on-table", std::make_shared<TableInductor>(), &CellText, 0},
      {"LR-on-table", std::make_shared<LrInductor>(), &AllText, 0},
      {"XPATH-on-table", std::make_shared<XPathInductor>(), &AllText, 0},
      {"LR-on-dealers", std::make_shared<LrInductor>(), &AllText, 1},
      {"XPATH-on-dealers", std::make_shared<XPathInductor>(), &AllText, 1},
  };
}

class WellBehavedTest : public ::testing::TestWithParam<InductorCase> {
 protected:
  WellBehavedTest() {
    pages_ = GetParam().page_set == 0 ? testing::ExampleTablePage()
                                      : testing::FigureOnePages();
    candidates_ = GetParam().candidates(pages_);
  }

  NodeSet RandomSubset(Rng* rng, size_t max_size) {
    std::vector<NodeRef> refs;
    size_t want = 1 + rng->NextBounded(max_size);
    for (size_t i = 0; i < want; ++i) {
      refs.push_back(candidates_[rng->NextBounded(candidates_.size())]);
    }
    return NodeSet(std::move(refs));
  }

  PageSet pages_;
  NodeSet candidates_;
};

// FIDELITY: L ⊆ φ(L).
TEST_P(WellBehavedTest, Fidelity) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    NodeSet labels = RandomSubset(&rng, 6);
    Induction induction = inductor.Induce(pages_, labels);
    EXPECT_TRUE(labels.IsSubsetOf(induction.extraction))
        << GetParam().name << " labels=" << labels.ToString()
        << " extraction=" << induction.extraction.ToString();
  }
}

// CLOSURE: ℓ ∈ φ(L) ⇒ φ(L ∪ {ℓ}) = φ(L).
TEST_P(WellBehavedTest, Closure) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    NodeSet labels = RandomSubset(&rng, 4);
    Induction induction = inductor.Induce(pages_, labels);
    // Add each extracted candidate node back; the wrapper must not change.
    for (const NodeRef& extracted : induction.extraction) {
      if (!candidates_.Contains(extracted)) continue;
      NodeSet extended = labels;
      extended.Insert(extracted);
      Induction again = inductor.Induce(pages_, extended);
      EXPECT_EQ(again.extraction, induction.extraction)
          << GetParam().name << " labels=" << labels.ToString()
          << " +" << extracted.page << "," << extracted.node;
    }
  }
}

// Full closure: φ(L ∪ φ(L)) = φ(L).
TEST_P(WellBehavedTest, ClosureUnderFullOutput) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(303);
  for (int trial = 0; trial < 25; ++trial) {
    NodeSet labels = RandomSubset(&rng, 4);
    Induction induction = inductor.Induce(pages_, labels);
    NodeSet closure = induction.extraction.Intersect(candidates_);
    Induction again = inductor.Induce(pages_, labels.Union(closure));
    EXPECT_EQ(again.extraction, induction.extraction) << GetParam().name;
  }
}

// MONOTONICITY: L1 ⊆ L2 ⇒ φ(L1) ⊆ φ(L2).
TEST_P(WellBehavedTest, Monotonicity) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    NodeSet l2 = RandomSubset(&rng, 6);
    // Random subset of l2.
    std::vector<NodeRef> sub;
    for (const NodeRef& ref : l2) {
      if (rng.NextBernoulli(0.6)) sub.push_back(ref);
    }
    if (sub.empty()) sub.push_back(l2[0]);
    NodeSet l1(std::move(sub));
    Induction i1 = inductor.Induce(pages_, l1);
    Induction i2 = inductor.Induce(pages_, l2);
    EXPECT_TRUE(i1.extraction.IsSubsetOf(i2.extraction))
        << GetParam().name << " L1=" << l1.ToString()
        << " L2=" << l2.ToString();
  }
}

// φ(∅) extracts nothing.
TEST_P(WellBehavedTest, EmptyLabels) {
  Induction induction = GetParam().inductor->Induce(pages_, NodeSet());
  EXPECT_TRUE(induction.extraction.empty()) << GetParam().name;
}

// Determinism: equal inputs give equal outputs.
TEST_P(WellBehavedTest, Deterministic) {
  const auto& inductor = *GetParam().inductor;
  Rng rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    NodeSet labels = RandomSubset(&rng, 5);
    EXPECT_EQ(inductor.Induce(pages_, labels).extraction,
              inductor.Induce(pages_, labels).extraction);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInductors, WellBehavedTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<InductorCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Randomized generator suite: Definition 1 over ≥200 seeded random cases
// per inductor, on script-generated dealer sites plus the hand-written
// page sets. One "case" is one random (page set, label subset) draw on
// which all three properties are checked.
// ---------------------------------------------------------------------

/// Where an inductor's random labels are drawn from. TABLE only reads
/// table cells; HLRT's well-behavedness contract covers labels inside the
/// template-bracketed listing region (the truth list — see
/// hlrt_inductor.h), not arbitrary page chrome.
enum class LabelPool { kAllText, kCellText, kTruth };

struct RandomSuiteCase {
  std::string name;
  std::shared_ptr<const WrapperInductor> inductor;
  LabelPool pool;
  /// Whether φ(L ∪ {ℓ}) = φ(L) is checked for single extracted nodes ℓ.
  /// The feature-based inductors satisfy it pointwise. HLRT does not:
  /// its head/tail delimiters are recomputed over the set of pages that
  /// carry labels, so one added label can change h/t and with them the
  /// extraction — only the full closure φ(L ∪ φ(L)) = φ(L) holds
  /// empirically. That coupling is exactly why HLRT is restricted to
  /// blackbox BottomUp enumeration (see hlrt_inductor.h).
  bool pointwise_closure;
};

class RandomizedWellBehavedTest
    : public ::testing::TestWithParam<RandomSuiteCase> {
 protected:
  struct Context {
    const PageSet* pages;
    NodeSet pool;
  };

  RandomizedWellBehavedTest() {
    datasets::DealersConfig config;
    config.num_sites = 8;
    config.pages_per_site = 3;
    dataset_ = datasets::MakeDealers(config);
    table_pages_ = testing::ExampleTablePage();
    dealer_pages_ = testing::FigureOnePages();

    LabelPool pool = GetParam().pool;
    if (pool != LabelPool::kTruth) {
      contexts_.push_back({&table_pages_, PoolOf(table_pages_)});
      contexts_.push_back({&dealer_pages_, PoolOf(dealer_pages_)});
    }
    for (const datasets::SiteData& data : dataset_.sites) {
      NodeSet candidates = pool == LabelPool::kTruth
                               ? data.site.truth.at("name")
                               : PoolOf(data.site.pages);
      if (candidates.size() < 2) continue;
      contexts_.push_back({&data.site.pages, std::move(candidates)});
    }
  }

  NodeSet PoolOf(const PageSet& pages) const {
    return GetParam().pool == LabelPool::kCellText
               ? TableInductor::CellTextNodes(pages)
               : pages.AllTextNodes();
  }

  static NodeSet RandomSubset(const NodeSet& pool, Rng* rng,
                              size_t max_size) {
    std::vector<NodeRef> refs;
    size_t want = 1 + rng->NextBounded(max_size);
    for (size_t i = 0; i < want; ++i) {
      refs.push_back(pool[rng->NextBounded(pool.size())]);
    }
    return NodeSet(std::move(refs));
  }

  datasets::Dataset dataset_;
  PageSet table_pages_;
  PageSet dealer_pages_;
  std::vector<Context> contexts_;
};

TEST_P(RandomizedWellBehavedTest, DefinitionOneOver200RandomCases) {
  ASSERT_FALSE(contexts_.empty()) << GetParam().name;
  const WrapperInductor& inductor = *GetParam().inductor;
  Rng rng(7919);
  constexpr int kCases = 200;
  for (int trial = 0; trial < kCases; ++trial) {
    const Context& context = contexts_[trial % contexts_.size()];
    const PageSet& pages = *context.pages;
    NodeSet l2 = RandomSubset(context.pool, &rng, 6);
    Induction i2 = inductor.Induce(pages, l2);

    // FIDELITY: L ⊆ φ(L).
    EXPECT_TRUE(l2.IsSubsetOf(i2.extraction))
        << GetParam().name << " case " << trial
        << " labels=" << l2.ToString();

    // MONOTONICITY: a random L1 ⊆ L2 must extract a subset.
    std::vector<NodeRef> sub;
    for (const NodeRef& ref : l2) {
      if (rng.NextBernoulli(0.6)) sub.push_back(ref);
    }
    if (sub.empty()) sub.push_back(l2[0]);
    NodeSet l1(std::move(sub));
    Induction i1 = inductor.Induce(pages, l1);
    EXPECT_TRUE(i1.extraction.IsSubsetOf(i2.extraction))
        << GetParam().name << " case " << trial << " L1=" << l1.ToString()
        << " L2=" << l2.ToString();

    // CLOSURE: feeding back extracted pool nodes must not change the
    // wrapper. Spot-check two per case (bounds the cost), plus the full
    // closure φ(L ∪ (φ(L) ∩ pool)) = φ(L).
    if (GetParam().pointwise_closure) {
      int checked = 0;
      for (const NodeRef& extracted : i2.extraction) {
        if (!context.pool.Contains(extracted) || l2.Contains(extracted)) {
          continue;
        }
        NodeSet extended = l2;
        extended.Insert(extracted);
        EXPECT_EQ(inductor.Induce(pages, extended).extraction, i2.extraction)
            << GetParam().name << " case " << trial << " +" << extracted.page
            << "," << extracted.node;
        if (++checked == 2) break;
      }
    }
    NodeSet closure = i2.extraction.Intersect(context.pool);
    EXPECT_EQ(inductor.Induce(pages, l2.Union(closure)).extraction,
              i2.extraction)
        << GetParam().name << " case " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInductors, RandomizedWellBehavedTest,
    ::testing::Values(
        RandomSuiteCase{"TABLE", std::make_shared<TableInductor>(),
                        LabelPool::kCellText, true},
        RandomSuiteCase{"LR", std::make_shared<LrInductor>(),
                        LabelPool::kAllText, true},
        RandomSuiteCase{"HLRT", std::make_shared<HlrtInductor>(),
                        LabelPool::kTruth, false},
        RandomSuiteCase{"XPATH", std::make_shared<XPathInductor>(),
                        LabelPool::kAllText, true}),
    [](const ::testing::TestParamInfo<RandomSuiteCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Randomized drift corpus (DESIGN.md §13): for every wrapper kind, a
// detector baselined on a healthy generated site must fire on true
// template drift (the sitegen mutators) and stay silent — a pinned
// false-positive rate of exactly zero — on benign churn (whitespace
// padding, record-count variation). The detector itself is unit-tested
// in tests/drift_test.cc; this suite pins its behavior against real
// wrappers on real (generated) pages, seed by seed.
// ---------------------------------------------------------------------

struct DriftCorpusCase {
  std::string name;
  /// Learns the site's wrapper from truth labels on the training pages.
  WrapperPtr (*learn)(const PageSet& pages, const NodeSet& labels);
  /// The template redesign this wrapper kind is vulnerable to.
  std::vector<sitegen::Mutation> drift;
  /// Whether learning uses one page (TABLE's page-qualified row ids) or
  /// all three training pages.
  bool single_page_training;
};

class DriftCorpusTest : public ::testing::TestWithParam<DriftCorpusCase> {
 protected:
  static constexpr int kSeeds = 5;

  /// Fixed name/address pools; the per-seed Rng draws which names appear
  /// on each page and how many records it carries.
  static const std::vector<std::string>& Names() {
    static const std::vector<std::string> names = {
        "Acme Motors", "Bay Auto",   "Cape Cars",
        "Delta Vans",  "Echo Wheels", "Fox Trucks"};
    return names;
  }

  /// One listing page: varying title (whitespace churn pads inside it),
  /// one <tr class="rec"> per record, the name in <b> inside the first
  /// cell. The single template serves every wrapper kind: TABLE reads the
  /// cells, LR/HLRT the <b> delimiters, XPATH the class-filtered path.
  static std::string RenderPage(int page, const std::vector<int>& records) {
    std::string html =
        "<html><head><title>Listing page " + std::to_string(page) +
        "</title></head><body><h1>Dealers</h1>"
        "<table class=\"results\">";
    for (int record : records) {
      html += "<tr class=\"rec\"><td><b>" + Names()[record % 6] +
              "</b></td><td>Suite " + std::to_string(100 + record) +
              "</td></tr>";
    }
    html += "</table><p class=\"footer\">End of results</p></body></html>";
    return html;
  }

  /// Record draw for one page: 2-5 records, names rotated by the seed so
  /// every name enters the warmup dictionary across the warmup pages.
  static std::vector<int> DrawRecords(Rng* rng, bool fixed_first) {
    int count = static_cast<int>(rng->NextInRange(2, 5));
    std::vector<int> records;
    int start = static_cast<int>(rng->NextBounded(6));
    for (int i = 0; i < count; ++i) records.push_back(start + i);
    if (fixed_first) records[0] = 0;
    return records;
  }

  /// Extracts with the learned wrapper and scores the page's values into
  /// the detector, exactly as the serving path does.
  static serve::DriftState::Action FeedPage(serve::DriftState& state,
                                            const Wrapper& wrapper,
                                            const std::string& html) {
    PageSet pages;
    pages.AddPage(testing::MustParse(html));
    NodeSet extraction = wrapper.Extract(pages);
    std::vector<std::string> texts;
    for (size_t i = 0; i < extraction.size(); ++i) {
      texts.push_back(testing::TextOf(pages, extraction[i]));
    }
    std::vector<std::string_view> views(texts.begin(), texts.end());
    return state.Observe(0, views.data(), views.size(), html);
  }

  static serve::DriftConfig CorpusConfig() {
    serve::DriftConfig config;
    config.warmup_pages = 8;
    config.evaluate_every = 4;
    config.empty_streak_limit = 4;
    config.hysteresis = 1;
    config.retain_pages = 2;
    return config;
  }

  /// Learns the case's wrapper for one seeded site and returns it with a
  /// freshly warmed-up detector.
  struct Site {
    WrapperPtr wrapper;
    std::unique_ptr<serve::DriftState> state;
    Rng rng;

    explicit Site(uint64_t seed) : rng(seed) {}
  };

  Site MakeSite(uint64_t seed) {
    Site site(seed);
    // Training pages: the first record is pinned so single-page training
    // (TABLE) sees a stable first row.
    std::vector<std::string> bodies;
    for (int page = 0; page < 3; ++page) {
      bodies.push_back(RenderPage(page, DrawRecords(&site.rng, true)));
    }
    PageSet pages;
    size_t training_pages = GetParam().single_page_training ? 1 : 3;
    for (size_t i = 0; i < training_pages; ++i) {
      pages.AddPage(testing::MustParse(bodies[i]));
    }
    NodeSet labels = TrainingLabels(pages);
    site.wrapper = GetParam().learn(pages, labels);
    EXPECT_NE(site.wrapper, nullptr);
    EXPECT_FALSE(site.wrapper->Extract(pages).empty()) << GetParam().name;

    site.state = std::make_unique<serve::DriftState>(
        "corpus.example", "name", GetParam().name, CorpusConfig());
    // Deterministic warmup coverage: the filter half sees the full name
    // pool, so the probe half's repeat rate (and the baseline known
    // ratio) never depends on the seed's draws.
    for (int i = 0; i < CorpusConfig().warmup_pages; ++i) {
      FeedPage(*site.state, *site.wrapper,
               RenderPage(100 + i,
                          i % 2 == 0 ? std::vector<int>{0, 1, 2}
                                     : std::vector<int>{0, 4, 5, 3}));
    }
    EXPECT_EQ(site.state->phase(), serve::DriftState::Phase::kSteady);
    return site;
  }

  /// Truth labels for training: TABLE labels the first row's cells (its
  /// wrapper space is rows/columns); the others label every name node.
  NodeSet TrainingLabels(const PageSet& pages) {
    std::vector<NodeRef> refs;
    if (GetParam().single_page_training) {
      NodeSet cells = TableInductor::CellTextNodes(pages);
      for (size_t i = 0; i < cells.size(); ++i) {
        auto cell = TableInductor::CellOf(pages, cells[i]);
        if (cell.has_value() && cells[i].page == 0) refs.push_back(cells[i]);
      }
      // First row only: the two cells with the smallest row id.
      NodeSet all(std::move(refs));
      std::vector<NodeRef> first_row;
      auto first = TableInductor::CellOf(pages, all[0]);
      for (size_t i = 0; i < all.size(); ++i) {
        auto cell = TableInductor::CellOf(pages, all[i]);
        if (cell->row == first->row) first_row.push_back(all[i]);
      }
      return NodeSet(std::move(first_row));
    }
    for (const std::string& name : Names()) {
      for (const NodeRef& ref : testing::FindText(pages, name)) {
        refs.push_back(ref);
      }
    }
    return NodeSet(std::move(refs));
  }
};

// Benign churn — whitespace padding inside the title and natural record-
// count variation — must never fire: FP rate pinned at exactly zero.
TEST_P(DriftCorpusTest, SilentOnBenignChurn) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Site site = MakeSite(seed);
    for (int i = 0; i < 24; ++i) {
      sitegen::Mutation churn{sitegen::MutationKind::kWhitespaceChurn};
      churn.seed = seed + static_cast<uint64_t>(i);
      std::string page = sitegen::MutatePage(
          RenderPage(200 + i, DrawRecords(&site.rng, true)), churn);
      FeedPage(*site.state, *site.wrapper, page);
    }
    EXPECT_EQ(site.state->phase(), serve::DriftState::Phase::kSteady)
        << GetParam().name << " seed " << seed;
    EXPECT_EQ(site.state->drift_events(), 0)
        << GetParam().name << " seed " << seed;
    EXPECT_GT(site.state->evaluations(), 0);
  }
}

// True drift — the kind-appropriate template redesign — must fire within
// a bounded number of pages.
TEST_P(DriftCorpusTest, FiresOnTemplateDrift) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Site site = MakeSite(seed);
    // Sanity: the mutation really breaks this wrapper kind (the healthy
    // extraction is non-empty, the mutated one loses it).
    {
      std::string original = RenderPage(300, DrawRecords(&site.rng, true));
      std::string mutated = sitegen::MutatePage(original, GetParam().drift);
      PageSet pages;
      pages.AddPage(testing::MustParse(mutated));
      EXPECT_TRUE(site.wrapper->Extract(pages).empty())
          << GetParam().name << " seed " << seed;
    }
    int fired_after = -1;
    for (int i = 0; i < 40; ++i) {
      std::string page = sitegen::MutatePage(
          RenderPage(301 + i, DrawRecords(&site.rng, true)),
          GetParam().drift);
      FeedPage(*site.state, *site.wrapper, page);
      if (site.state->drift_events() > 0) {
        fired_after = i + 1;
        break;
      }
    }
    EXPECT_GE(fired_after, 1)
        << GetParam().name << " seed " << seed << " never fired";
    EXPECT_NE(site.state->phase(), serve::DriftState::Phase::kSteady)
        << GetParam().name << " seed " << seed;
  }
}

WrapperPtr LearnTable(const PageSet& pages, const NodeSet& labels) {
  return TableInductor().Induce(pages, labels).wrapper;
}
WrapperPtr LearnLr(const PageSet& pages, const NodeSet& labels) {
  return LrInductor().Induce(pages, labels).wrapper;
}
WrapperPtr LearnHlrt(const PageSet& pages, const NodeSet& labels) {
  return HlrtInductor().Induce(pages, labels).wrapper;
}
WrapperPtr LearnXpath(const PageSet& pages, const NodeSet& labels) {
  return XPathInductor().Induce(pages, labels).wrapper;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DriftCorpusTest,
    ::testing::Values(
        // A row wrapper's page-qualified pre-order row ids shift when the
        // layout grows a shell div.
        DriftCorpusCase{"TABLE",
                        &LearnTable,
                        {{sitegen::MutationKind::kWrapperDivInsertion}},
                        true},
        // Byte delimiters break when the markup tag around the value is
        // renamed.
        DriftCorpusCase{"LR",
                        &LearnLr,
                        {{sitegen::MutationKind::kDelimiterTextChange}},
                        false},
        DriftCorpusCase{"HLRT",
                        &LearnHlrt,
                        {{sitegen::MutationKind::kDelimiterTextChange}},
                        false},
        // The learned path filters on the training classes; a CSS
        // refactor renames them all.
        DriftCorpusCase{"XPATH",
                        &LearnXpath,
                        {{sitegen::MutationKind::kClassRename},
                         {sitegen::MutationKind::kWrapperDivInsertion}},
                        false}),
    [](const ::testing::TestParamInfo<DriftCorpusCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ntw::core
