#include "annotate/dictionary_annotator.h"
#include "annotate/regex_annotator.h"
#include "annotate/synthetic_annotator.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::annotate {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

TEST(DictionaryAnnotatorTest, LabelsExactMentions) {
  core::PageSet pages = FigureOnePages();
  DictionaryAnnotator annotator({"PORTER FURNITURE", "LULLABY LANE"});
  core::NodeSet labels = annotator.Annotate(pages);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(testing::TextOf(pages, labels[0]), "PORTER FURNITURE");
  EXPECT_EQ(testing::TextOf(pages, labels[1]), "LULLABY LANE");
}

TEST(DictionaryAnnotatorTest, MatchesInsideLongerText) {
  core::PageSet pages;
  pages.AddPage(MustParse(
      "<p>An authorized BestBuy retailer since 1999</p>"
      "<p>BestBuyify is different</p>"));
  DictionaryAnnotator annotator({"BestBuy"});
  core::NodeSet labels = annotator.Annotate(pages);
  ASSERT_EQ(labels.size(), 1u);  // Word boundaries: no BestBuyify hit.
}

TEST(DictionaryAnnotatorTest, CaseInsensitive) {
  core::PageSet pages;
  pages.AddPage(MustParse("<p>office depot</p>"));
  DictionaryAnnotator annotator({"Office Depot"});
  EXPECT_EQ(annotator.Annotate(pages).size(), 1u);
}

TEST(DictionaryAnnotatorTest, ShortEntriesDropped) {
  DictionaryAnnotator::Options options;
  options.min_entry_length = 4;
  DictionaryAnnotator annotator({"abc", "abcd"}, options);
  EXPECT_EQ(annotator.size(), 1u);
}

TEST(DictionaryAnnotatorTest, MaxPagesLimitsScope) {
  core::PageSet pages = FigureOnePages();
  DictionaryAnnotator::Options options;
  options.max_pages = 1;
  DictionaryAnnotator annotator(
      {"PORTER FURNITURE", "KIDDIE WORLD CENTER"}, options);
  core::NodeSet labels = annotator.Annotate(pages);
  ASSERT_EQ(labels.size(), 1u);  // KIDDIE is on page 2 — out of scope.
  EXPECT_EQ(labels[0].page, 0);
}

TEST(DictionaryAnnotatorTest, EmptyDictionary) {
  core::PageSet pages = FigureOnePages();
  DictionaryAnnotator annotator({});
  EXPECT_TRUE(annotator.Annotate(pages).empty());
}

TEST(RegexAnnotatorTest, ZipcodeAnnotator) {
  core::PageSet pages = FigureOnePages();
  RegexAnnotator annotator = RegexAnnotator::Zipcode();
  core::NodeSet labels = annotator.Annotate(pages);
  // The five city/state/zip lines (street numbers here are < 5 digits).
  ASSERT_EQ(labels.size(), 5u);
  for (const core::NodeRef& ref : labels) {
    EXPECT_NE(testing::TextOf(pages, ref).find(","), std::string::npos);
  }
}

TEST(RegexAnnotatorTest, FiveDigitStreetIsFalsePositive) {
  core::PageSet pages;
  pages.AddPage(MustParse("<p>10245 MAIN ST.</p><p>38652</p><p>1234</p>"));
  RegexAnnotator annotator = RegexAnnotator::Zipcode();
  EXPECT_EQ(annotator.Annotate(pages).size(), 2u);
}

TEST(RegexAnnotatorTest, CustomPattern) {
  Result<RegexAnnotator> annotator =
      RegexAnnotator::Create("phone", R"(\d{3}-\d{3}-\d{4})");
  ASSERT_TRUE(annotator.ok());
  core::PageSet pages;
  pages.AddPage(MustParse("<p>Phone: 662-534-3672</p><p>no digits</p>"));
  EXPECT_EQ(annotator->Annotate(pages).size(), 1u);
  EXPECT_EQ(annotator->Name(), "phone");
}

TEST(RegexAnnotatorTest, BadPatternFails) {
  EXPECT_FALSE(RegexAnnotator::Create("broken", "(a").ok());
}

TEST(SyntheticAnnotatorTest, ExtremesAreExact) {
  core::PageSet pages = FigureOnePages();
  core::NodeSet truth(FindText(pages, "PORTER FURNITURE"));
  for (const core::NodeRef& ref : FindText(pages, "LULLABY LANE")) {
    truth.Insert(ref);
  }
  Rng rng(1);
  SyntheticAnnotator perfect(1.0, 0.0);
  EXPECT_EQ(perfect.Annotate(pages, truth, &rng), truth);
  SyntheticAnnotator silent(0.0, 0.0);
  EXPECT_TRUE(silent.Annotate(pages, truth, &rng).empty());
}

TEST(SyntheticAnnotatorTest, RatesApproximateP1P2) {
  // A larger page set for stable statistics.
  core::PageSet pages;
  std::string html = "<ul>";
  for (int i = 0; i < 200; ++i) {
    html += "<li><b>t" + std::to_string(i) + "</b><span>o" +
            std::to_string(i) + "</span></li>";
  }
  html += "</ul>";
  pages.AddPage(MustParse(html));
  core::NodeSet truth;
  for (int i = 0; i < 200; ++i) {
    for (const core::NodeRef& ref :
         FindText(pages, "t" + std::to_string(i))) {
      truth.Insert(ref);
    }
  }
  ASSERT_EQ(truth.size(), 200u);

  SyntheticAnnotator annotator(0.3, 0.05);
  Rng rng(42);
  size_t hits = 0, false_hits = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    core::NodeSet labels = annotator.Annotate(pages, truth, &rng);
    hits += labels.IntersectSize(truth);
    false_hits += labels.size() - labels.IntersectSize(truth);
  }
  double recall = static_cast<double>(hits) / (200.0 * kTrials);
  double fp_rate = static_cast<double>(false_hits) / (200.0 * kTrials);
  EXPECT_NEAR(recall, 0.3, 0.04);
  EXPECT_NEAR(fp_rate, 0.05, 0.02);
}

TEST(SyntheticAnnotatorTest, SolveP2MatchesPrecisionTarget) {
  // n1 = 100 true, n2 = 900 false, p1 = 0.5, want precision 0.8:
  // p2 = 100·0.5·0.2 / (0.8·900).
  double p2 = SyntheticAnnotator::SolveP2(0.5, 0.8, 100, 900);
  EXPECT_NEAR(p2, 100 * 0.5 * 0.2 / (0.8 * 900), 1e-12);
  double expected_precision = 100 * 0.5 / (100 * 0.5 + 900 * p2);
  EXPECT_NEAR(expected_precision, 0.8, 1e-9);
}

TEST(SyntheticAnnotatorTest, SolveP2Extremes) {
  EXPECT_EQ(SyntheticAnnotator::SolveP2(0.5, 1.0, 10, 10), 0.0);
  EXPECT_EQ(SyntheticAnnotator::SolveP2(0.5, 0.8, 10, 0), 0.0);
  EXPECT_LE(SyntheticAnnotator::SolveP2(1.0, 0.01, 1000, 1), 1.0);
}

}  // namespace
}  // namespace ntw::annotate
