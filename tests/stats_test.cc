#include "stats/kde.h"

#include <cmath>

#include "gtest/gtest.h"

namespace ntw::stats {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(DescriptiveTest, StdDev) {
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);
}

TEST(DescriptiveTest, Quantile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({7}, 0.9), 7.0);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({5, 1, 3}, 0.5), 3.0);
}

TEST(DescriptiveTest, Median) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

TEST(KdeTest, EmptySampleFails) {
  EXPECT_FALSE(KernelDensity::Fit({}).ok());
}

TEST(KdeTest, DensityPeaksAtData) {
  Result<KernelDensity> kde = KernelDensity::Fit({4, 4, 4, 5, 3});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(4.0), kde->Density(8.0));
  EXPECT_GT(kde->Density(4.0), kde->Density(0.0));
}

TEST(KdeTest, DegenerateSampleStillSmooth) {
  Result<KernelDensity> kde = KernelDensity::Fit({2, 2, 2, 2});
  ASSERT_TRUE(kde.ok());
  EXPECT_GE(kde->bandwidth(), 0.75);  // Floored bandwidth.
  EXPECT_GT(kde->Density(2.0), kde->Density(3.0));
  EXPECT_GT(kde->Density(3.0), 0.0);
}

TEST(KdeTest, LogDensityFiniteFarAway) {
  Result<KernelDensity> kde = KernelDensity::Fit({1, 2, 3});
  ASSERT_TRUE(kde.ok());
  double log_density = kde->LogDensity(1e6);
  EXPECT_TRUE(std::isfinite(log_density));
  EXPECT_LT(log_density, kde->LogDensity(2.0));
}

TEST(KdeTest, IntegratesToRoughlyOne) {
  Result<KernelDensity> kde = KernelDensity::Fit({3, 5, 8, 9, 5, 4});
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  for (double x = -30; x <= 50; x += 0.05) {
    integral += kde->Density(x) * 0.05;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, FixedBandwidthRespected) {
  KernelDensity::Options options;
  options.fixed_bandwidth = 2.5;
  Result<KernelDensity> kde = KernelDensity::Fit({1, 9}, options);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidth(), 2.5);
}

TEST(KdeTest, BandwidthShrinksWithSampleSize) {
  std::vector<double> small = {1, 3, 5, 7, 9, 11};
  std::vector<double> large;
  for (int rep = 0; rep < 40; ++rep) {
    for (double v : small) large.push_back(v);
  }
  Result<KernelDensity> kde_small = KernelDensity::Fit(small);
  Result<KernelDensity> kde_large = KernelDensity::Fit(large);
  ASSERT_TRUE(kde_small.ok());
  ASSERT_TRUE(kde_large.ok());
  EXPECT_LT(kde_large->bandwidth(), kde_small->bandwidth());
}

TEST(KdeTest, SymmetricAroundSinglePoint) {
  Result<KernelDensity> kde = KernelDensity::Fit({5});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Density(4.0), kde->Density(6.0), 1e-12);
}

TEST(KdeTest, DiscriminatesSchemaSizes) {
  // The use case from the ranking model: schema sizes of real dealer lists
  // cluster around 3-4; a whole-table wrapper yields schema 1.
  Result<KernelDensity> kde = KernelDensity::Fit({3, 4, 3, 4, 3, 5, 4, 3});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->LogDensity(3.5) - kde->LogDensity(1.0), 1.0);
}

}  // namespace
}  // namespace ntw::stats
