#!/bin/sh
# Golden-file integration test: snapshot ntw_eval --json on a small
# generated corpus and compare byte-for-byte against tests/golden/.
# The JSON summary is deterministic by construction (no timing fields),
# so any diff is a real behaviour change — inspect it, then regenerate
# with:
#   sh tests/golden_test.sh <build-dir>/tests --update-golden
set -eu

BIN_DIR="$1"
MODE="${2:-check}"
SRC_DIR="$(cd "$(dirname "$0")" && pwd)"
GOLDEN="$SRC_DIR/golden/dealers_name_xpath.json"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# The pinned corpus: must never change without refreshing the golden file.
"$BIN_DIR/../tools/ntw_corpus" --dataset dealers --out "$WORK/corpus" \
    --sites 4 --pages 4 --seed 5 > /dev/null

"$BIN_DIR/../tools/ntw_eval" --corpus "$WORK/corpus" --type name \
    --all-sites --json --threads 1 \
    --metrics-json "$WORK/metrics.json" --trace "$WORK/trace.json" \
    > "$WORK/eval.json"

# The observability side-channels must be valid, schema-versioned JSON.
grep -q '"schema":"ntw-metrics"' "$WORK/metrics.json"
grep -q '"ntw.induce.calls"' "$WORK/metrics.json"
grep -q '"schema":"ntw-trace"' "$WORK/trace.json"
grep -q '"name":"run.single_type"' "$WORK/trace.json"

if [ "$MODE" = "--update-golden" ]; then
  mkdir -p "$SRC_DIR/golden"
  cp "$WORK/eval.json" "$GOLDEN"
  echo "golden_test: updated $GOLDEN"
  exit 0
fi

cmp "$GOLDEN" "$WORK/eval.json" || {
  echo "golden_test: ntw_eval --json drifted from $GOLDEN" >&2
  echo "  (if intentional, rerun with --update-golden)" >&2
  exit 1
}

# The summary must also be thread-count invariant: a parallel run has to
# reproduce the golden bytes exactly.
"$BIN_DIR/../tools/ntw_eval" --corpus "$WORK/corpus" --type name \
    --all-sites --json --threads 4 > "$WORK/eval_mt.json"
cmp "$GOLDEN" "$WORK/eval_mt.json" || {
  echo "golden_test: --threads 4 output differs from golden" >&2
  exit 1
}

echo "golden_test OK"
