// Tests for the persistence layer: CEscape/CUnescape, file utilities,
// command-line flags, wrapper save/load, and corpus export/import.

#include <cstdlib>
#include <filesystem>

#include "common/file_util.h"
#include "common/rng.h"
#include "common/flags.h"
#include "common/strings.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "datasets/corpus_io.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw {
namespace {

// Unique scratch directory per test run.
std::string ScratchDir(const std::string& tag) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/ntw_io_test_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// ----------------------------------------------------------- escaping.

TEST(EscapeTest, RoundTripsControlCharacters) {
  std::string original = "a\tb\nc\rd\\e\x01\x7f plain";
  std::string escaped = CEscape(original);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  Result<std::string> back = CUnescape(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, original);
}

TEST(EscapeTest, EmptyAndPlain) {
  EXPECT_EQ(CEscape(""), "");
  EXPECT_EQ(CEscape("hello world"), "hello world");
  EXPECT_EQ(*CUnescape("hello"), "hello");
}

TEST(EscapeTest, RejectsMalformed) {
  EXPECT_FALSE(CUnescape("bad\\").ok());
  EXPECT_FALSE(CUnescape("bad\\q").ok());
  EXPECT_FALSE(CUnescape("bad\\x1").ok());
  EXPECT_FALSE(CUnescape("bad\\xzz").ok());
}

TEST(EscapeTest, RandomBytesRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::string original;
    for (size_t i = 0; i < rng.NextBounded(40); ++i) {
      original.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Result<std::string> back = CUnescape(CEscape(original));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, original);
  }
}

// ----------------------------------------------------------- file utils.

TEST(FileUtilTest, WriteReadRoundTrip) {
  std::string dir = ScratchDir("files");
  ASSERT_TRUE(MakeDirs(dir).ok());
  std::string path = dir + "/f.txt";
  ASSERT_TRUE(WriteFile(path, "first contents").ok());
  // Overwrite with binary content including an embedded NUL.
  ASSERT_TRUE(WriteFile(path, std::string("a\0b", 3)).ok());
  Result<std::string> back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, std::string("a\0b", 3));
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(dir + "/missing"));
}

TEST(FileUtilTest, ReadMissingFails) {
  EXPECT_FALSE(ReadFile("/definitely/not/here").ok());
}

TEST(FileUtilTest, ListFilesFiltersAndSorts) {
  std::string dir = ScratchDir("list");
  ASSERT_TRUE(MakeDirs(dir).ok());
  ASSERT_TRUE(WriteFile(dir + "/b.html", "x").ok());
  ASSERT_TRUE(WriteFile(dir + "/a.html", "x").ok());
  ASSERT_TRUE(WriteFile(dir + "/c.txt", "x").ok());
  Result<std::vector<std::string>> files = ListFiles(dir, ".html");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_TRUE((*files)[0].ends_with("a.html"));
  EXPECT_TRUE((*files)[1].ends_with("b.html"));
  EXPECT_FALSE(ListFiles(dir + "/nope").ok());
}

// ----------------------------------------------------------------- flags.

TEST(FlagsTest, AllForms) {
  // Note: "--verbose pos1" is the space form and consumes "pos1" — a flag
  // intended as boolean must be last, use "=", or precede another flag.
  const char* argv[] = {"tool",      "--name=value", "--count", "7",
                        "--verbose", "pos1",         "--",      "--pos2"};
  Result<Flags> flags = Flags::Parse(8, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->Get("name"), "value");
  EXPECT_EQ(*flags->GetInt("count", 0), 7);
  EXPECT_TRUE(flags->Has("verbose"));
  EXPECT_EQ(flags->Get("verbose"), "pos1");
  ASSERT_EQ(flags->positional().size(), 1u);
  EXPECT_EQ(flags->positional()[0], "--pos2");
}

TEST(FlagsTest, BooleanBeforeFlagAndAtEnd) {
  const char* argv[] = {"tool", "--quiet", "--name=x", "--verbose"};
  Result<Flags> flags = Flags::Parse(4, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("quiet"));
  EXPECT_EQ(flags->Get("quiet"), "");
  EXPECT_TRUE(flags->Has("verbose"));
  EXPECT_EQ(flags->Get("verbose"), "");
}

TEST(FlagsTest, Defaults) {
  const char* argv[] = {"tool"};
  Result<Flags> flags = Flags::Parse(1, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->Get("missing", "fallback"), "fallback");
  EXPECT_EQ(*flags->GetInt("missing", 42), 42);
  EXPECT_EQ(*flags->GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, NumericValidation) {
  const char* argv[] = {"tool", "--n=abc", "--d=1.5"};
  Result<Flags> flags = Flags::Parse(3, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetInt("n", 0).ok());
  EXPECT_DOUBLE_EQ(*flags->GetDouble("d", 0), 1.5);
}

TEST(FlagsTest, UnknownDetection) {
  const char* argv[] = {"tool", "--known=1", "--mystery"};
  Result<Flags> flags = Flags::Parse(3, argv);
  ASSERT_TRUE(flags.ok());
  std::vector<std::string> unknown = flags->UnknownFlags({"known"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mystery");
}

TEST(FlagsTest, MalformedFlagRejected) {
  const char* argv[] = {"tool", "--=x"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
}

// --------------------------------------------------------- wrapper store.

TEST(WrapperStoreTest, XPathRoundTrip) {
  core::PageSet pages = testing::FigureOnePages();
  core::XPathInductor inductor;
  core::NodeSet labels(testing::FindText(pages, "WOODLAND FURNITURE"));
  for (const core::NodeRef& ref :
       testing::FindText(pages, "KIDDIE WORLD CENTER")) {
    labels.Insert(ref);
  }
  core::Induction induction = inductor.Induce(pages, labels);
  Result<std::string> record = core::SerializeWrapper(*induction.wrapper);
  ASSERT_TRUE(record.ok());
  Result<core::WrapperPtr> back = core::DeserializeWrapper(*record);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->Extract(pages), induction.extraction);
}

TEST(WrapperStoreTest, LrRoundTripWithControlCharacters) {
  core::LrWrapper wrapper("<td>\t<u>", "</u>\n");
  Result<std::string> record = core::SerializeWrapper(wrapper);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->find('\n'), std::string::npos);  // Single line.
  Result<core::WrapperPtr> back = core::DeserializeWrapper(*record);
  ASSERT_TRUE(back.ok());
  const auto* lr = dynamic_cast<const core::LrWrapper*>(back->get());
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(lr->left(), "<td>\t<u>");
  EXPECT_EQ(lr->right(), "</u>\n");
}

TEST(WrapperStoreTest, LrEmptyDelimitersSurvive) {
  core::LrWrapper wrapper("", "");
  Result<std::string> record = core::SerializeWrapper(wrapper);
  ASSERT_TRUE(record.ok());
  Result<core::WrapperPtr> back = core::DeserializeWrapper(*record + "\n");
  ASSERT_TRUE(back.ok());
  const auto* lr = dynamic_cast<const core::LrWrapper*>(back->get());
  ASSERT_NE(lr, nullptr);
  EXPECT_TRUE(lr->left().empty());
  EXPECT_TRUE(lr->right().empty());
}

TEST(WrapperStoreTest, HlrtRoundTrip) {
  core::HlrtWrapper wrapper("<ul class=\"stores\">", "</ul>", "><li><b>",
                            "</b>");
  Result<std::string> record = core::SerializeWrapper(wrapper);
  ASSERT_TRUE(record.ok());
  Result<core::WrapperPtr> back = core::DeserializeWrapper(*record);
  ASSERT_TRUE(back.ok());
  const auto* hlrt = dynamic_cast<const core::HlrtWrapper*>(back->get());
  ASSERT_NE(hlrt, nullptr);
  EXPECT_EQ(hlrt->head(), wrapper.head());
  EXPECT_EQ(hlrt->tail(), wrapper.tail());
}

TEST(WrapperStoreTest, SaveLoadFile) {
  std::string dir = ScratchDir("wrapper");
  ASSERT_TRUE(MakeDirs(dir).ok());
  core::LrWrapper wrapper("<u>", "</u>");
  ASSERT_TRUE(core::SaveWrapper(wrapper, dir + "/w.txt").ok());
  Result<core::WrapperPtr> back = core::LoadWrapper(dir + "/w.txt");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->ToString(), wrapper.ToString());
}

TEST(WrapperStoreTest, Malformed) {
  EXPECT_FALSE(core::DeserializeWrapper("").ok());
  EXPECT_FALSE(core::DeserializeWrapper("BOGUS\tx").ok());
  EXPECT_FALSE(core::DeserializeWrapper("XPATH\t//bad[").ok());
  EXPECT_FALSE(core::DeserializeWrapper("LR\tonlyone").ok());
  EXPECT_FALSE(core::DeserializeWrapper("HLRT\ta\tb").ok());
}

// ------------------------------------------------------------ corpus io.

TEST(CorpusIoTest, SiteRoundTripPreservesEverything) {
  datasets::DealersConfig config;
  config.num_sites = 2;
  config.pages_per_site = 3;
  datasets::Dataset dataset = datasets::MakeDealers(config);
  const datasets::SiteData& original = dataset.sites[0];

  std::string dir = ScratchDir("site");
  ASSERT_TRUE(datasets::ExportSite(original, dir).ok());
  Result<datasets::SiteData> imported = datasets::ImportSite(dir);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  EXPECT_EQ(imported->site.name, original.site.name);
  ASSERT_EQ(imported->site.pages.size(), original.site.pages.size());
  for (size_t p = 0; p < original.site.pages.size(); ++p) {
    EXPECT_EQ(imported->site.pages.page(p).node_count(),
              original.site.pages.page(p).node_count());
  }
  EXPECT_EQ(imported->site.truth.at("name"), original.site.truth.at("name"));
  EXPECT_EQ(imported->annotations.at("name"),
            original.annotations.at("name"));
  // Truth nodes carry the same text after the round trip.
  for (const core::NodeRef& ref : original.site.truth.at("name")) {
    EXPECT_EQ(imported->site.pages.Resolve(ref)->text(),
              original.site.pages.Resolve(ref)->text());
  }
}

TEST(CorpusIoTest, DatasetRoundTrip) {
  datasets::DealersConfig config;
  config.num_sites = 3;
  config.pages_per_site = 2;
  datasets::Dataset dataset = datasets::MakeDealers(config);

  std::string dir = ScratchDir("dataset");
  ASSERT_TRUE(datasets::ExportDataset(dataset, dir).ok());
  Result<datasets::Dataset> imported = datasets::ImportDataset(dir);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->name, "DEALERS");
  EXPECT_EQ(imported->types, dataset.types);
  ASSERT_EQ(imported->sites.size(), 3u);
}

TEST(CorpusIoTest, LoadPagesRejectsEmptyDirectory) {
  std::string dir = ScratchDir("empty");
  ASSERT_TRUE(MakeDirs(dir).ok());
  EXPECT_FALSE(datasets::LoadPagesFromDirectory(dir).ok());
  EXPECT_FALSE(datasets::ImportDataset(dir).ok());
}

TEST(CorpusIoTest, ImportRejectsDanglingReferences) {
  datasets::DealersConfig config;
  config.num_sites = 1;
  config.pages_per_site = 2;
  datasets::Dataset dataset = datasets::MakeDealers(config);
  std::string dir = ScratchDir("dangling");
  ASSERT_TRUE(datasets::ExportSite(dataset.sites[0], dir).ok());
  ASSERT_TRUE(WriteFile(dir + "/truth.tsv", "name\t0\t999999\n").ok());
  EXPECT_FALSE(datasets::ImportSite(dir).ok());
}

}  // namespace
}  // namespace ntw
