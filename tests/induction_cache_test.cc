#include "core/induction_cache.h"

#include <atomic>

#include "common/thread_pool.h"
#include "core/table_inductor.h"
#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::ExampleCell;
using ::ntw::testing::ExampleTablePage;

class InductionCacheTest : public ::testing::Test {
 protected:
  InductionCacheTest() : pages_(ExampleTablePage()) {}

  NodeSet Cell(int row, int col) {
    return NodeSet({ExampleCell(pages_, row, col)});
  }

  PageSet pages_;
  TableInductor inductor_;
};

TEST_F(InductionCacheTest, MissThenHitCounters) {
  InductionCache cache;
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);

  NodeSet a = Cell(1, 1);
  Induction first = cache.GetOrInduce(inductor_, pages_, a);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);

  Induction replay = cache.GetOrInduce(inductor_, pages_, a);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(replay.extraction, first.extraction);

  NodeSet b = Cell(2, 1);
  cache.GetOrInduce(inductor_, pages_, b);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(InductionCacheTest, ReplayMatchesDirectInduction) {
  InductionCache cache;
  NodeSet labels({ExampleCell(pages_, 1, 1), ExampleCell(pages_, 2, 1)});
  Induction direct = inductor_.Induce(pages_, labels);
  cache.GetOrInduce(inductor_, pages_, labels);
  Induction cached = cache.GetOrInduce(inductor_, pages_, labels);
  EXPECT_EQ(cached.extraction, direct.extraction);
  EXPECT_EQ(cached.extraction.Fingerprint(), direct.extraction.Fingerprint());
  ASSERT_NE(cached.wrapper, nullptr);
  EXPECT_EQ(cached.wrapper->Extract(pages_), direct.wrapper->Extract(pages_));
}

TEST_F(InductionCacheTest, SingleFlightUnderConcurrency) {
  // 8 workers × 64 requests over 4 distinct subsets: the inductor must run
  // exactly 4 times no matter how the requests interleave, and the
  // counters must balance.
  XPathInductor base;
  CountingInductor counting(&base);
  PageSet pages = testing::FigureOnePages();
  std::vector<NodeSet> subsets;
  for (const char* text : {"PORTER FURNITURE", "LULLABY LANE",
                           "HELLER HOME CENTER", "KIDDIE WORLD CENTER"}) {
    subsets.emplace_back(testing::FindText(pages, text));
  }

  InductionCache cache;
  ThreadPool pool(8);
  constexpr size_t kRequests = 256;
  std::atomic<int> mismatches{0};
  pool.ParallelFor(kRequests, [&](size_t i) {
    const NodeSet& labels = subsets[i % subsets.size()];
    Induction induction = cache.GetOrInduce(counting, pages, labels);
    if (!labels.IsSubsetOf(induction.extraction)) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(counting.calls(), static_cast<int64_t>(subsets.size()));
  EXPECT_EQ(cache.misses(), static_cast<int64_t>(subsets.size()));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<int64_t>(kRequests));
  EXPECT_EQ(cache.size(), subsets.size());
}

}  // namespace
}  // namespace ntw::core
