// Pins the fast-path determinism contract: a CompiledWrapper executed
// over the arena DOM returns exactly the values the interpreted
// Wrapper::Extract + node->text() pipeline returns, for every wrapper
// kind (XPATH, LR, HLRT) on every page of a generated corpus — with the
// streaming path joining the comparison for dom_free() plans (the no-DOM
// stream matchers) and streamable() XPath plans (the fused tokenize→
// plan-execute machine) — and at the service layer, ExtractService in
// streaming, arena-DOM and interpreted configurations produces
// byte-identical HTTP responses for /extract and /extract_batch.

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "core/compiled_wrapper.h"
#include "core/hlrt_inductor.h"
#include "core/lr_inductor.h"
#include "core/wrapper_store.h"
#include "core/xpath_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "html/arena_dom.h"
#include "html/parser.h"
#include "html/serializer.h"
#include "serve/service.h"
#include "serve/wrapper_repository.h"

namespace ntw {
namespace {

/// The interpreted reference: heap-parse one page, apply the wrapper,
/// resolve the refs to text.
std::vector<std::string> InterpretedValues(const core::Wrapper& wrapper,
                                           const std::string& source) {
  Result<html::Document> doc = html::Parse(source);
  EXPECT_TRUE(doc.ok());
  core::PageSet pages;
  pages.AddPage(std::move(*doc));
  std::vector<std::string> values;
  for (const core::NodeRef& ref : wrapper.Extract(pages)) {
    const html::Node* node = pages.Resolve(ref);
    if (node != nullptr) values.push_back(node->text());
  }
  return values;
}

std::vector<std::string> FastValues(const core::CompiledWrapper& compiled,
                                    core::FastPageBuffer& buffer,
                                    const std::string& source) {
  buffer.Clear();
  html::ArenaParse(source, &buffer.doc);
  compiled.Extract(buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(),
                                  buffer.values.end());
}

std::vector<std::string> StreamingValues(
    const core::CompiledWrapper& compiled, core::StreamPageBuffer& buffer,
    const std::string& source) {
  buffer.Clear();
  compiled.ExtractStreaming(source, buffer, &buffer.values);
  return std::vector<std::string>(buffer.values.begin(),
                                  buffer.values.end());
}

class FastPathEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datasets::DealersConfig config;
    config.num_sites = 3;
    dealers_ = new datasets::Dataset(datasets::MakeDealers(config));
  }

  static void TearDownTestSuite() {
    delete dealers_;
    dealers_ = nullptr;
  }

  /// Learns one wrapper per site with `inductor` and checks fast ==
  /// interpreted (and, for dom_free() plans, == streaming) on every page
  /// of every site.
  void CheckInductor(const core::WrapperInductor& inductor) {
    core::FastPageBuffer buffer;
    core::StreamPageBuffer stream_buffer;
    for (const datasets::SiteData& site : dealers_->sites) {
      auto truth = site.site.truth.find("name");
      ASSERT_NE(truth, site.site.truth.end());
      core::Induction induction =
          inductor.Induce(site.site.pages, truth->second);
      ASSERT_NE(induction.wrapper, nullptr);
      std::shared_ptr<const core::CompiledWrapper> compiled =
          core::CompiledWrapper::Compile(*induction.wrapper);
      ASSERT_NE(compiled, nullptr)
          << "no compiled form for " << induction.wrapper->ToString();
      for (size_t p = 0; p < site.site.pages.size(); ++p) {
        std::string source =
            html::Serialize(site.site.pages.page(p).root());
        std::vector<std::string> interpreted =
            InterpretedValues(*induction.wrapper, source);
        EXPECT_EQ(FastValues(*compiled, buffer, source), interpreted)
            << "site " << site.site.name << " page " << p << " wrapper "
            << induction.wrapper->ToString();
        // Every learned plan has a streaming form: LR/HLRT are
        // dom_free(), and every induced XPath program is streamable()
        // (≤63 steps); the fused executor must match byte for byte.
        ASSERT_TRUE(compiled->dom_free() || compiled->streamable())
            << induction.wrapper->ToString();
        EXPECT_EQ(StreamingValues(*compiled, stream_buffer, source),
                  interpreted)
            << "streaming, site " << site.site.name << " page " << p
            << " wrapper " << induction.wrapper->ToString();
      }
    }
  }

  static datasets::Dataset* dealers_;
};

datasets::Dataset* FastPathEquivalenceTest::dealers_ = nullptr;

TEST_F(FastPathEquivalenceTest, XPathWrapper) {
  CheckInductor(core::XPathInductor());
}

TEST_F(FastPathEquivalenceTest, LrWrapper) {
  CheckInductor(core::LrInductor());
}

TEST_F(FastPathEquivalenceTest, HlrtWrapper) {
  CheckInductor(core::HlrtInductor());
}

TEST_F(FastPathEquivalenceTest, WrapperRoundTripThroughStoreStaysEquivalent) {
  // The serving repository deserializes records from disk; make sure the
  // compiled form of a round-tripped wrapper matches too.
  core::XPathInductor inductor;
  const datasets::SiteData& site = dealers_->sites[0];
  core::Induction induction =
      inductor.Induce(site.site.pages, site.site.truth.at("name"));
  Result<std::string> record = core::SerializeWrapper(*induction.wrapper);
  ASSERT_TRUE(record.ok());
  Result<core::WrapperPtr> loaded = core::DeserializeWrapper(*record);
  ASSERT_TRUE(loaded.ok());
  std::shared_ptr<const core::CompiledWrapper> compiled =
      core::CompiledWrapper::Compile(**loaded);
  ASSERT_NE(compiled, nullptr);
  core::FastPageBuffer buffer;
  for (size_t p = 0; p < site.site.pages.size(); ++p) {
    std::string source = html::Serialize(site.site.pages.page(p).root());
    EXPECT_EQ(FastValues(*compiled, buffer, source),
              InterpretedValues(**loaded, source));
  }
}

// -------------------------------------------------------------------
// Service layer: byte-identical HTTP responses with and without the
// fast path.
// -------------------------------------------------------------------

class ServiceEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_dir_ = std::filesystem::temp_directory_path() /
                ("ntw_fastpath_repo_" + std::to_string(::getpid()));
    datasets::DealersConfig config;
    config.num_sites = 2;
    dealers_ = datasets::MakeDealers(config);
    core::XPathInductor xpath;
    core::LrInductor lr;
    core::HlrtInductor hlrt;
    const datasets::SiteData& site = dealers_.sites[0];
    const core::NodeSet& truth = site.site.truth.at("name");
    struct Learned {
      const char* attribute;
      const core::WrapperInductor* inductor;
    };
    for (const Learned& learned :
         {Learned{"xpath", &xpath}, Learned{"lr", &lr},
          Learned{"hlrt", &hlrt}}) {
      core::Induction induction =
          learned.inductor->Induce(site.site.pages, truth);
      Result<std::string> record =
          core::SerializeWrapper(*induction.wrapper);
      ASSERT_TRUE(record.ok());
      std::string dir = (repo_dir_ / "s").string();
      ASSERT_TRUE(MakeDirs(dir).ok());
      ASSERT_TRUE(WriteFile(dir + "/" + learned.attribute + ".wrapper",
                            *record + "\n")
                      .ok());
    }
    for (size_t p = 0; p < site.site.pages.size(); ++p) {
      sources_.push_back(html::Serialize(site.site.pages.page(p).root()));
    }
    repository_ =
        std::make_unique<serve::WrapperRepository>(repo_dir_.string());
    ASSERT_TRUE(repository_->Load().ok());
    ASSERT_TRUE(repository_->snapshot()->errors.empty());
    // Options{true} defaults streaming on, so fast_ routes LR/HLRT through
    // the no-DOM path; dom_ pins them to the arena fast path instead.
    fast_ = std::make_unique<serve::ExtractService>(
        repository_.get(), &ThreadPool::Global(),
        serve::ExtractService::Options{true});
    dom_ = std::make_unique<serve::ExtractService>(
        repository_.get(), &ThreadPool::Global(),
        serve::ExtractService::Options{true, 0, false});
    interpreted_ = std::make_unique<serve::ExtractService>(
        repository_.get(), &ThreadPool::Global(),
        serve::ExtractService::Options{false});
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(repo_dir_, ec);
  }

  void ExpectSameResponse(const serve::HttpRequest& request) {
    serve::HttpResponse a = fast_->Handle(request);
    serve::HttpResponse b = interpreted_->Handle(request);
    serve::HttpResponse c = dom_->Handle(request);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.content_type, b.content_type);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(c.status, b.status);
    EXPECT_EQ(c.content_type, b.content_type);
    EXPECT_EQ(c.body, b.body);
  }

  std::filesystem::path repo_dir_;
  datasets::Dataset dealers_;
  std::vector<std::string> sources_;
  std::unique_ptr<serve::WrapperRepository> repository_;
  std::unique_ptr<serve::ExtractService> fast_;
  std::unique_ptr<serve::ExtractService> dom_;
  std::unique_ptr<serve::ExtractService> interpreted_;
};

TEST_F(ServiceEquivalenceTest, ExtractEndpointBytesMatch) {
  for (const char* attribute : {"xpath", "lr", "hlrt"}) {
    for (const std::string& source : sources_) {
      serve::HttpRequest request;
      request.method = "POST";
      request.path = "/extract";
      request.query.emplace_back("site", "s");
      request.query.emplace_back("attribute", attribute);
      request.body = source;
      ExpectSameResponse(request);
    }
  }
}

TEST_F(ServiceEquivalenceTest, ExtractBatchBytesMatch) {
  std::string body;
  for (size_t p = 0; p < sources_.size(); ++p) {
    obs::JsonWriter line;
    line.BeginObject();
    line.KV("id", "page-" + std::to_string(p));
    line.KV("html", sources_[p]);
    line.EndObject();
    body += line.Take() + "\n";
  }
  serve::HttpRequest request;
  request.method = "POST";
  request.path = "/extract_batch";
  request.query.emplace_back("site", "s");
  request.query.emplace_back("attribute", "xpath");
  request.body = body;
  ExpectSameResponse(request);
}

TEST_F(ServiceEquivalenceTest, MissingWrapperBytesMatch) {
  serve::HttpRequest request;
  request.method = "POST";
  request.path = "/extract";
  request.query.emplace_back("site", "nope");
  request.query.emplace_back("attribute", "name");
  request.body = sources_[0];
  ExpectSameResponse(request);
}

}  // namespace
}  // namespace ntw
