// Unit tests for the bump allocator behind the arena DOM: alignment,
// string copies, the Reset() recycling contract (capacity retained and
// consolidated), and the fresh-vs-reused byte accounting the serving
// layer exports as arena_bytes_reused.

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <string>

#include "gtest/gtest.h"

namespace ntw {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  arena.Allocate(1, 1);
  char* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  char* p16 = arena.Allocate(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % alignof(std::max_align_t), 0u);
}

TEST(ArenaTest, CopyStringIsStableAcrossLaterAllocations) {
  Arena arena;
  std::string_view a = arena.CopyString("hello");
  std::string_view b = arena.CopyString("world");
  for (int i = 0; i < 1000; ++i) arena.Allocate(64);
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "world");
}

TEST(ArenaTest, CopyEmptyStringTouchesNothing) {
  Arena arena;
  std::string_view v = arena.CopyString("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), 0u);
}

TEST(ArenaTest, FirstCycleIsAllFreshBytes) {
  Arena arena(1024);
  arena.Allocate(100, 1);
  EXPECT_EQ(arena.used(), 100u);
  EXPECT_EQ(arena.fresh_bytes(), 100u);
  // Later allocations in the same (already-grown) chunk are not "fresh":
  // the chunk exists, only its first use grew capacity.
  arena.Allocate(100, 1);
  EXPECT_EQ(arena.used(), 200u);
  EXPECT_EQ(arena.fresh_bytes(), 100u);
}

TEST(ArenaTest, ResetRecyclesWithoutFreshGrowth) {
  Arena arena(1024);
  arena.Allocate(700, 1);
  size_t capacity = arena.capacity();
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.fresh_bytes(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);
  // The whole second cycle is served from recycled capacity.
  arena.Allocate(700, 1);
  EXPECT_EQ(arena.used(), 700u);
  EXPECT_EQ(arena.fresh_bytes(), 0u);
}

TEST(ArenaTest, ResetConsolidatesSpilledChunks) {
  Arena arena(256);
  // Spill across several chunks.
  for (int i = 0; i < 10; ++i) arena.Allocate(200, 1);
  size_t capacity = arena.capacity();
  EXPECT_GE(capacity, 2000u);
  arena.Reset();
  EXPECT_EQ(arena.capacity(), capacity);
  // After consolidation the same workload fits one contiguous run: no
  // fresh growth, and every allocation bumps within one chunk.
  for (int i = 0; i < 10; ++i) arena.Allocate(200, 1);
  EXPECT_EQ(arena.fresh_bytes(), 0u);
}

TEST(ArenaTest, OversizeAllocationGetsItsOwnChunk) {
  Arena arena(64);
  char* p = arena.Allocate(10000, 1);
  std::memset(p, 0xab, 10000);  // Must be fully writable.
  EXPECT_GE(arena.capacity(), 10000u);
  EXPECT_EQ(arena.fresh_bytes(), 10000u);
}

TEST(ArenaTest, GrowthIsGeometric) {
  Arena arena(128);
  // Repeatedly overflow; each new chunk is at least the prior capacity, so
  // chunk count grows logarithmically with total bytes.
  for (int i = 0; i < 100; ++i) arena.Allocate(120, 1);
  size_t first_capacity = arena.capacity();
  for (int i = 0; i < 1000; ++i) arena.Allocate(120, 1);
  // 10x the bytes should come nowhere near 10x the chunk count; capacity
  // doubling keeps the fresh-growth events rare.
  EXPECT_GE(arena.capacity(), first_capacity);
  arena.Reset();
  for (int i = 0; i < 1100; ++i) arena.Allocate(120, 1);
  EXPECT_EQ(arena.fresh_bytes(), 0u);
}

}  // namespace
}  // namespace ntw
