// Wrapper-pack tests (DESIGN.md §15): build→open roundtrip identity
// against the directory backend, deterministic rebuilds, clean rejection
// of truncated / bit-flipped / version-mismatched packs (no crash, no
// out-of-bounds reads under ASan), the repository's directory fallback
// when a pack is corrupt, lazy pack materialization, overlay publishes on
// a pack backend, and incremental directory reloads that reuse unchanged
// entries by pointer.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"
#include "core/compiled_wrapper.h"
#include "core/fused_matcher.h"
#include "core/lr_inductor.h"
#include "core/wrapper.h"
#include "core/wrapper_pack.h"
#include "core/wrapper_store.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/wrapper_repository.h"
#include "sitegen/origin.h"

namespace ntw {
namespace {

constexpr char kSuffix[] = ".wrapper";

// Matches the FNV-1a the pack uses for its header checksum, so the test
// can patch header fields (version) and re-seal the checksum to prove the
// field itself is what gets rejected.
uint64_t Fnv1a(const void* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

class WrapperPackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = (std::filesystem::temp_directory_path() /
             ("ntw_pack_test_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);
  }

  void TearDown() override { std::filesystem::remove_all(work_); }

  // A small synthetic repository covering all three plan kinds.
  std::string WriteRepo(size_t sites = 9, size_t attrs = 3,
                        uint64_t seed = 17) {
    std::string root = work_ + "/repo";
    sitegen::SyntheticRepositoryOptions options;
    options.sites = sites;
    options.attrs = attrs;
    options.seed = seed;
    Status wrote = sitegen::WriteSyntheticWrapperRepository(options, root);
    EXPECT_TRUE(wrote.ok()) << wrote.ToString();
    return root;
  }

  // The same walk ntw_pack build does.
  core::WrapperPackBuilder BuildFromDir(const std::string& root) {
    core::WrapperPackBuilder builder;
    auto site_dirs = ListSubdirectories(root);
    EXPECT_TRUE(site_dirs.ok());
    for (const std::string& site_dir : *site_dirs) {
      std::string site = std::filesystem::path(site_dir).filename().string();
      auto files = ListFiles(site_dir, kSuffix);
      EXPECT_TRUE(files.ok());
      for (const std::string& file : *files) {
        std::string attr = std::filesystem::path(file).filename().string();
        attr.resize(attr.size() - (sizeof(kSuffix) - 1));
        auto record = ReadFile(file);
        EXPECT_TRUE(record.ok());
        Status added = builder.Add(site, attr, *record);
        EXPECT_TRUE(added.ok()) << file << ": " << added.ToString();
      }
    }
    return builder;
  }

  std::string PackFromRepo(const std::string& root) {
    std::string path = work_ + "/wrappers.pack";
    core::WrapperPackBuilder builder = BuildFromDir(root);
    Status wrote = builder.WriteFile(path);
    EXPECT_TRUE(wrote.ok()) << wrote.ToString();
    return path;
  }

  std::string work_;
};

std::string Trimmed(std::string record) {
  while (!record.empty() &&
         (record.back() == '\n' || record.back() == '\r')) {
    record.pop_back();
  }
  return record;
}

TEST_F(WrapperPackTest, RoundtripMatchesDirectoryBackend) {
  std::string root = WriteRepo();
  std::string path = PackFromRepo(root);

  auto pack = core::WrapperPack::Open(path);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  EXPECT_EQ((*pack)->site_count(), 9u);
  EXPECT_TRUE((*pack)->Verify().ok()) << (*pack)->Verify().ToString();

  auto site_dirs = ListSubdirectories(root);
  ASSERT_TRUE(site_dirs.ok());
  for (const std::string& site_dir : *site_dirs) {
    std::string site = std::filesystem::path(site_dir).filename().string();
    auto files = ListFiles(site_dir, kSuffix);
    ASSERT_TRUE(files.ok());
    for (const std::string& file : *files) {
      std::string attr = std::filesystem::path(file).filename().string();
      attr.resize(attr.size() - (sizeof(kSuffix) - 1));
      auto on_disk = ReadFile(file);
      ASSERT_TRUE(on_disk.ok());

      auto entry = (*pack)->FindEntry(site, attr);
      ASSERT_TRUE(entry.has_value()) << site << "/" << attr;
      EXPECT_EQ(entry->record(), Trimmed(*on_disk));

      // The pack's fixed-layout plan must agree with the plan compiled
      // from the record.
      auto record = core::DeserializeWrapper(std::string(entry->record()));
      ASSERT_TRUE(record.ok());
      auto compiled = core::CompiledWrapper::Compile(**record);
      auto from_pack = entry->CompilePlan();
      if (compiled == nullptr) {
        EXPECT_EQ(from_pack, nullptr);
        continue;
      }
      ASSERT_NE(from_pack, nullptr) << site << "/" << attr;
      EXPECT_STREQ(from_pack->plan_kind(), compiled->plan_kind());
      EXPECT_EQ(from_pack->left(), compiled->left());
      EXPECT_EQ(from_pack->right(), compiled->right());
      EXPECT_EQ(from_pack->head(), compiled->head());
      EXPECT_EQ(from_pack->tail(), compiled->tail());
      if (compiled->dom_free()) {
        std::string page = "x" + compiled->head() + compiled->left() +
                           "alpha" + compiled->right() + compiled->left() +
                           "beta" + compiled->right() + compiled->tail() +
                           "y";
        core::StreamPageBuffer a, b;
        std::vector<std::string_view> va, vb;
        compiled->ExtractStreaming(page, a, &va);
        from_pack->ExtractStreaming(page, b, &vb);
        ASSERT_EQ(va.size(), vb.size());
        for (size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
        EXPECT_GE(va.size(), 1u);  // The synthetic page must actually hit.
      }
    }
  }
}

TEST_F(WrapperPackTest, BuildIsDeterministicAndOrderInsensitive) {
  std::string root = WriteRepo(6, 2);
  core::WrapperPackBuilder forward = BuildFromDir(root);

  // Re-add everything in reverse iteration order.
  core::WrapperPackBuilder reverse;
  auto site_dirs = ListSubdirectories(root);
  ASSERT_TRUE(site_dirs.ok());
  for (auto site_it = site_dirs->rbegin(); site_it != site_dirs->rend();
       ++site_it) {
    std::string site = std::filesystem::path(*site_it).filename().string();
    auto files = ListFiles(*site_it, kSuffix);
    ASSERT_TRUE(files.ok());
    for (auto it = files->rbegin(); it != files->rend(); ++it) {
      std::string attr = std::filesystem::path(*it).filename().string();
      attr.resize(attr.size() - (sizeof(kSuffix) - 1));
      auto record = ReadFile(*it);
      ASSERT_TRUE(record.ok());
      ASSERT_TRUE(reverse.Add(site, attr, *record).ok());
    }
  }
  EXPECT_EQ(forward.Build(), reverse.Build());
  EXPECT_EQ(forward.Build(), forward.Build());
}

// bench_repo skips the directory intermediate and streams the synthetic
// records straight into the builder; the pack it measures must be the
// exact pack a written tree produces.
TEST_F(WrapperPackTest, InMemoryRecordStreamMatchesWrittenTree) {
  sitegen::SyntheticRepositoryOptions options;
  options.sites = 7;
  options.attrs = 3;
  options.seed = 41;
  std::string root = work_ + "/repo";
  ASSERT_TRUE(sitegen::WriteSyntheticWrapperRepository(options, root).ok());
  core::WrapperPackBuilder from_dir = BuildFromDir(root);

  core::WrapperPackBuilder from_memory;
  Status streamed = sitegen::ForEachSyntheticWrapperRecord(
      options, [&](const std::string& site, const std::string& attribute,
                   const std::string& record) {
        return from_memory.Add(site, attribute, record);
      });
  ASSERT_TRUE(streamed.ok()) << streamed.ToString();

  EXPECT_EQ(from_memory.entry_count(), from_dir.entry_count());
  EXPECT_EQ(from_memory.Build(), from_dir.Build());
}

TEST_F(WrapperPackTest, OpenRejectsTruncation) {
  std::string path = PackFromRepo(WriteRepo(4, 2));
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string truncated_path = work_ + "/truncated.pack";
  for (size_t len :
       {size_t{0}, size_t{1}, sizeof(core::PackHeader) - 1,
        sizeof(core::PackHeader), sizeof(core::PackHeader) + 16,
        bytes->size() / 2, bytes->size() - 1}) {
    ASSERT_TRUE(WriteFile(truncated_path, bytes->substr(0, len)).ok());
    auto pack = core::WrapperPack::Open(truncated_path);
    EXPECT_FALSE(pack.ok()) << "len=" << len;
  }
}

TEST_F(WrapperPackTest, OpenRejectsHeaderCorruption) {
  std::string path = PackFromRepo(WriteRepo(4, 2));
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string flipped_path = work_ + "/flipped.pack";
  // Every header byte is covered by magic/endian/size checks or the
  // header checksum; any single-bit flip must be rejected.
  for (size_t i = 0; i < sizeof(core::PackHeader); ++i) {
    std::string flipped = *bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    ASSERT_TRUE(WriteFile(flipped_path, flipped).ok());
    auto pack = core::WrapperPack::Open(flipped_path);
    EXPECT_FALSE(pack.ok()) << "header byte " << i;
  }
}

TEST_F(WrapperPackTest, OpenRejectsVersionMismatchEvenWhenResealed) {
  std::string path = PackFromRepo(WriteRepo(4, 2));
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  core::PackHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  header.version = core::kPackVersion + 1;
  header.header_checksum = 0;
  header.header_checksum = Fnv1a(&header, sizeof(header));
  std::string patched = *bytes;
  std::memcpy(patched.data(), &header, sizeof(header));
  std::string patched_path = work_ + "/future.pack";
  ASSERT_TRUE(WriteFile(patched_path, patched).ok());
  auto pack = core::WrapperPack::Open(patched_path);
  EXPECT_FALSE(pack.ok());
}

TEST_F(WrapperPackTest, VerifyRejectsBodyCorruption) {
  std::string path = PackFromRepo(WriteRepo(4, 2));
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string flipped_path = work_ + "/body_flip.pack";
  size_t body = sizeof(core::PackHeader);
  for (size_t probe = 0; probe < 16; ++probe) {
    size_t offset = body + probe * (bytes->size() - body - 1) / 15;
    std::string flipped = *bytes;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x01);
    ASSERT_TRUE(WriteFile(flipped_path, flipped).ok());
    // The header is intact, so Open (which must stay O(mmap)) succeeds;
    // the full Verify walk is what catches the damage.
    auto pack = core::WrapperPack::Open(flipped_path);
    ASSERT_TRUE(pack.ok()) << "offset " << offset;
    EXPECT_FALSE((*pack)->Verify().ok()) << "offset " << offset;
  }
}

TEST_F(WrapperPackTest, CorruptBodyNeverCrashesAccessors) {
  std::string path = PackFromRepo(WriteRepo(6, 3));
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::mt19937_64 rng(20260809);
  std::string corrupt_path = work_ + "/corrupt.pack";
  for (int round = 0; round < 64; ++round) {
    std::string corrupt = *bytes;
    size_t flips = 1 + rng() % 8;
    for (size_t f = 0; f < flips; ++f) {
      size_t offset =
          sizeof(core::PackHeader) +
          rng() % (corrupt.size() - sizeof(core::PackHeader));
      corrupt[offset] =
          static_cast<char>(corrupt[offset] ^ (1u << (rng() % 8)));
    }
    ASSERT_TRUE(WriteFile(corrupt_path, corrupt).ok());
    auto pack = core::WrapperPack::Open(corrupt_path);
    if (!pack.ok()) continue;  // Flip landed where a bounds check trips.
    // Every accessor must stay inside the mapping no matter what the
    // body says (wrong results are fine; reads outside are not — ASan
    // is the judge here).
    for (size_t s = 0; s < (*pack)->site_count(); ++s) {
      auto site = (*pack)->site(s);
      if (!site.has_value()) continue;
      (void)site->name();
      std::string_view blob = site->automaton();
      if (core::FusedAutomaton::Validate(blob)) {
        core::FusedAutomaton automaton(blob);
        std::vector<std::vector<size_t>> occurrences;
        automaton.Scan("<span class=\"f1\">x</span><li>y</li>", &occurrences);
      }
      for (size_t e = 0; e < site->entry_count(); ++e) {
        auto entry = site->entry(e);
        if (!entry.has_value()) continue;
        (void)entry->attribute();
        (void)entry->record();
        auto plan = entry->CompilePlan();
        if (plan != nullptr && plan->dom_free()) {
          core::StreamPageBuffer buffer;
          std::vector<std::string_view> values;
          plan->ExtractStreaming("<b>page</b>", buffer, &values);
        }
      }
    }
    (void)(*pack)->FindEntry("site_000001", "attr_00");
    (void)(*pack)->Verify();
  }
}

TEST_F(WrapperPackTest, RepositoryFallsBackToDirectoryOnCorruptPack) {
  std::string root = WriteRepo(4, 2);
  std::string bad_pack = work_ + "/bad.pack";
  ASSERT_TRUE(WriteFile(bad_pack, "this is not a pack file").ok());

  serve::WrapperRepository repository(
      serve::WrapperRepository::Options{root, bad_pack});
  Status loaded = repository.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  auto pinned = repository.Pin();
  EXPECT_EQ(pinned->pack, nullptr);
  EXPECT_FALSE(pinned->errors.empty());  // The fallback is logged.
  const auto* entry = pinned->Find("site_000000", "attr_00");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->record.empty());
}

TEST_F(WrapperPackTest, PackBackendMaterializesLazilyAndCaches) {
  std::string root = WriteRepo(8, 2);
  std::string path = PackFromRepo(root);

  serve::WrapperRepository repository(
      serve::WrapperRepository::Options{std::string(), path});
  ASSERT_TRUE(repository.Load().ok());
  auto pinned = repository.Pin();
  ASSERT_NE(pinned->pack, nullptr);
  EXPECT_EQ(pinned->TotalWrapperCount(), 16u);
  EXPECT_TRUE(pinned->CachedEntries().empty());

  const auto* entry = pinned->Find("site_000003", "attr_01");
  ASSERT_NE(entry, nullptr);
  auto on_disk = ReadFile(root + "/site_000003/attr_01.wrapper");
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(entry->record, Trimmed(*on_disk));
  EXPECT_EQ(pinned->CachedEntries().size(), 1u);
  // Second hit returns the cached entry, same object.
  EXPECT_EQ(pinned->Find("site_000003", "attr_01"), entry);
  // Unknown pairs are true misses.
  EXPECT_EQ(pinned->Find("site_000003", "attr_99"), nullptr);
  EXPECT_EQ(pinned->Find("no_such_site", "attr_00"), nullptr);

  // MaterializeSite sees every attribute, ascending.
  auto all = pinned->MaterializeSite("site_000003");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "attr_00");
  EXPECT_EQ(all[1].first, "attr_01");
  EXPECT_EQ(all[1].second, entry);
}

TEST_F(WrapperPackTest, PublishOverlaysThePackBackend) {
  std::string path = PackFromRepo(WriteRepo(4, 2));
  serve::WrapperRepository repository(
      serve::WrapperRepository::Options{std::string(), path});
  ASSERT_TRUE(repository.Load().ok());

  core::LrWrapper repaired("<em>", "</em>");
  auto record = core::SerializeWrapper(repaired);
  ASSERT_TRUE(record.ok());
  auto wrapper = core::DeserializeWrapper(*record);
  ASSERT_TRUE(wrapper.ok());
  // Pack-only mode: the publish is in-memory (no root to persist to).
  Status published =
      repository.PublishWrapper("site_000001", "attr_00", *wrapper);
  ASSERT_TRUE(published.ok()) << published.ToString();

  auto pinned = repository.Pin();
  ASSERT_NE(pinned->pack, nullptr);  // The mapping survives the publish.
  const auto* entry = pinned->Find("site_000001", "attr_00");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->record, *record);  // Overlay shadows the pack record.
  ASSERT_NE(entry->compiled, nullptr);
  EXPECT_EQ(entry->compiled->left(), "<em>");
  // Untouched pairs still come from the pack.
  EXPECT_NE(pinned->Find("site_000002", "attr_01"), nullptr);
}

TEST_F(WrapperPackTest, IncrementalReloadReusesUnchangedEntries) {
  std::string root = WriteRepo(3, 2);
  serve::WrapperRepository repository(root);
  ASSERT_TRUE(repository.Load().ok());
  auto* reused =
      obs::Registry::Global().GetCounter("ntw.repo.reload_entries_reused");

  std::shared_ptr<const core::CompiledWrapper> kept;
  std::shared_ptr<const core::CompiledWrapper> replaced;
  {
    auto pinned = repository.Pin();
    kept = pinned->Find("site_000000", "attr_00")->compiled;
    replaced = pinned->Find("site_000001", "attr_00")->compiled;
    ASSERT_NE(kept, nullptr);
    ASSERT_NE(replaced, nullptr);
  }

  // Rewrite one record with different bytes (size changes, so the
  // (mtime, size) fingerprint flips even within mtime granularity).
  core::LrWrapper changed("<section id=\"swapped\">", "</section>");
  auto record = core::SerializeWrapper(changed);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE(
      WriteFile(root + "/site_000001/attr_00.wrapper", *record + "\n").ok());

  int64_t reused_before = reused->value();
  ASSERT_TRUE(repository.Load().ok());
  auto pinned = repository.Pin();
  // Unchanged files reuse the previous snapshot's parsed plan by pointer;
  // the touched file gets a fresh one.
  EXPECT_EQ(pinned->Find("site_000000", "attr_00")->compiled.get(),
            kept.get());
  const auto* swapped = pinned->Find("site_000001", "attr_00");
  ASSERT_NE(swapped, nullptr);
  EXPECT_NE(swapped->compiled.get(), replaced.get());
  EXPECT_EQ(swapped->compiled->left(), "<section id=\"swapped\">");
  EXPECT_EQ(reused->value() - reused_before, 5);  // 6 entries, 1 changed.
}

}  // namespace
}  // namespace ntw
