#include "core/multi_type.h"

#include "core/metrics.h"
#include "core/xpath_inductor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

// Dealer pages with name + zip columns (the Appendix A setting).
PageSet DealerPages() {
  auto page = [](const std::vector<std::array<std::string, 2>>& rows) {
    std::string html = "<html><body><table class='stores'>";
    for (const auto& row : rows) {
      html += "<tr><td><b>" + row[0] + "</b></td><td>" + row[1] +
              "</td><td><a href='#m'>Map</a></td></tr>";
    }
    html += "</table></body></html>";
    return html;
  };
  PageSet pages;
  pages.AddPage(MustParse(page({{"PORTER FURNITURE", "MS 38652"},
                                {"WOODLAND FURNITURE", "MS 39776"},
                                {"HELLER HOME CENTER", "CA 94901"}})));
  pages.AddPage(MustParse(page({{"KIDDIE WORLD CENTER", "CA 95128"},
                                {"LULLABY LANE", "CA 94066"}})));
  return pages;
}

struct Fixture {
  PageSet pages = DealerPages();
  NodeSet name_truth;
  NodeSet zip_truth;

  Fixture() {
    for (const char* name :
         {"PORTER FURNITURE", "WOODLAND FURNITURE", "HELLER HOME CENTER",
          "KIDDIE WORLD CENTER", "LULLABY LANE"}) {
      for (const NodeRef& ref : FindText(pages, name)) {
        name_truth.Insert(ref);
      }
    }
    for (const char* zip : {"MS 38652", "MS 39776", "CA 94901",
                                   "CA 95128", "CA 94066"}) {
      for (const NodeRef& ref : FindText(pages, zip)) zip_truth.Insert(ref);
    }
  }

  PublicationModel Prior() const {
    std::vector<const NodeSet*> typed = {&name_truth, &zip_truth};
    ListFeatures features =
        ComputeListFeatures(SegmentRecords(pages, typed));
    Result<PublicationModel> model =
        PublicationModel::Fit({features, features});
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  }
};

TEST(AssembleRecordsTest, PerfectInterleavingAssembles) {
  Fixture f;
  RecordSet records = AssembleRecords(f.pages, {f.name_truth, f.zip_truth});
  EXPECT_EQ(records.records.size(), 5u);
  EXPECT_TRUE(records.failed_pages.empty());
  EXPECT_EQ(records.TypeNodes(0), f.name_truth);
  EXPECT_EQ(records.TypeNodes(1), f.zip_truth);
}

TEST(AssembleRecordsTest, UnbalancedCountsFail) {
  Fixture f;
  // Drop one zip: 3 names vs 2 zips on page 0 cannot interleave.
  NodeSet zips = f.zip_truth;
  NodeSet missing_one;
  for (const NodeRef& ref : zips) {
    if (ref.page == 0 && missing_one.empty()) {
      missing_one.Insert(ref);
      continue;
    }
  }
  zips = zips.Difference(missing_one);
  RecordSet records = AssembleRecords(f.pages, {f.name_truth, zips});
  ASSERT_EQ(records.failed_pages.size(), 1u);
  EXPECT_EQ(records.failed_pages[0], 0);
  // Page 1 still assembles.
  EXPECT_EQ(records.records.size(), 2u);
}

TEST(AssembleRecordsTest, WrongOrderFails) {
  Fixture f;
  // Use names for both types: sequence n n n is not a repetition of a
  // permutation of two types.
  RecordSet records =
      AssembleRecords(f.pages, {f.name_truth, f.name_truth});
  EXPECT_TRUE(records.records.empty());
  EXPECT_EQ(records.failed_pages.size(), 2u);
}

TEST(AssembleRecordsTest, EmptyExtractionsYieldNothing) {
  Fixture f;
  RecordSet records = AssembleRecords(f.pages, {NodeSet(), NodeSet()});
  EXPECT_TRUE(records.records.empty());
  EXPECT_TRUE(records.failed_pages.empty());
}

TEST(AssembleRecordsTest, ZipFirstPermutationAccepted) {
  // A site listing zip before name still assembles (fixed permutation).
  PageSet pages;
  pages.AddPage(MustParse(
      "<table><tr><td>MS 38652</td><td><b>PORTER</b></td></tr>"
      "<tr><td>MS 39776</td><td><b>WOODLAND</b></td></tr></table>"));
  NodeSet names;
  for (const char* s : {"PORTER", "WOODLAND"}) {
    for (const NodeRef& ref : FindText(pages, s)) names.Insert(ref);
  }
  NodeSet zips;
  for (const char* s : {"MS 38652", "MS 39776"}) {
    for (const NodeRef& ref : FindText(pages, s)) zips.Insert(ref);
  }
  RecordSet records = AssembleRecords(pages, {names, zips});
  EXPECT_EQ(records.records.size(), 2u);
  EXPECT_TRUE(records.failed_pages.empty());
}

TEST(MultiTypeTest, NtwRecoversBothTypesFromNoisyLabels) {
  Fixture f;
  // Noisy labels: names hit partially; zips get one false positive (the
  // "Map" cell on page 0 pretends to match).
  MultiTypeLabels labels;
  labels.type_names = {"name", "zip"};
  NodeSet name_labels(FindText(f.pages, "WOODLAND FURNITURE"));
  for (const NodeRef& ref : FindText(f.pages, "KIDDIE WORLD CENTER")) {
    name_labels.Insert(ref);
  }
  NodeSet zip_labels;
  for (const char* zip : {"MS 38652", "CA 94066", "CA 95128"}) {
    for (const NodeRef& ref : FindText(f.pages, zip)) zip_labels.Insert(ref);
  }
  zip_labels.Insert(FindText(f.pages, "Map")[0]);  // False positive.
  labels.labels = {name_labels, zip_labels};

  std::vector<AnnotationModel> annotators = {AnnotationModel(0.95, 0.4),
                                             AnnotationModel(0.9, 0.6)};
  XPathInductor inductor;
  Result<MultiTypeOutcome> outcome = LearnMultiTypeNtw(
      inductor, f.pages, labels, annotators, f.Prior());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->records.records.size(), 5u);
  EXPECT_EQ(outcome->records.TypeNodes(0), f.name_truth);
  EXPECT_EQ(outcome->records.TypeNodes(1), f.zip_truth);
}

TEST(MultiTypeTest, NaiveFailsToAssemble) {
  Fixture f;
  MultiTypeLabels labels;
  labels.type_names = {"name", "zip"};
  NodeSet name_labels(FindText(f.pages, "WOODLAND FURNITURE"));
  // Noise: an address-cell label poisons the name rule.
  name_labels.Insert(FindText(f.pages, "MS 38652")[0]);
  NodeSet zip_labels;
  for (const char* zip : {"CA 94066", "CA 95128"}) {
    for (const NodeRef& ref : FindText(f.pages, zip)) zip_labels.Insert(ref);
  }
  labels.labels = {name_labels, zip_labels};

  XPathInductor inductor;
  Result<MultiTypeOutcome> naive =
      LearnMultiTypeNaive(inductor, f.pages, labels);
  ASSERT_TRUE(naive.ok());
  // The poisoned name wrapper extracts both columns; interleaving breaks
  // and pages fail — recall collapses (Fig. 3(a)).
  Prf prf = Evaluate(naive->records.TypeNodes(0), f.name_truth);
  EXPECT_LT(prf.recall, 0.5);
}

TEST(EvaluateRecordsTest, PerfectAndPartial) {
  Fixture f;
  std::vector<core::NodeSet> truth = {f.name_truth, f.zip_truth};
  RecordSet perfect = AssembleRecords(f.pages, truth);
  Prf prf = EvaluateRecords(f.pages, perfect, truth);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_EQ(prf.expected, 5u);

  // Empty extraction: precision 1 by convention, recall 0.
  Prf empty = EvaluateRecords(f.pages, RecordSet(), truth);
  EXPECT_DOUBLE_EQ(empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(empty.recall, 0.0);

  // Misaligned extraction (zip of the NEXT record): records exist but none
  // match the truth tuples.
  RecordSet shifted = perfect;
  for (size_t i = 0; i + 1 < shifted.records.size(); ++i) {
    shifted.records[i][1] = perfect.records[i + 1][1];
  }
  Prf bad = EvaluateRecords(f.pages, shifted, truth);
  EXPECT_LT(bad.precision, 0.5);
}

TEST(MultiTypeTest, ValidationErrors) {
  Fixture f;
  XPathInductor inductor;
  MultiTypeLabels empty;
  EXPECT_FALSE(LearnMultiTypeNaive(inductor, f.pages, empty).ok());

  MultiTypeLabels mismatched;
  mismatched.type_names = {"name"};
  mismatched.labels = {NodeSet(FindText(f.pages, "LULLABY LANE"))};
  EXPECT_FALSE(LearnMultiTypeNtw(inductor, f.pages, mismatched, {},
                                 f.Prior())
                   .ok());

  MultiTypeLabels with_empty_type;
  with_empty_type.type_names = {"name", "zip"};
  with_empty_type.labels = {NodeSet(FindText(f.pages, "LULLABY LANE")),
                            NodeSet()};
  std::vector<AnnotationModel> annotators = {AnnotationModel(0.9, 0.3),
                                             AnnotationModel(0.9, 0.3)};
  EXPECT_FALSE(LearnMultiTypeNtw(inductor, f.pages, with_empty_type,
                                 annotators, f.Prior())
                   .ok());
}

}  // namespace
}  // namespace ntw::core
