// Pins the scan dispatch contract: every Find* implementation — the
// dispatched entry point, the raw scalar loop, and (when compiled in) the
// raw vector path — returns identical indices on identical inputs, for
// randomized strings dense in the special bytes, across `from` offsets
// that exercise heads, vector-width boundaries and tails. Also pins the
// runtime-dispatch switch itself: ForceScalar() flips SimdEnabled() and
// the tokenizer/StreamPage outputs stay byte-identical either way.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "html/scan.h"
#include "html/stream_page.h"
#include "html/tokenizer.h"

namespace ntw::html {
namespace {

using ScanFn = size_t (*)(std::string_view, size_t);

struct Variant {
  const char* name;
  ScanFn dispatched;
  ScanFn scalar;
  ScanFn simd;
};

const Variant kVariants[] = {
    {"FindLtOrAmp", &scan::FindLtOrAmp, &scan::internal::FindLtOrAmpScalar,
     &scan::internal::FindLtOrAmpSimd},
    {"FindTextSpecial", &scan::FindTextSpecial,
     &scan::internal::FindTextSpecialScalar,
     &scan::internal::FindTextSpecialSimd},
    {"FindWsOrGt", &scan::FindWsOrGt, &scan::internal::FindWsOrGtScalar,
     &scan::internal::FindWsOrGtSimd},
    {"FindAttrNameEnd", &scan::FindAttrNameEnd,
     &scan::internal::FindAttrNameEndScalar,
     &scan::internal::FindAttrNameEndSimd},
};

// Deterministic 64-bit LCG (MMIX constants): the test must not depend on
// the platform's rand().
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

 private:
  uint64_t state_;
};

std::string RandomString(Lcg& lcg, size_t length) {
  // Dense in the classified bytes so hits land at many alignments; also
  // includes high bytes (0x80..) to catch signedness bugs in the vector
  // compares and control bytes around the 9..13 whitespace range.
  static constexpr char kAlphabet[] =
      "<<&&>>//== \t\n\r\v\f\b\x0e"
      "abcdefgh01234567\x7f\x80\x9f\xc3\xe2\xff";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlphabet[lcg.Next() % (sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST(ScanTest, AllImplementationsAgreeOnRandomInputs) {
  Lcg lcg(0x9e3779b97f4a7c15ULL);
  // Lengths straddle the 16-byte vector width: empty, sub-width, exactly
  // one/two widths, widths ± 1, and long tails.
  const size_t lengths[] = {0, 1, 3, 15, 16, 17, 31, 32, 33, 64, 100, 129};
  for (size_t length : lengths) {
    for (int rep = 0; rep < 8; ++rep) {
      std::string s = RandomString(lcg, length);
      for (const Variant& v : kVariants) {
        for (size_t from = 0; from <= length + 2; ++from) {
          size_t expected = v.scalar(s, from);
          EXPECT_EQ(v.dispatched(s, from), expected)
              << v.name << " dispatched, len=" << length
              << " from=" << from;
          if (scan::SimdCompiled()) {
            EXPECT_EQ(v.simd(s, from), expected)
                << v.name << " simd, len=" << length << " from=" << from;
          }
        }
      }
    }
  }
}

TEST(ScanTest, ClassMembershipIsExact) {
  // One directed probe per class byte, plus near-miss neighbors of the
  // whitespace range (8 and 14 are NOT whitespace; 9..13 and ' ' are).
  const std::string ws = "\t\n\v\f\r ";
  for (char c : ws) {
    std::string s(20, 'a');
    s[17] = c;
    EXPECT_EQ(scan::FindTextSpecial(s, 0), 17u) << int(c);
    EXPECT_EQ(scan::FindWsOrGt(s, 0), 17u) << int(c);
    EXPECT_EQ(scan::FindAttrNameEnd(s, 0), 17u) << int(c);
    EXPECT_EQ(scan::FindLtOrAmp(s, 0), std::string_view::npos) << int(c);
  }
  for (char c : {'\x08', '\x0e'}) {
    std::string s(20, 'a');
    s[17] = c;
    EXPECT_EQ(scan::FindTextSpecial(s, 0), std::string_view::npos) << int(c);
    EXPECT_EQ(scan::FindWsOrGt(s, 0), std::string_view::npos) << int(c);
  }
  std::string s = "abc<d&e>f/g=h";
  EXPECT_EQ(scan::FindLtOrAmp(s, 0), 3u);
  EXPECT_EQ(scan::FindLtOrAmp(s, 4), 5u);
  EXPECT_EQ(scan::FindTextSpecial(s, 0), 3u);
  EXPECT_EQ(scan::FindWsOrGt(s, 0), 7u);
  EXPECT_EQ(scan::FindAttrNameEnd(s, 0), 3u - 0u + 4u);  // '>' at 7.
  EXPECT_EQ(scan::FindAttrNameEnd(s, 8), 9u);            // '/' at 9.
  EXPECT_EQ(scan::FindAttrNameEnd(s, 10), 11u);          // '=' at 11.
  EXPECT_EQ(scan::FindByte(s, 0, 'g'), 10u);
  EXPECT_EQ(scan::FindByte(s, 11, 'g'), std::string_view::npos);
}

TEST(ScanTest, FromBeyondSizeReturnsNpos) {
  std::string s = "<<<<";
  for (const Variant& v : kVariants) {
    EXPECT_EQ(v.dispatched(s, 4), std::string_view::npos) << v.name;
    EXPECT_EQ(v.dispatched(s, 100), std::string_view::npos) << v.name;
    EXPECT_EQ(v.dispatched("", 0), std::string_view::npos) << v.name;
  }
  EXPECT_EQ(scan::FindByte(s, 5, '<'), std::string_view::npos);
}

// RAII guard so a failing assertion can't leave the process in
// forced-scalar mode for later tests.
class ForcedScalar {
 public:
  ForcedScalar() { scan::ForceScalar(true); }
  ~ForcedScalar() { scan::ForceScalar(false); }
};

TEST(ScanDispatchTest, ForceScalarFlipsTheSwitch) {
  // Default state: SIMD active exactly when compiled in and not disabled
  // by the environment (CI sets NTW_NO_SIMD=1 on some jobs, so only
  // assert the implication, not the value).
  if (scan::SimdEnabled()) {
    EXPECT_TRUE(scan::SimdCompiled());
    EXPECT_STRNE(scan::ImplementationName(), "scalar");
  } else {
    EXPECT_STREQ(scan::ImplementationName(), "scalar");
  }
  {
    ForcedScalar forced;
    EXPECT_FALSE(scan::SimdEnabled());
    EXPECT_STREQ(scan::ImplementationName(), "scalar");
    std::string s(40, 'a');
    s[33] = '<';
    EXPECT_EQ(scan::FindLtOrAmp(s, 0), 33u);
  }
}

TEST(ScanDispatchTest, TokenizerOutputIdenticalUnderForcedScalar) {
  const std::string source =
      "<html><body class=\"x\" id=ok><p title='a &amp; b'>Text &#65; "
      "here</p><script>if (a<b) c();</script><ul><li>one<li>two</ul>"
      "</body></html>";
  Tokenizer defaults(source);
  std::vector<Token> expected = defaults.TokenizeAll();
  {
    ForcedScalar forced;
    Tokenizer forced_tokenizer(source);
    std::vector<Token> actual = forced_tokenizer.TokenizeAll();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].kind, expected[i].kind) << "token " << i;
      EXPECT_EQ(actual[i].data, expected[i].data) << "token " << i;
      EXPECT_EQ(actual[i].attrs, expected[i].attrs) << "token " << i;
      EXPECT_EQ(actual[i].self_closing, expected[i].self_closing)
          << "token " << i;
    }
  }
}

TEST(ScanDispatchTest, StreamPageOutputIdenticalUnderForcedScalar) {
  const std::string sources[] = {
      "<html><body><b>clean verbatim page</b></body></html>",
      "<html><body><p>A &amp; B  with  doubles</p><ul><li>a<li>b</ul>"
      "</body></html>",
  };
  for (const std::string& source : sources) {
    StreamPage simd_page;
    simd_page.Build(source);
    std::string expected_stream(simd_page.stream());
    std::vector<StreamSpan> expected_spans = simd_page.spans();
    bool expected_verbatim = simd_page.verbatim();
    {
      ForcedScalar forced;
      StreamPage scalar_page;
      scalar_page.Build(source);
      EXPECT_EQ(scalar_page.stream(), expected_stream);
      EXPECT_EQ(scalar_page.verbatim(), expected_verbatim);
      ASSERT_EQ(scalar_page.spans().size(), expected_spans.size());
      for (size_t i = 0; i < expected_spans.size(); ++i) {
        EXPECT_EQ(scalar_page.spans()[i].begin, expected_spans[i].begin);
        EXPECT_EQ(scalar_page.spans()[i].end, expected_spans[i].end);
      }
    }
  }
}

}  // namespace
}  // namespace ntw::html
