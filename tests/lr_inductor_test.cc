#include "core/lr_inductor.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FigureOnePages;
using ::ntw::testing::FindText;

class LrInductorTest : public ::testing::Test {
 protected:
  LrInductorTest() : pages_(FigureOnePages()) {}

  NodeRef Name(const std::string& text) {
    std::vector<NodeRef> found = FindText(pages_, text);
    EXPECT_EQ(found.size(), 1u);
    return found[0];
  }

  PageSet pages_;
  LrInductor inductor_;
};

TEST_F(LrInductorTest, EmptyLabelsExtractNothing) {
  Induction induction = inductor_.Induce(pages_, NodeSet());
  EXPECT_TRUE(induction.extraction.empty());
}

TEST_F(LrInductorTest, TwoNamesLearnTheUDelimiters) {
  // Labels in different record positions whose following addresses start
  // with different digits: the common left context is the record-local
  // "<tr><td><u>" and the right context "</u><br>", so the rule
  // generalizes to every name. (Two first-record labels would share the
  // entire page prefix and learn an over-specific rule — see
  // SingletonLearnsLongDelimiters.)
  NodeSet labels(
      {Name("HELLER HOME CENTER"), Name("KIDDIE WORLD CENTER")});
  Induction induction = inductor_.Induce(pages_, labels);
  const auto* wrapper = dynamic_cast<const LrWrapper*>(induction.wrapper.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_TRUE(wrapper->left().ends_with("<u>")) << wrapper->left();
  EXPECT_TRUE(wrapper->right().starts_with("</u>")) << wrapper->right();
  // Extracts exactly the five dealer names.
  EXPECT_EQ(induction.extraction.size(), 5u);
  EXPECT_TRUE(induction.extraction.Contains(Name("LULLABY LANE")));
}

TEST_F(LrInductorTest, SingletonLearnsLongDelimiters) {
  NodeSet labels({Name("WOODLAND FURNITURE")});
  Induction induction = inductor_.Induce(pages_, labels);
  // The delimiters are maximally specific: only nodes in the same
  // "second record" position can match; here only the label itself
  // (page 2's second record differs in preceding text).
  EXPECT_TRUE(induction.extraction.Contains(labels[0]));
  EXPECT_LE(induction.extraction.size(), 2u);
}

TEST_F(LrInductorTest, MixedLabelsOverGeneralize) {
  // A name plus an address: common delimiters degrade toward ">"/"<",
  // matching many text nodes — the paper's over-generalization effect.
  NodeSet labels({Name("PORTER FURNITURE"), Name("123 MAIN ST.")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_GT(induction.extraction.size(), 5u);
}

TEST_F(LrInductorTest, ExtractionMatchesWrapperReapplication) {
  NodeSet labels(
      {Name("PORTER FURNITURE"), Name("KIDDIE WORLD CENTER")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_EQ(induction.wrapper->Extract(pages_), induction.extraction);
}

TEST_F(LrInductorTest, ContextCapRespected) {
  LrInductor capped(/*max_context=*/4);
  NodeSet labels({Name("PORTER FURNITURE")});
  Induction induction = capped.Induce(pages_, labels);
  const auto* wrapper = dynamic_cast<const LrWrapper*>(induction.wrapper.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_LE(wrapper->left().size(), 4u);
  EXPECT_LE(wrapper->right().size(), 4u);
}

TEST_F(LrInductorTest, AttributesSeparateLabels) {
  NodeSet labels(
      {Name("PORTER FURNITURE"), Name("KIDDIE WORLD CENTER"),
       Name("123 MAIN ST.")});
  std::vector<AttrHandle> attrs = inductor_.Attributes(pages_, labels);
  ASSERT_FALSE(attrs.empty());
  // Some attribute must split names from the address.
  bool separated = false;
  for (AttrHandle attr : attrs) {
    for (const NodeSet& group : inductor_.Subdivide(pages_, labels, attr)) {
      if (group.size() == 2 && group.Contains(Name("PORTER FURNITURE")) &&
          group.Contains(Name("KIDDIE WORLD CENTER"))) {
        separated = true;
      }
    }
  }
  EXPECT_TRUE(separated);
}

TEST_F(LrInductorTest, SubdivisionGroupsShareContext) {
  NodeSet all = pages_.AllTextNodes();
  std::vector<AttrHandle> attrs = inductor_.Attributes(pages_, all);
  ASSERT_FALSE(attrs.empty());
  // Every subdivision group is a subset of the input.
  for (AttrHandle attr : attrs) {
    size_t covered = 0;
    for (const NodeSet& group : inductor_.Subdivide(pages_, all, attr)) {
      EXPECT_TRUE(group.IsSubsetOf(all));
      covered += group.size();
    }
    EXPECT_LE(covered, all.size());  // Drop-outs allowed, no duplication.
  }
}

TEST_F(LrInductorTest, EmptyDelimitersMatchEverything) {
  // Construct labels with nothing in common: fall back to (l="", r="")
  // which matches every text node — maximal over-generalization.
  PageSet page;
  page.AddPage(testing::MustParse("<a>x1</a><b>y2</b><i>z3</i>"));
  NodeSet labels = page.AllTextNodes();
  Induction induction = inductor_.Induce(page, labels);
  EXPECT_EQ(induction.extraction.size(), 3u);
}

TEST_F(LrInductorTest, ToStringAbbreviatesLongDelimiters) {
  NodeSet labels({Name("WOODLAND FURNITURE")});
  Induction induction = inductor_.Induce(pages_, labels);
  EXPECT_LE(induction.wrapper->ToString().size(), 120u);
}

}  // namespace
}  // namespace ntw::core
