#include "core/hlrt_inductor.h"

#include "common/rng.h"
#include "core/enumerate.h"
#include "core/lr_inductor.h"
#include "datasets/dealers.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ntw::core {
namespace {

using ::ntw::testing::FindText;
using ::ntw::testing::MustParse;

// Pages where LR alone is ambiguous: sidebar items share the name markup
// (<b> inside <li>) with the listing — only the head/tail context can
// separate them.
PageSet SidebarPages() {
  auto page = [](const std::vector<std::string>& sidebar,
                 const std::vector<std::string>& dealers) {
    std::string html = "<html><body><ul class='side'>";
    for (const std::string& item : sidebar) {
      html += "<li><b>" + item + "</b></li>";
    }
    html += "</ul><div class='main'><ul class='stores'>";
    for (const std::string& dealer : dealers) {
      html += "<li><b>" + dealer + "</b></li>";
    }
    html += "</ul></div><div class='footer'>footer text</div></body></html>";
    return html;
  };
  PageSet pages;
  pages.AddPage(MustParse(page({"BrandOne", "BrandTwo"},
                               {"PORTER FURNITURE", "WOODLAND FURNITURE",
                                "HELLER HOME CENTER"})));
  pages.AddPage(MustParse(page({"BrandThree", "BrandFour"},
                               {"KIDDIE WORLD CENTER", "LULLABY LANE"})));
  return pages;
}

TEST(HlrtInductorTest, HeadContextExcludesSidebar) {
  // Head inference needs each labeled page's first label to be its first
  // record; WOODLAND (a second record) keeps the l delimiter short.
  PageSet pages = SidebarPages();
  NodeSet labels(FindText(pages, "PORTER FURNITURE"));
  for (const NodeRef& ref : FindText(pages, "WOODLAND FURNITURE")) {
    labels.Insert(ref);
  }
  for (const NodeRef& ref : FindText(pages, "KIDDIE WORLD CENTER")) {
    labels.Insert(ref);
  }
  // A last-record label keeps the r delimiter from swallowing the next
  // record's opening markup.
  for (const NodeRef& ref : FindText(pages, "LULLABY LANE")) {
    labels.Insert(ref);
  }

  HlrtInductor hlrt;
  Induction hlrt_induction = hlrt.Induce(pages, labels);
  // HLRT extracts exactly the five dealer names: the head delimiter
  // (the stores <ul>) excludes the sidebar items.
  EXPECT_EQ(hlrt_induction.extraction.size(), 5u);
  EXPECT_FALSE(
      hlrt_induction.extraction.Contains(FindText(pages, "BrandOne")[0]));

  // LR on the same labels cannot: "<b>...</b>" matches the sidebar too.
  LrInductor lr;
  Induction lr_induction = lr.Induce(pages, labels);
  EXPECT_GT(lr_induction.extraction.size(), 5u);
  EXPECT_TRUE(lr_induction.extraction.Contains(FindText(pages, "BrandOne")[0]));
}

TEST(HlrtInductorTest, WrapperExposesDelimiters) {
  PageSet pages = SidebarPages();
  NodeSet labels(FindText(pages, "PORTER FURNITURE"));
  for (const NodeRef& ref : FindText(pages, "WOODLAND FURNITURE")) {
    labels.Insert(ref);
  }
  for (const NodeRef& ref : FindText(pages, "KIDDIE WORLD CENTER")) {
    labels.Insert(ref);
  }
  for (const NodeRef& ref : FindText(pages, "LULLABY LANE")) {
    labels.Insert(ref);
  }
  HlrtInductor inductor;
  Induction induction = inductor.Induce(pages, labels);
  const auto* wrapper =
      dynamic_cast<const HlrtWrapper*>(induction.wrapper.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_TRUE(wrapper->left().ends_with("<b>"));
  EXPECT_TRUE(wrapper->right().starts_with("</b>"));
  EXPECT_FALSE(wrapper->head().empty());
  EXPECT_NE(induction.wrapper->ToString().find("HLRT("), std::string::npos);
}

TEST(HlrtInductorTest, EmptyLabels) {
  PageSet pages = SidebarPages();
  HlrtInductor inductor;
  EXPECT_TRUE(inductor.Induce(pages, NodeSet()).extraction.empty());
}

TEST(HlrtInductorTest, ExtractMatchesInduction) {
  PageSet pages = SidebarPages();
  NodeSet labels(FindText(pages, "WOODLAND FURNITURE"));
  for (const NodeRef& ref : FindText(pages, "LULLABY LANE")) {
    labels.Insert(ref);
  }
  HlrtInductor inductor;
  Induction induction = inductor.Induce(pages, labels);
  EXPECT_EQ(induction.wrapper->Extract(pages), induction.extraction);
}

TEST(HlrtInductorTest, TopDownIsRejected) {
  PageSet pages = SidebarPages();
  NodeSet labels(FindText(pages, "WOODLAND FURNITURE"));
  HlrtInductor inductor;
  Result<WrapperSpace> space =
      Enumerate(EnumAlgorithm::kTopDown, inductor, pages, labels);
  EXPECT_FALSE(space.ok());
  EXPECT_EQ(space.status().code(), StatusCode::kFailedPrecondition);
  // BottomUp works fine (blackbox).
  Result<WrapperSpace> bottom_up =
      Enumerate(EnumAlgorithm::kBottomUp, inductor, pages, labels);
  ASSERT_TRUE(bottom_up.ok());
  EXPECT_GE(bottom_up->size(), 1u);
}

// Empirical well-behavedness on generated dealer sites: HLRT's head/tail
// delimiters are template chunks bracketing the listing, under which
// fidelity/closure/monotonicity hold (Sec. 5 claims the LR analysis
// "extends to HLRT").
class HlrtWellBehavedTest : public ::testing::Test {
 protected:
  HlrtWellBehavedTest() {
    datasets::DealersConfig config;
    config.num_sites = 3;
    config.pages_per_site = 4;
    dataset_ = datasets::MakeDealers(config);
  }
  datasets::Dataset dataset_;
  HlrtInductor inductor_;
};

TEST_F(HlrtWellBehavedTest, FidelityOnGeneratedSites) {
  Rng rng(11);
  for (const datasets::SiteData& data : dataset_.sites) {
    NodeSet truth = data.site.truth.at("name");
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<NodeRef> subset;
      for (const NodeRef& ref : truth) {
        if (rng.NextBernoulli(0.3)) subset.push_back(ref);
      }
      if (subset.empty()) subset.push_back(truth[0]);
      NodeSet labels(std::move(subset));
      Induction induction = inductor_.Induce(data.site.pages, labels);
      EXPECT_TRUE(labels.IsSubsetOf(induction.extraction));
    }
  }
}

TEST_F(HlrtWellBehavedTest, MonotonicityOnGeneratedSites) {
  Rng rng(13);
  for (const datasets::SiteData& data : dataset_.sites) {
    NodeSet truth = data.site.truth.at("name");
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<NodeRef> large;
      for (const NodeRef& ref : truth) {
        if (rng.NextBernoulli(0.5)) large.push_back(ref);
      }
      if (large.size() < 2) continue;
      NodeSet l2(large);
      std::vector<NodeRef> small(large.begin(),
                                 large.begin() +
                                     static_cast<long>(large.size() / 2));
      NodeSet l1(std::move(small));
      Induction i1 = inductor_.Induce(data.site.pages, l1);
      Induction i2 = inductor_.Induce(data.site.pages, l2);
      EXPECT_TRUE(i1.extraction.IsSubsetOf(i2.extraction))
          << data.site.name;
    }
  }
}

TEST_F(HlrtWellBehavedTest, ClosureOnGeneratedSites) {
  Rng rng(17);
  for (const datasets::SiteData& data : dataset_.sites) {
    NodeSet truth = data.site.truth.at("name");
    std::vector<NodeRef> seed = {truth[0],
                                 truth[truth.size() / 2]};
    NodeSet labels(std::move(seed));
    Induction induction = inductor_.Induce(data.site.pages, labels);
    NodeSet closure = induction.extraction.Intersect(
        data.site.pages.AllTextNodes());
    Induction again =
        inductor_.Induce(data.site.pages, labels.Union(closure));
    EXPECT_EQ(again.extraction, induction.extraction) << data.site.name;
  }
}

TEST_F(HlrtWellBehavedTest, AtLeastAsPreciseAsLrOnTruthSubsets) {
  LrInductor lr;
  for (const datasets::SiteData& data : dataset_.sites) {
    NodeSet truth = data.site.truth.at("name");
    NodeSet labels({truth[0], truth[truth.size() - 1]});
    Induction hlrt_induction = inductor_.Induce(data.site.pages, labels);
    Induction lr_induction = lr.Induce(data.site.pages, labels);
    EXPECT_TRUE(
        hlrt_induction.extraction.IsSubsetOf(lr_induction.extraction))
        << data.site.name;
  }
}

}  // namespace
}  // namespace ntw::core
